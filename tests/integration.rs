//! Cross-crate integration tests: the CLEAN execution model exercised
//! end-to-end through the facade crate — runtime + workloads + baselines
//! + simulator agreeing with each other.

use clean::baselines::{
    run_detector, CleanEngine, FastTrack, FullRaceKind, TraceEvent, TsanLike, VcFullDetector,
};
use clean::core::{RaceKind, ThreadId};
use clean::runtime::{CleanError, CleanRuntime, RuntimeConfig};
use clean::sim::{EpochMode, Machine, MachineConfig};
use clean::workloads::{
    benchmark, generate_trace, run_benchmark, KernelParams, TraceGenConfig, BENCHMARKS,
};

fn rt() -> CleanRuntime {
    CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 22).max_threads(12))
}

#[test]
fn racy_benchmark_always_raises_across_runs() {
    let b = benchmark("barnes").unwrap();
    for run in 0..5 {
        let rt = rt();
        let p = KernelParams::new().threads(3).racy(true).seed(run);
        let r = run_benchmark(b, &rt, &p);
        assert!(
            matches!(r, Err(CleanError::Race(_)) | Err(CleanError::Poisoned)),
            "run {run}: {r:?}"
        );
        let race = rt.first_race().expect("race recorded");
        assert!(matches!(
            race.kind,
            RaceKind::WriteAfterWrite | RaceKind::ReadAfterWrite
        ));
    }
}

#[test]
fn race_free_benchmark_is_deterministic_end_to_end() {
    let b = benchmark("streamcluster").unwrap();
    let once = || {
        let rt = rt();
        let out = run_benchmark(b, &rt, &KernelParams::new().threads(3)).unwrap();
        (out, rt.stats().digest())
    };
    let (o1, d1) = once();
    let (o2, d2) = once();
    assert_eq!(o1, o2);
    assert_eq!(d1, d2);
}

#[test]
fn software_and_trace_engines_agree_on_verdicts() {
    // The same logical scenario expressed for the runtime and as a trace:
    // both CLEAN implementations must agree (race), and FastTrack too.
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let trace = vec![
        TraceEvent::Fork {
            parent: t0,
            child: t1,
        },
        TraceEvent::Write {
            tid: t1,
            addr: 0,
            size: 4,
        },
        TraceEvent::Write {
            tid: t0,
            addr: 0,
            size: 4,
        },
    ];
    let mut engine = CleanEngine::new(2);
    let engine_races = run_detector(&mut engine, &trace);
    assert_eq!(engine_races.len(), 1);
    assert_eq!(engine_races[0].kind, FullRaceKind::Waw);

    let mut ft = FastTrack::new(2);
    assert!(!run_detector(&mut ft, &trace).is_empty());

    let rt = rt();
    let x = rt.alloc_array::<u32>(1).unwrap();
    let result = rt.run(|ctx| {
        let child = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
        let mine = ctx.write(&x, 0, 2u32);
        let theirs = ctx.join(child)?;
        assert!(mine.is_err() || theirs.is_err());
        Ok(())
    });
    assert!(matches!(result, Err(CleanError::Race(_))));
}

#[test]
fn clean_misses_war_that_full_detectors_catch() {
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let trace = vec![
        TraceEvent::Read {
            tid: t0,
            addr: 8,
            size: 4,
        },
        TraceEvent::Write {
            tid: t1,
            addr: 8,
            size: 4,
        },
    ];
    let mut clean = CleanEngine::new(2);
    let mut ft = FastTrack::new(2);
    let mut vc = VcFullDetector::new(2);
    assert!(run_detector(&mut clean, &trace).is_empty(), "WAR skipped");
    assert_eq!(run_detector(&mut ft, &trace)[0].kind, FullRaceKind::War);
    assert_eq!(run_detector(&mut vc, &trace)[0].kind, FullRaceKind::War);
}

#[test]
fn clean_catches_what_tsan_evicts() {
    // Fill a TSan shadow granule so the first write's record is evicted;
    // CLEAN's fixed-layout epochs never forget.
    let mut trace = vec![TraceEvent::Write {
        tid: ThreadId::new(0),
        addr: 0,
        size: 1,
    }];
    for i in 1..=4 {
        trace.push(TraceEvent::Write {
            tid: ThreadId::new(1),
            addr: i,
            size: 1,
        });
    }
    trace.push(TraceEvent::Write {
        tid: ThreadId::new(2),
        addr: 0,
        size: 1,
    });
    let mut tsan = TsanLike::new(3);
    let tsan_races = run_detector(&mut tsan, &trace);
    assert!(
        tsan_races.iter().all(|r| r.previous != ThreadId::new(0)),
        "tsan evicted the record"
    );
    let mut clean = CleanEngine::new(3);
    let clean_races = run_detector(&mut clean, &trace);
    assert!(clean_races
        .iter()
        .any(|r| r.previous == ThreadId::new(0) && r.current == ThreadId::new(2)));
}

#[test]
fn every_benchmark_profile_generates_a_runnable_trace() {
    let cfg = TraceGenConfig {
        threads: 4,
        accesses_per_thread: 300,
        seed: 3,
    };
    for b in BENCHMARKS {
        let trace = generate_trace(b, &cfg);
        assert_eq!(trace.num_threads(), 4, "{}", b.name);
        assert!(trace.shared_accesses() > 0, "{}", b.name);
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
        assert_eq!(r.hw.unwrap().races, 0, "{} trace must be race-free", b.name);
        assert!(r.cycles > 0);
    }
}

#[test]
fn hardware_detection_overhead_is_moderate() {
    let b = benchmark("blackscholes").unwrap();
    let cfg = TraceGenConfig {
        threads: 4,
        accesses_per_thread: 2_000,
        seed: 9,
    };
    let trace = generate_trace(b, &cfg);
    let base = Machine::new(MachineConfig::baseline()).run(&trace);
    let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
    let slowdown = det.cycles as f64 / base.cycles as f64;
    assert!(slowdown < 2.0, "hardware CLEAN should be cheap: {slowdown}");
    // Software CLEAN on the same benchmark costs far more per access —
    // that relationship is the heart of the paper.
}

#[test]
fn recorded_traces_cross_validate_with_offline_engines() {
    // Run real kernels with trace recording; the offline CLEAN engine and
    // FastTrack must agree with the online verdict on the *recorded*
    // interleaving.
    for (name, racy) in [
        ("streamcluster", false),
        ("barnes", false),
        ("radix", false),
        ("water_nsquared", true),
    ] {
        let b = benchmark(name).unwrap();
        let rt = CleanRuntime::new(
            RuntimeConfig::new()
                .heap_size(1 << 22)
                .max_threads(12)
                .record_trace(true),
        );
        let result = run_benchmark(b, &rt, &KernelParams::new().threads(3).racy(racy));
        let trace = rt.recorded_trace().expect("recording enabled");
        assert!(!trace.is_empty(), "{name}");
        let online_raced = rt.first_race().is_some();
        assert_eq!(online_raced, racy, "{name}: unexpected verdict {result:?}");

        let mut engine = CleanEngine::new(12);
        let offline = run_detector(&mut engine, &trace);
        assert_eq!(
            online_raced,
            !offline.is_empty(),
            "{name}: online and offline CLEAN disagree ({} offline races)",
            offline.len()
        );
        let mut ft = FastTrack::new(12);
        let ft_races = run_detector(&mut ft, &trace);
        if online_raced {
            assert!(!ft_races.is_empty(), "{name}: FastTrack missed the race");
        }
    }
}

#[test]
fn war_racy_execution_completes_deterministically() {
    // A WAR-racy but WAW/RAW-free program: CLEAN lets it complete and the
    // results are deterministic under Kendo.
    let once = || {
        let rt = rt();
        let x = rt.alloc_array::<u32>(4).unwrap();
        let out = rt
            .run(|ctx| {
                for i in 0..4 {
                    ctx.write(&x, i, i as u32 + 10)?;
                }
                // Root reads early; the child writes later (WAR when the
                // child's write physically follows — either way no
                // exception because reads never update metadata).
                let r0 = ctx.read(&x, 0)?;
                let child = ctx.spawn(move |c| {
                    c.tick(50);
                    c.write(&x, 0, 99u32)
                })?;
                ctx.join(child)??;
                let r1 = ctx.read(&x, 0)?;
                Ok(u64::from(r0) << 32 | u64::from(r1))
            })
            .unwrap();
        assert!(rt.first_race().is_none());
        out
    };
    assert_eq!(once(), once());
}
