//! Randomized end-to-end validation: generate arbitrary barrier-phased
//! programs (the structure of the SPLASH/PARSEC models) and check the
//! CLEAN execution-model guarantees on every one of them:
//!
//! * race-free-by-construction programs never raise and are deterministic
//!   (identical outputs and digests across runs);
//! * the same program with one injected same-phase write collision always
//!   raises a race exception — at the collision's exact location (the
//!   victim cell, between the two colliding writer threads), in every
//!   schedule.
//!
//! Everything about a generated program, including its thread count, is
//! an explicit function of the seed — nothing depends on the OS schedule.

use clean::core::{RaceKind, TraceEvent};
use clean::runtime::{CleanError, CleanRuntime, RaceReport, RuntimeConfig, SharedArray};
use clean::workloads::plan_from_trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CELLS_PER_THREAD: usize = 16;

/// Base seed for every generated program (`CLEAN_TEST_SEED`, default 0):
/// test `i` of a loop runs seed `base + i`, so exporting a failure's
/// printed seed replays that exact program as the first iteration.
fn base_seed() -> u64 {
    std::env::var("CLEAN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Failure context naming the seed and the one-line repro command.
fn repro(test: &str, seed: u64) -> String {
    format!("seed {seed} [repro: CLEAN_TEST_SEED={seed} cargo test --test randomized {test}]")
}

/// One shared-memory operation of a generated program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write my own cell `i` (own partition: race-free within a phase).
    WriteOwn(usize),
    /// Read cell `i` of thread `t`'s partition — only emitted for cells
    /// written in *earlier* phases (ordered by the barrier).
    ReadPrev(usize, usize),
    /// Lock-protected increment of the shared counter.
    LockedAdd,
}

/// A barrier-phased program: `ops[phase][thread]` is that thread's op
/// list for the phase.
#[derive(Debug, Clone)]
struct Program {
    /// Worker count, derived from the seed (2..=4).
    threads: usize,
    ops: Vec<Vec<Vec<Op>>>,
    /// Injected bug: in this phase, threads 0 and 1 write the victim cell.
    collision: Option<usize>,
}

fn generate(seed: u64, phases: usize, ops_per_phase: usize) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    // The whole shape, thread count included, is a function of the seed.
    let threads = 2 + (seed % 3) as usize;
    // written[t][c] = last phase in which thread t wrote its cell c.
    let mut written: Vec<Vec<Option<usize>>> = vec![vec![None; CELLS_PER_THREAD]; threads];
    let mut ops = Vec::new();
    for phase in 0..phases {
        let mut per_thread = Vec::new();
        // Snapshot of what existed before this phase (readable now).
        let snapshot = written.clone();
        for written_t in written.iter_mut() {
            let mut list = Vec::new();
            for _ in 0..ops_per_phase {
                match rng.gen_range(0..10u8) {
                    0..=3 => {
                        // Write-once: rewriting a cell in phase p would
                        // race with same-phase reads justified by earlier
                        // writes, so a written cell becomes read-only.
                        let fresh: Vec<usize> = (0..CELLS_PER_THREAD)
                            .filter(|&c| written_t[c].is_none())
                            .collect();
                        if let Some(&c) = fresh.get(rng.gen_range(0..fresh.len().max(1))) {
                            written_t[c] = Some(phase);
                            list.push(Op::WriteOwn(c));
                        } else {
                            list.push(Op::LockedAdd);
                        }
                    }
                    4..=7 => {
                        // Read something some thread wrote in an earlier
                        // phase (barrier-ordered; never this phase).
                        let t2 = rng.gen_range(0..threads);
                        let candidates: Vec<usize> = (0..CELLS_PER_THREAD)
                            .filter(|&c| snapshot[t2][c].is_some_and(|p| p < phase))
                            .collect();
                        if let Some(&c) = candidates.get(rng.gen_range(0..candidates.len().max(1)))
                        {
                            list.push(Op::ReadPrev(t2, c));
                        }
                    }
                    _ => list.push(Op::LockedAdd),
                }
            }
            per_thread.push(list);
        }
        ops.push(per_thread);
    }
    Program {
        threads,
        ops,
        collision: None,
    }
}

/// The outcome of one monitored run, with everything the assertions need
/// to pin the race to its injected location.
struct RunOutcome {
    result: Result<u64, CleanError>,
    digest: u64,
    first_race: Option<RaceReport>,
    victim_addr: usize,
    /// The event trace, when the config asked for recording.
    trace: Option<Vec<TraceEvent>>,
}

fn run(program: &Program) -> RunOutcome {
    run_cfg(program, true)
}

fn run_cfg(program: &Program, fast_path: bool) -> RunOutcome {
    run_with(
        program,
        RuntimeConfig::new()
            .heap_size(1 << 16)
            .max_threads(8)
            .write_filter(fast_path)
            .page_cache(fast_path)
            .sharded_stats(fast_path),
    )
}

fn run_with(program: &Program, cfg: RuntimeConfig) -> RunOutcome {
    let threads = program.threads;
    let rt = CleanRuntime::new(cfg);
    let cells: SharedArray<u64> = rt.alloc_array(threads * CELLS_PER_THREAD).unwrap();
    let counter: SharedArray<u64> = rt.alloc_array(1).unwrap();
    let victim: SharedArray<u64> = rt.alloc_array(1).unwrap();
    let victim_addr = victim.base_addr();
    let lock = rt.create_mutex();
    let barrier = rt.create_barrier(threads);
    let program = program.clone();
    let result = rt.run(|ctx| {
        let mut kids = Vec::new();
        for t in 0..threads {
            let (lock, barrier) = (lock.clone(), barrier.clone());
            let program = program.clone();
            kids.push(ctx.spawn(move |c| {
                let mut h = 0u64;
                for (phase, per_thread) in program.ops.iter().enumerate() {
                    for op in &per_thread[t] {
                        match *op {
                            Op::WriteOwn(cell) => {
                                let idx = t * CELLS_PER_THREAD + cell;
                                c.write(&cells, idx, (phase as u64) << 8 | cell as u64)?;
                            }
                            Op::ReadPrev(t2, cell) => {
                                h = h.wrapping_mul(31)
                                    ^ c.read(&cells, t2 * CELLS_PER_THREAD + cell)?;
                            }
                            Op::LockedAdd => {
                                c.lock(&lock)?;
                                let v = c.read(&counter, 0)?;
                                c.write(&counter, 0, v + 1)?;
                                c.unlock(&lock)?;
                            }
                        }
                        c.tick(1);
                    }
                    if program.collision == Some(phase) && t < 2 {
                        // The injected bug: threads 0 and 1 write the same
                        // cell in the same phase, unordered.
                        c.write(&victim, 0, t as u64)?;
                    }
                    c.barrier_wait(&barrier)?;
                }
                Ok(h)
            })?);
        }
        let mut out = 0u64;
        for k in kids {
            out = out.wrapping_mul(131) ^ ctx.join(k)??;
        }
        ctx.lock(&lock)?;
        out ^= ctx.read(&counter, 0)?;
        ctx.unlock(&lock)?;
        Ok(out)
    });
    RunOutcome {
        result,
        digest: rt.stats().digest(),
        first_race: rt.first_race(),
        victim_addr,
        trace: rt.recorded_trace(),
    }
}

#[test]
fn random_race_free_programs_are_clean_and_deterministic() {
    let base = base_seed();
    for i in 0..12u64 {
        let seed = base.wrapping_add(i);
        let ctx = repro(
            "random_race_free_programs_are_clean_and_deterministic",
            seed,
        );
        let program = generate(seed, 5, 12);
        let a = run(&program);
        let o1 = a
            .result
            .unwrap_or_else(|e| panic!("{ctx}: unexpected exception {e}"));
        assert_eq!(a.first_race, None, "{ctx}: no race may be recorded");
        let b = run(&program);
        let o2 = b.result.unwrap();
        assert_eq!(o1, o2, "{ctx}: output must be deterministic");
        assert_eq!(a.digest, b.digest, "{ctx}: digest must be deterministic");
    }
}

#[test]
fn fast_path_is_verdict_neutral_across_200_random_seeds() {
    // The SFR write filter (and page cache / sharded stats) may only
    // change *how fast* checks run, never what they conclude: for 200
    // generated programs — half race-free, half with an injected WAW —
    // the fast-path and slow-path runtimes must agree on the verdict,
    // and on the exact first race (kind, address, size, thread pair)
    // when there is one. Deterministic execution makes the two runs
    // directly comparable: same program, same schedule, knobs aside.
    let base = base_seed();
    for i in 0..200u64 {
        let seed = base.wrapping_add(i);
        let ctx = repro("fast_path_is_verdict_neutral_across_200_random_seeds", seed);
        let mut program = generate(seed, 3, 6);
        if i % 2 == 1 {
            program.collision = Some(seed as usize % 3);
        }
        let on = run_cfg(&program, true);
        let off = run_cfg(&program, false);
        match (&on.result, &off.result) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{ctx}: outputs diverged");
                assert_eq!(on.digest, off.digest, "{ctx}: digests diverged");
                assert_eq!(on.first_race, None, "{ctx}");
                assert_eq!(off.first_race, None, "{ctx}");
                assert_eq!(i % 2, 0, "{ctx}: injected race not raised");
            }
            (Err(_), Err(_)) => {
                let a = on
                    .first_race
                    .unwrap_or_else(|| panic!("{ctx}: fast path recorded no race"));
                let b = off
                    .first_race
                    .unwrap_or_else(|| panic!("{ctx}: slow path recorded no race"));
                assert_eq!(a.kind, b.kind, "{ctx}: race kind diverged");
                assert_eq!(a.addr, b.addr, "{ctx}: race address diverged");
                assert_eq!(a.size, b.size, "{ctx}: race size diverged");
                assert_eq!(
                    (a.current_tid, a.previous_tid()),
                    (b.current_tid, b.previous_tid()),
                    "{ctx}: racing thread pair diverged"
                );
            }
            (a, b) => panic!("{ctx}: verdicts diverged: fast={a:?} slow={b:?}"),
        }
    }
}

#[test]
fn derived_check_plans_are_verdict_neutral_across_200_random_seeds() {
    // A derived check plan may only change *which* accesses run through
    // the full Figure 2 check — elided, coalesced, and batched ranges
    // must never change what the execution concludes. For 200 generated
    // programs — half race-free, half with an injected WAW — a
    // profiling run with plans off records a trace, a plan is derived
    // from that trace, and the same program re-runs with the plan
    // installed: verdicts, outputs, digests, and the exact first race
    // (kind, address, size, thread pair) must all agree. The soundness
    // hinge is that the racing granule always shows foreign accesses in
    // the recorded trace, so it is never classified elidable.
    let base = base_seed();
    for i in 0..200u64 {
        let seed = base.wrapping_add(i);
        let ctx = repro(
            "derived_check_plans_are_verdict_neutral_across_200_random_seeds",
            seed,
        );
        let mut program = generate(seed, 3, 6);
        if i % 2 == 1 {
            program.collision = Some(seed as usize % 3);
        }
        let off = run_with(
            &program,
            RuntimeConfig::new()
                .heap_size(1 << 16)
                .max_threads(8)
                .record_trace(true),
        );
        let events = off
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{ctx}: profiling run recorded no trace"));
        let (plan, _coverage) = plan_from_trace(events, 0);
        let on = run_with(
            &program,
            RuntimeConfig::new()
                .heap_size(1 << 16)
                .max_threads(8)
                .check_plan(Some(plan)),
        );
        match (&on.result, &off.result) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{ctx}: outputs diverged");
                assert_eq!(on.digest, off.digest, "{ctx}: digests diverged");
                assert_eq!(on.first_race, None, "{ctx}");
                assert_eq!(off.first_race, None, "{ctx}");
                assert_eq!(i % 2, 0, "{ctx}: injected race not raised");
            }
            (Err(_), Err(_)) => {
                let a = on
                    .first_race
                    .unwrap_or_else(|| panic!("{ctx}: plan-on run recorded no race"));
                let b = off
                    .first_race
                    .unwrap_or_else(|| panic!("{ctx}: plan-off run recorded no race"));
                assert_eq!(a.kind, b.kind, "{ctx}: race kind diverged");
                assert_eq!(a.addr, b.addr, "{ctx}: race address diverged");
                assert_eq!(a.size, b.size, "{ctx}: race size diverged");
                assert_eq!(
                    (a.current_tid, a.previous_tid()),
                    (b.current_tid, b.previous_tid()),
                    "{ctx}: racing thread pair diverged"
                );
            }
            (a, b) => panic!("{ctx}: verdicts diverged: plan-on={a:?} plan-off={b:?}"),
        }
    }
}

#[test]
fn injected_collisions_raise_at_the_injected_location() {
    let base = base_seed();
    for i in 0..12u64 {
        let seed = base.wrapping_add(i);
        let ctx = repro("injected_collisions_raise_at_the_injected_location", seed);
        let mut program = generate(seed, 5, 12);
        let phase = seed as usize % 5;
        program.collision = Some(phase);
        let out = run(&program);
        assert!(
            matches!(
                out.result,
                Err(CleanError::Race(_)) | Err(CleanError::Poisoned)
            ),
            "{ctx}: injected WAW must raise, got {:?}",
            out.result
        );
        // Location assertions: not merely *a* race, but *the* race we
        // injected — a WAW on the victim cell between the two colliding
        // writers. Workers get runtime tids 1..=threads (root is 0), so
        // program threads 0 and 1 are runtime tids 1 and 2.
        let r = out
            .first_race
            .unwrap_or_else(|| panic!("{ctx}: no race report recorded"));
        assert_eq!(
            r.kind,
            RaceKind::WriteAfterWrite,
            "{ctx}: only writes touch the victim cell"
        );
        assert_eq!(
            r.addr, out.victim_addr,
            "{ctx}: race must be on the victim cell, not collateral"
        );
        assert_eq!(r.size, 8, "{ctx}: whole-cell access");
        let (cur, prev) = (r.current_tid.index(), r.previous_tid().index());
        assert!(
            (cur == 1 && prev == 2) || (cur == 2 && prev == 1),
            "{ctx}: colliding tids must be the two injected writers, got \
             current {cur} previous {prev}"
        );
    }
}
