//! CLTR v2 compatibility and robustness tests.
//!
//! Satellite checks for the v2 chunk table:
//!
//! * **Backward compatibility** — a v1 trace read through every decode
//!   path ([`TraceReader`], [`replay_sharded`], [`replay_file_stealing`])
//!   produces identical verdicts and an identical digest to its v2
//!   rewrite. The table is framing, not content.
//! * **Footer robustness** — truncating or corrupting any byte of the
//!   chunk-table footer yields a clean [`TraceError`], never a wrong
//!   verdict and never a panic.

use clean_core::{LockId, ThreadId, TraceEvent};
use clean_trace::{
    digest_events, digest_file, read_range, read_table, read_trace, replay_file_stealing,
    replay_sharded, scan_trace, write_trace, write_trace_v1, EngineKind, TraceReader, TABLE_MAGIC,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Per-test scratch directory under the system temp dir (the repo has no
/// tempfile dependency; this mirrors the other integration tests).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-format-v2-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic mixed workload with real races: unsynchronised
/// writes to shared addresses, lock-protected sections, and fork/join
/// edges, spread across enough addresses to exercise several shards.
fn racy_events() -> Vec<TraceEvent> {
    let mut events = Vec::new();
    events.push(TraceEvent::Fork {
        parent: ThreadId::new(0),
        child: ThreadId::new(1),
    });
    events.push(TraceEvent::Fork {
        parent: ThreadId::new(0),
        child: ThreadId::new(2),
    });
    for i in 0..400u64 {
        let tid = ThreadId::new((i % 3) as u16);
        let addr = ((i * 37) % 64) as usize * 8;
        if i % 5 == 0 {
            // Per-thread locks: sync events in the stream, but no
            // cross-thread happens-before edges that would hide races.
            let lock = (i % 3) as LockId;
            events.push(TraceEvent::Acquire { tid, lock });
            events.push(TraceEvent::Write {
                tid,
                addr: 16384 + addr,
                size: 8,
            });
            events.push(TraceEvent::Release { tid, lock });
        } else if i % 3 == 0 {
            events.push(TraceEvent::Read { tid, addr, size: 4 });
        } else {
            events.push(TraceEvent::Write { tid, addr, size: 4 });
        }
    }
    events.push(TraceEvent::Join {
        parent: ThreadId::new(0),
        child: ThreadId::new(1),
    });
    events.push(TraceEvent::Join {
        parent: ThreadId::new(0),
        child: ThreadId::new(2),
    });
    events
}

fn trailer_magic(path: &Path) -> [u8; 4] {
    let bytes = std::fs::read(path).unwrap();
    bytes[bytes.len() - 4..].try_into().unwrap()
}

/// Satellite 1: a v1 trace and its v2 rewrite agree on every decode
/// path — same events, same digest, same verdicts from both the
/// in-memory sharded replay and the streaming stealing replay.
#[test]
fn v1_and_v2_rewrites_agree_on_verdicts_and_digest() {
    let dir = scratch("compat");
    let v1 = dir.join("trace.v1.cltr");
    let v2 = dir.join("trace.v2.cltr");
    let events = racy_events();
    write_trace_v1(&v1, &events).unwrap();
    write_trace(&v2, &events).unwrap();

    // v1 carries no table or trailer magic; v2 carries both.
    assert!(read_table(&v1).unwrap().is_none());
    let table = read_table(&v2).unwrap().expect("v2 trace has a table");
    assert_eq!(table.total_events, events.len() as u64);
    assert_ne!(trailer_magic(&v1), TABLE_MAGIC);
    assert_eq!(trailer_magic(&v2), TABLE_MAGIC);

    // TraceReader: byte-identical event streams.
    assert_eq!(TraceReader::open(&v1).unwrap().version(), 1);
    assert_eq!(TraceReader::open(&v2).unwrap().version(), 2);
    let ev1 = read_trace(&v1).unwrap();
    let ev2 = read_trace(&v2).unwrap();
    assert_eq!(ev1, events);
    assert_eq!(ev2, events);

    // The digest covers events, not framing: both files and the
    // in-memory stream agree.
    let reference = digest_events(&events);
    assert_eq!(digest_file(&v1).unwrap(), reference);
    assert_eq!(digest_file(&v2).unwrap(), reference);

    // Identical verdicts through both replay engines on every path.
    let scan1 = scan_trace(&v1).unwrap();
    let scan2 = scan_trace(&v2).unwrap();
    assert_eq!(scan1.events, scan2.events);
    assert_eq!(scan1.threads, scan2.threads);
    for kind in [EngineKind::Clean, EngineKind::FastTrack] {
        let sharded = replay_sharded(&events, kind, 4);
        let (s1, st1) = replay_file_stealing(&v1, kind, 4, 2, scan1.threads).unwrap();
        let (s2, st2) = replay_file_stealing(&v2, kind, 4, 2, scan2.threads).unwrap();
        assert!(!sharded.is_empty(), "workload must contain races");
        assert_eq!(s1, sharded);
        assert_eq!(s2, sharded);
        // v1 decodes via the sequential fallback, v2 via the table.
        assert!(!st1.used_table);
        assert_eq!(st1.decode_workers, 1);
        assert!(st2.used_table);
    }

    // Random access agrees between the table path and the v1 fallback.
    let window = 100..250;
    assert_eq!(
        read_range(&v1, window.clone()).unwrap(),
        &events[100..250],
        "v1 sequential fallback window"
    );
    assert_eq!(
        read_range(&v2, window).unwrap(),
        &events[100..250],
        "v2 table-seek window"
    );
}

/// The footer region of a v2 file: everything after the end-of-stream
/// marker. Corruptions here must never change verdicts silently.
fn footer_start(bytes: &[u8]) -> usize {
    let count = u32::from_le_bytes(
        bytes[bytes.len() - 24..bytes.len() - 20]
            .try_into()
            .unwrap(),
    );
    bytes.len() - 24 - 24 * count as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 2: flip any bit of the footer, or truncate inside it —
    /// every decode path either errors cleanly or (for paths that do not
    /// consult the table) still produces the correct verdicts. Never a
    /// wrong verdict, never a panic.
    #[test]
    fn corrupt_chunk_table_never_changes_verdicts(
        chunk in 24usize..512,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
        truncate in proptest::bool::ANY,
    ) {
        let dir = scratch("corrupt");
        let path = dir.join(format!("trace-{chunk}-{bit}-{truncate}.cltr"));
        let events = racy_events();
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = clean_trace::TraceWriter::new(file).unwrap().chunk_bytes(chunk);
            for e in &events {
                w.write_event(e).unwrap();
            }
            w.finish().unwrap();
        }
        let expected = replay_sharded(&events, EngineKind::Clean, 4);
        prop_assert!(!expected.is_empty());

        let mut bytes = std::fs::read(&path).unwrap();
        let footer = footer_start(&bytes);
        let span = bytes.len() - footer;
        if truncate {
            // Cut somewhere inside the footer (always losing >= 1 byte).
            let keep = footer + ((span - 1) as f64 * frac) as usize;
            bytes.truncate(keep);
        } else {
            let pos = footer + ((span - 1) as f64 * frac) as usize;
            bytes[pos] ^= 1 << bit;
        }
        std::fs::write(&path, &bytes).unwrap();

        // Strict paths: a damaged footer is a clean error.
        prop_assert!(read_trace(&path).is_err(), "strict reader must reject");
        prop_assert!(TraceReader::new(&bytes[..]).unwrap().collect::<Result<Vec<_>, _>>().is_err());

        // Replay paths: either a clean TraceError or the exact verdicts —
        // never silently wrong, and no panics anywhere.
        if let Ok((races, _)) = replay_file_stealing(&path, EngineKind::Clean, 4, 2, 8) {
            prop_assert_eq!(races, expected.clone());
        }
        if let Ok(scan) = scan_trace(&path) {
            prop_assert_eq!(scan.events, events.len() as u64);
            prop_assert_eq!(scan.threads, 3);
        }
        if let Ok(slice) = read_range(&path, 10..20) {
            prop_assert_eq!(slice, &events[10..20]);
        }
    }
}
