//! End-to-end checks of the `clean-analyze` process exit codes and the
//! `digest` subcommand: scripts (and the serve client) branch on these
//! codes without parsing stdout.

use clean_core::{ThreadId, TraceEvent};
use clean_trace::{digest_events, write_trace};
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_clean-analyze");

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clean-cli-{}-{name}", std::process::id()))
}

fn t(i: u16) -> ThreadId {
    ThreadId::new(i)
}

fn racy_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Write {
            tid: t(0),
            addr: 64,
            size: 4,
        },
        TraceEvent::Write {
            tid: t(1),
            addr: 64,
            size: 4,
        },
    ]
}

fn clean_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Acquire { tid: t(0), lock: 1 },
        TraceEvent::Write {
            tid: t(0),
            addr: 64,
            size: 4,
        },
        TraceEvent::Release { tid: t(0), lock: 1 },
        TraceEvent::Acquire { tid: t(1), lock: 1 },
        TraceEvent::Write {
            tid: t(1),
            addr: 64,
            size: 4,
        },
        TraceEvent::Release { tid: t(1), lock: 1 },
    ]
}

#[test]
fn replay_exit_codes_distinguish_race_clean_and_decode_error() {
    let racy = tmp("racy.cltr");
    let clean = tmp("clean.cltr");
    let junk = tmp("junk.cltr");
    write_trace(&racy, &racy_events()).unwrap();
    write_trace(&clean, &clean_events()).unwrap();
    std::fs::write(&junk, b"not a trace at all").unwrap();

    let run = |path: &PathBuf| {
        Command::new(BIN)
            .args(["replay", "--engine", "clean", "--shards", "2"])
            .arg(path)
            .output()
            .unwrap()
    };
    assert_eq!(run(&racy).status.code(), Some(10), "racy trace");
    assert_eq!(run(&clean).status.code(), Some(0), "clean trace");
    assert_eq!(run(&junk).status.code(), Some(12), "undecodable trace");

    // A missing file is an I/O error, not a decode error.
    let missing = Command::new(BIN)
        .args(["replay", "--engine", "clean"])
        .arg(tmp("nonexistent.cltr"))
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(1));

    for p in [&racy, &clean, &junk] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn digest_subcommand_prints_canonical_digest() {
    let path = tmp("digest.cltr");
    let events = racy_events();
    write_trace(&path, &events).unwrap();
    let out = Command::new(BIN).arg("digest").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let printed = String::from_utf8(out.stdout).unwrap();
    assert_eq!(printed.trim(), digest_events(&events).to_string());

    let junk = tmp("digest-junk.cltr");
    std::fs::write(&junk, b"CLTRgarbage").unwrap();
    let bad = Command::new(BIN).arg("digest").arg(&junk).output().unwrap();
    assert_eq!(bad.status.code(), Some(12), "decode failure exit code");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&junk).ok();
}
