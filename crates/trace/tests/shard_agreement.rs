//! End-to-end agreement tests over recorded kernel traces:
//!
//! * the address-sharded parallel replay must match sequential replay
//!   race-for-race, for every engine, on racy recordings of multiple
//!   workload profiles;
//! * on the racy dedup recording, CLEAN and FastTrack must report
//!   identical WAW/RAW race sets, with FastTrack additionally reporting
//!   WAR races invisible to CLEAN (the paper's Section 3.2 precision
//!   gap);
//! * recorded kernel traces must hit the ≤ 8 bytes/event format target.

use clean_baselines::{FoundRace, FullRaceKind};
use clean_core::TraceEvent;
use clean_trace::{
    read_trace, record_kernel_trace, replay_sequential, replay_sharded, EngineKind, RecordOptions,
};
use std::collections::HashSet;
use std::path::PathBuf;

/// Racy profiles exercised by the agreement matrix. Spans all five
/// kernel families that have racy variants (pipeline, n-body, k-means,
/// annealing, molecular) plus a stencil.
const PROFILES: &[&str] = &[
    "dedup",
    "barnes",
    "streamcluster",
    "canneal",
    "water_nsquared",
    "fluidanimate",
];

fn record(name: &str, threads: usize) -> Vec<TraceEvent> {
    let dir = std::env::temp_dir().join(format!("clean-trace-agree-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(format!("{name}-{threads}.cltr"));
    let summary = record_kernel_trace(
        name,
        &path,
        &RecordOptions {
            threads,
            racy: true,
            seed: 11,
        },
    )
    .unwrap();
    assert!(summary.events > 0, "{name}: empty recording");
    assert!(
        summary.bytes_per_event() <= 8.0,
        "{name}: {:.2} B/event exceeds the 8 B/event target",
        summary.bytes_per_event()
    );
    let events = read_trace(&path).unwrap();
    assert_eq!(events.len() as u64, summary.events);
    std::fs::remove_file(&path).ok();
    events
}

#[test]
fn sharded_replay_matches_sequential_on_racy_recordings() {
    for name in PROFILES {
        let events = record(name, 4);
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            assert!(
                !seq.is_empty(),
                "{name}/{kind}: racy recording found race-free"
            );
            for shards in [2, 3, 5, 8] {
                let sharded = replay_sharded(&events, kind, shards);
                assert_eq!(
                    sharded, seq,
                    "{name}/{kind}: {shards}-way sharded replay diverged"
                );
            }
        }
    }
}

fn by_kind(races: &[FoundRace], kind: FullRaceKind) -> HashSet<FoundRace> {
    races.iter().copied().filter(|r| r.kind == kind).collect()
}

#[test]
fn clean_and_fasttrack_agree_on_waw_raw_and_fasttrack_adds_war() {
    let events = record("dedup", 4);
    let clean = replay_sequential(&events, EngineKind::Clean);
    let ft = replay_sequential(&events, EngineKind::FastTrack);

    // Identical WAW and RAW sets: CLEAN's cleaner semantics lose no
    // write-after-write or read-after-write precision.
    assert_eq!(
        by_kind(&clean, FullRaceKind::Waw),
        by_kind(&ft, FullRaceKind::Waw),
        "WAW sets diverge"
    );
    assert_eq!(
        by_kind(&clean, FullRaceKind::Raw),
        by_kind(&ft, FullRaceKind::Raw),
        "RAW sets diverge"
    );
    assert!(!by_kind(&clean, FullRaceKind::Waw).is_empty());
    assert!(!by_kind(&clean, FullRaceKind::Raw).is_empty());

    // The gap: FastTrack reports WAR races, CLEAN deliberately none.
    assert!(by_kind(&clean, FullRaceKind::War).is_empty());
    assert!(
        !by_kind(&ft, FullRaceKind::War).is_empty(),
        "racy dedup recording carries no WAR race"
    );
}

#[test]
fn sharding_is_exact_across_thread_counts() {
    // The merge logic sees more cross-shard traffic as thread count and
    // trace size grow; pin agreement on dedup at two sizes.
    for threads in [2, 6] {
        let events = record("dedup", threads);
        for kind in [EngineKind::Clean, EngineKind::FastTrack] {
            let seq = replay_sequential(&events, kind);
            assert_eq!(
                replay_sharded(&events, kind, 4),
                seq,
                "dedup x{threads}/{kind} diverged"
            );
        }
    }
}
