//! Format-level integration tests: lossless round-trips over arbitrary
//! event streams, and rejection of truncated or corrupted inputs.

use clean_core::{LockId, ThreadId, TraceEvent};
use clean_trace::{TraceReader, TraceWriter};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let tid = 0u16..6;
    prop_oneof![
        (tid.clone(), 0usize..1 << 21, 1usize..=64).prop_map(|(t, addr, size)| {
            TraceEvent::Read {
                tid: ThreadId::new(t),
                addr,
                size,
            }
        }),
        (tid.clone(), 0usize..1 << 21, 1usize..=64).prop_map(|(t, addr, size)| {
            TraceEvent::Write {
                tid: ThreadId::new(t),
                addr,
                size,
            }
        }),
        (tid.clone(), 0u64..64).prop_map(|(t, lock)| TraceEvent::Acquire {
            tid: ThreadId::new(t),
            lock: lock as LockId,
        }),
        (tid.clone(), 0u64..64).prop_map(|(t, lock)| TraceEvent::Release {
            tid: ThreadId::new(t),
            lock: lock as LockId,
        }),
        (tid.clone(), 0u16..6).prop_map(|(p, c)| TraceEvent::Fork {
            parent: ThreadId::new(p),
            child: ThreadId::new(c),
        }),
        (tid, 0u16..6).prop_map(|(p, c)| TraceEvent::Join {
            parent: ThreadId::new(p),
            child: ThreadId::new(c),
        }),
    ]
}

/// `TraceWriter::finish` consumes the writer, so tap the byte stream with
/// a shared buffer.
#[derive(Default, Clone)]
struct SharedBuf(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn encode_shared(events: &[TraceEvent], chunk_bytes: usize) -> Vec<u8> {
    let buf = SharedBuf::default();
    let mut w = TraceWriter::new(buf.clone())
        .unwrap()
        .chunk_bytes(chunk_bytes);
    for e in events {
        w.write_event(e).unwrap();
    }
    assert_eq!(w.events_written(), events.len() as u64);
    let summary = w.finish().unwrap();
    let bytes = buf.0.borrow().clone();
    assert_eq!(summary.bytes as usize, bytes.len());
    assert_eq!(summary.events, events.len() as u64);
    bytes
}

fn decode(bytes: &[u8]) -> clean_trace::Result<Vec<TraceEvent>> {
    TraceReader::new(bytes)?.collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_is_lossless(
        events in proptest::collection::vec(arb_event(), 0..300),
        chunk in 1usize..2048,
    ) {
        let bytes = encode_shared(&events, chunk);
        let decoded = decode(&bytes).expect("intact stream must decode");
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn every_truncation_is_detected(
        events in proptest::collection::vec(arb_event(), 1..120),
        chunk in 1usize..512,
        frac in 0.0f64..1.0,
    ) {
        let bytes = encode_shared(&events, chunk);
        // Any strict prefix must fail: mid-chunk cuts lose framing or
        // payload bytes, and cuts at chunk boundaries lose the
        // end-of-stream marker.
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            decode(&bytes[..cut]).is_err(),
            "prefix of {} of {} bytes decoded cleanly", cut, bytes.len()
        );
    }

    #[test]
    fn every_byte_flip_is_detected(
        events in proptest::collection::vec(arb_event(), 1..80),
        chunk in 1usize..512,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_shared(&events, chunk);
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip lands in the header (bad magic / version), chunk
        // framing (corrupt counts, truncation, checksum), the payload
        // (CRC-32 catches every single-bit error), or the end-of-stream
        // marker (parsed as a corrupt frame).
        prop_assert!(
            decode(&bytes).is_err(),
            "flip of bit {} at {} of {} bytes went unnoticed", bit, pos, bytes.len()
        );
    }
}

#[test]
fn empty_input_and_bad_header_are_rejected() {
    assert!(decode(&[]).is_err());
    assert!(decode(b"NOPE\x01").is_err());
    // Right magic, unsupported version.
    assert!(decode(b"CLTR\x63").is_err());
    // A bare header without the end-of-stream marker is a torn file.
    assert!(decode(b"CLTR\x01").is_err());
}

#[test]
fn header_plus_eos_marker_is_an_empty_trace() {
    let bytes = encode_shared(&[], 64);
    assert_eq!(decode(&bytes).unwrap(), Vec::<TraceEvent>::new());
}
