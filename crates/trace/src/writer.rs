//! Streaming trace serialization: [`TraceWriter`] frames encoded events
//! into checksummed chunks, and [`FileSink`] adapts a writer into the
//! runtime's [`EventSink`] capture interface.

use crate::codec::{crc32, Encoder, FORMAT_VERSION, MAGIC};
use crate::error::Result;
use clean_core::{EventSink, TraceEvent};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Default chunk payload size: large enough to amortize framing and CRC
/// overhead, small enough that corruption localizes to ~16k events.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Summary of a finished trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Events written.
    pub events: u64,
    /// Total stream bytes, including header and chunk framing.
    pub bytes: u64,
    /// Chunks emitted.
    pub chunks: u64,
}

impl WriteSummary {
    /// Mean stream bytes per event (the ≤ 8 bytes/event target).
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streaming writer of the `CLTR` binary trace format.
///
/// Events are encoded incrementally into an in-memory chunk payload;
/// when the payload reaches the chunk size it is framed (length, event
/// count, CRC-32) and flushed to the underlying writer, and the
/// encoder's delta state resets so each chunk decodes independently.
/// Call [`finish`](Self::finish) to flush the final partial chunk.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    enc: Encoder,
    payload: Vec<u8>,
    chunk_events: u32,
    chunk_bytes: usize,
    summary: WriteSummary,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?))?)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`, writing the stream header immediately.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&[FORMAT_VERSION])?;
        Ok(TraceWriter {
            out,
            enc: Encoder::new(),
            payload: Vec::with_capacity(DEFAULT_CHUNK_BYTES + 64),
            chunk_events: 0,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            summary: WriteSummary {
                events: 0,
                bytes: (MAGIC.len() + 1) as u64,
                chunks: 0,
            },
        })
    }

    /// Overrides the chunk payload threshold (testing knob).
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Encodes and buffers one event, flushing a chunk when full.
    pub fn write_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.enc.encode(event, &mut self.payload);
        self.chunk_events += 1;
        self.summary.events += 1;
        if self.payload.len() >= self.chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_events == 0 {
            return Ok(());
        }
        let crc = crc32(&self.payload);
        self.out
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&self.chunk_events.to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.summary.bytes += 12 + self.payload.len() as u64;
        self.summary.chunks += 1;
        self.payload.clear();
        self.chunk_events = 0;
        self.enc.reset();
        Ok(())
    }

    /// Flushes the final chunk, writes the end-of-stream marker (an
    /// all-zero frame, so truncation at a chunk boundary is detectable)
    /// and flushes the underlying writer, returning the stream summary.
    pub fn finish(self) -> io::Result<WriteSummary> {
        self.finish_into().map(|(summary, _)| summary)
    }

    /// [`finish`](Self::finish), additionally returning the underlying
    /// writer — the way to recover an in-memory stream (`Vec<u8>`) after
    /// encoding, e.g. to submit it over the serving protocol.
    pub fn finish_into(mut self) -> io::Result<(WriteSummary, W)> {
        self.flush_chunk()?;
        self.out.write_all(&[0u8; 12])?;
        self.summary.bytes += 12;
        self.out.flush()?;
        Ok((self.summary, self.out))
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.summary.events
    }
}

/// Thread-safe [`EventSink`] that streams a monitored execution to disk.
///
/// Attach with [`CleanRuntime::with_trace_sink`]; keep a second
/// `Arc` handle and call [`finish`](Self::finish) after the execution to
/// flush the final chunk and learn the file size. I/O errors are latched
/// and reported by `finish` (the recording hot path cannot propagate
/// them).
///
/// [`CleanRuntime::with_trace_sink`]: clean_runtime::CleanRuntime::with_trace_sink
#[derive(Debug)]
pub struct FileSink {
    state: Mutex<SinkState>,
}

#[derive(Debug)]
struct SinkState {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<io::Error>,
}

impl FileSink {
    /// Creates a sink writing the trace to `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(FileSink {
            state: Mutex::new(SinkState {
                writer: Some(TraceWriter::create(path)?),
                error: None,
            }),
        })
    }

    /// Flushes and closes the trace file, returning its summary or the
    /// first I/O error encountered while recording.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(&self) -> io::Result<WriteSummary> {
        let mut st = self.state.lock();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        st.writer
            .take()
            .expect("FileSink::finish called twice")
            .finish()
    }
}

impl EventSink for FileSink {
    fn record_event(&self, event: &TraceEvent) {
        let mut st = self.state.lock();
        if st.error.is_some() {
            return;
        }
        if let Some(w) = st.writer.as_mut() {
            if let Err(e) = w.write_event(event) {
                st.error = Some(e);
            }
        }
    }
}

/// Writes a whole in-memory trace to `path` in one call.
pub fn write_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> Result<WriteSummary> {
    let mut w = TraceWriter::create(path)?;
    for e in events {
        w.write_event(e)?;
    }
    Ok(w.finish()?)
}

/// Encodes a whole in-memory trace into a `CLTR` byte stream — the form
/// the serving protocol's SUBMIT frame carries.
pub fn encode_trace(events: &[TraceEvent]) -> Result<Vec<u8>> {
    let mut w = TraceWriter::new(Vec::new())?;
    for e in events {
        w.write_event(e)?;
    }
    let (_, bytes) = w.finish_into()?;
    Ok(bytes)
}
