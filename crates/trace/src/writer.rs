//! Streaming trace serialization: [`TraceWriter`] frames encoded events
//! into checksummed chunks, and [`FileSink`] adapts a writer into the
//! runtime's [`EventSink`] capture interface.

use crate::codec::{crc32, Encoder, FORMAT_V1, FORMAT_VERSION, MAGIC};
use crate::error::Result;
use crate::table::{ChunkEntry, ChunkTable};
use clean_core::{EventSink, TraceEvent};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Default chunk payload size: large enough to amortize framing and CRC
/// overhead, small enough that corruption localizes to ~16k events.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Summary of a finished trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Events written.
    pub events: u64,
    /// Total stream bytes, including header and chunk framing.
    pub bytes: u64,
    /// Chunks emitted.
    pub chunks: u64,
}

impl WriteSummary {
    /// Mean stream bytes per event (the ≤ 8 bytes/event target).
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streaming writer of the `CLTR` binary trace format.
///
/// Events are encoded incrementally into an in-memory chunk payload;
/// when the payload reaches the chunk size it is framed (length, event
/// count, CRC-32) and flushed to the underlying writer, and the
/// encoder's delta state resets so each chunk decodes independently.
/// Call [`finish`](Self::finish) to flush the final partial chunk.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    enc: Encoder,
    payload: Vec<u8>,
    chunk_events: u32,
    chunk_bytes: usize,
    summary: WriteSummary,
    /// Stream format version: v2 appends the chunk table, v1 does not.
    version: u8,
    /// Per-chunk table entries accumulated for the v2 footer.
    entries: Vec<ChunkEntry>,
    /// Highest thread id observed (including fork/join children).
    max_tid: u16,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?))?)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`, writing the stream header immediately. Writes the
    /// current format (v2, with a chunk table footer).
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_version(out, FORMAT_VERSION)
    }

    /// Wraps `out` as a legacy v1 writer: identical event encoding, no
    /// chunk table. Exists for compatibility testing — readers must
    /// keep decoding tableless streams forever.
    pub fn new_v1(out: W) -> io::Result<Self> {
        Self::with_version(out, FORMAT_V1)
    }

    fn with_version(mut out: W, version: u8) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&[version])?;
        Ok(TraceWriter {
            out,
            enc: Encoder::new(),
            payload: Vec::with_capacity(DEFAULT_CHUNK_BYTES + 64),
            chunk_events: 0,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            summary: WriteSummary {
                events: 0,
                bytes: (MAGIC.len() + 1) as u64,
                chunks: 0,
            },
            version,
            entries: Vec::new(),
            max_tid: 0,
        })
    }

    /// Overrides the chunk payload threshold (testing knob).
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Encodes and buffers one event, flushing a chunk when full.
    pub fn write_event(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.max_tid = self.max_tid.max(event.tid().raw());
        if let TraceEvent::Fork { child, .. } | TraceEvent::Join { child, .. } = *event {
            self.max_tid = self.max_tid.max(child.raw());
        }
        self.enc.encode(event, &mut self.payload);
        self.chunk_events += 1;
        self.summary.events += 1;
        if self.payload.len() >= self.chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_events == 0 {
            return Ok(());
        }
        if self.version == FORMAT_VERSION {
            self.entries.push(ChunkEntry {
                offset: self.summary.bytes,
                payload_len: self.payload.len() as u32,
                events: self.chunk_events,
                first_event: self.summary.events - u64::from(self.chunk_events),
            });
        }
        let crc = crc32(&self.payload);
        self.out
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&self.chunk_events.to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.summary.bytes += 12 + self.payload.len() as u64;
        self.summary.chunks += 1;
        self.payload.clear();
        self.chunk_events = 0;
        self.enc.reset();
        Ok(())
    }

    /// Flushes the final chunk, writes the end-of-stream marker (an
    /// all-zero frame, so truncation at a chunk boundary is detectable)
    /// and, for v2 streams, the chunk-table footer, then flushes the
    /// underlying writer, returning the stream summary.
    pub fn finish(self) -> io::Result<WriteSummary> {
        self.finish_into().map(|(summary, _)| summary)
    }

    /// [`finish`](Self::finish), additionally returning the underlying
    /// writer — the way to recover an in-memory stream (`Vec<u8>`) after
    /// encoding, e.g. to submit it over the serving protocol.
    pub fn finish_into(mut self) -> io::Result<(WriteSummary, W)> {
        self.flush_chunk()?;
        self.out.write_all(&[0u8; 12])?;
        self.summary.bytes += 12;
        if self.version == FORMAT_VERSION {
            let table = ChunkTable {
                entries: std::mem::take(&mut self.entries),
                total_events: self.summary.events,
                threads: u32::from(self.max_tid) + 1,
            };
            let footer = table.encode();
            self.out.write_all(&footer)?;
            self.summary.bytes += footer.len() as u64;
        }
        self.out.flush()?;
        Ok((self.summary, self.out))
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.summary.events
    }
}

/// Thread-safe [`EventSink`] that streams a monitored execution to disk.
///
/// Attach with [`CleanRuntime::with_trace_sink`]; keep a second
/// `Arc` handle and call [`finish`](Self::finish) after the execution to
/// flush the final chunk and learn the file size. I/O errors are latched
/// and reported by `finish` (the recording hot path cannot propagate
/// them).
///
/// [`CleanRuntime::with_trace_sink`]: clean_runtime::CleanRuntime::with_trace_sink
#[derive(Debug)]
pub struct FileSink {
    state: Mutex<SinkState>,
}

#[derive(Debug)]
struct SinkState {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<io::Error>,
}

impl FileSink {
    /// Creates a sink writing the trace to `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        Ok(FileSink {
            state: Mutex::new(SinkState {
                writer: Some(TraceWriter::create(path)?),
                error: None,
            }),
        })
    }

    /// Flushes and closes the trace file, returning its summary or the
    /// first I/O error encountered while recording.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(&self) -> io::Result<WriteSummary> {
        let mut st = self.state.lock();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        st.writer
            .take()
            .expect("FileSink::finish called twice")
            .finish()
    }
}

impl EventSink for FileSink {
    fn record_event(&self, event: &TraceEvent) {
        let mut st = self.state.lock();
        if st.error.is_some() {
            return;
        }
        if let Some(w) = st.writer.as_mut() {
            if let Err(e) = w.write_event(event) {
                st.error = Some(e);
            }
        }
    }
}

/// Writes a whole in-memory trace to `path` in one call.
pub fn write_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> Result<WriteSummary> {
    let mut w = TraceWriter::create(path)?;
    for e in events {
        w.write_event(e)?;
    }
    Ok(w.finish()?)
}

/// Writes a whole in-memory trace to `path` as a legacy v1 stream (no
/// chunk table) — the compatibility-test twin of [`write_trace`].
pub fn write_trace_v1(path: impl AsRef<Path>, events: &[TraceEvent]) -> Result<WriteSummary> {
    let mut w = TraceWriter::new_v1(BufWriter::new(File::create(path)?))?;
    for e in events {
        w.write_event(e)?;
    }
    Ok(w.finish()?)
}

/// Encodes a whole in-memory trace into a `CLTR` byte stream — the form
/// the serving protocol's SUBMIT frame carries.
pub fn encode_trace(events: &[TraceEvent]) -> Result<Vec<u8>> {
    let mut w = TraceWriter::new(Vec::new())?;
    for e in events {
        w.write_event(e)?;
    }
    let (_, bytes) = w.finish_into()?;
    Ok(bytes)
}
