//! Canonical trace digests: the content addresses of the serving layer's
//! trace store.
//!
//! A digest identifies the *event sequence*, not the byte stream: it is
//! computed over a canonical per-event encoding (kind byte + fields as
//! little-endian words), so two `CLTR` files holding the same events —
//! different chunk sizes, rewritten by different writers — digest
//! identically and deduplicate in the store. The hash is FNV-1a/128:
//! not cryptographic (the store is not an integrity boundary — chunk
//! CRCs already catch corruption) but with 128 bits of state, accidental
//! collisions across a store of any realistic size are negligible.

use crate::error::Result;
use crate::reader::TraceReader;
use clean_core::TraceEvent;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit canonical trace digest.
///
/// Renders as (and parses from) 32 lowercase hex digits — the file stem
/// the trace store uses for its content-addressed entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceDigest(pub u128);

impl TraceDigest {
    /// The digest as its 16 big-endian bytes (the wire encoding).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Reconstructs a digest from its 16 big-endian wire bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        TraceDigest(u128::from_be_bytes(bytes))
    }
}

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Error parsing a [`TraceDigest`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestParseError(pub String);

impl fmt::Display for DigestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace digest: {}", self.0)
    }
}

impl std::error::Error for DigestParseError {}

impl FromStr for TraceDigest {
    type Err = DigestParseError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(DigestParseError(format!(
                "expected 32 hex digits, got {} in {s:?}",
                s.len()
            )));
        }
        u128::from_str_radix(s, 16)
            .map(TraceDigest)
            .map_err(|_| DigestParseError(format!("non-hex digit in {s:?}")))
    }
}

/// Incremental digest state: feed events in order, then
/// [`finish`](Digester::finish). The serving layer digests submissions
/// while validating them, without buffering the decoded trace.
#[derive(Debug, Clone)]
pub struct Digester {
    state: u128,
    events: u64,
}

impl Default for Digester {
    fn default() -> Self {
        Self::new()
    }
}

impl Digester {
    /// Fresh digest state.
    pub fn new() -> Self {
        Digester {
            state: FNV_OFFSET,
            events: 0,
        }
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.state ^= u128::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Folds one event into the digest. The canonical encoding is a kind
    /// byte followed by every field as a little-endian 64-bit word —
    /// deliberately independent of the `CLTR` chunking and delta state.
    pub fn update(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Read { tid, addr, size } => {
                self.byte(0);
                self.word(u64::from(tid.raw()));
                self.word(addr as u64);
                self.word(size as u64);
            }
            TraceEvent::Write { tid, addr, size } => {
                self.byte(1);
                self.word(u64::from(tid.raw()));
                self.word(addr as u64);
                self.word(size as u64);
            }
            TraceEvent::Acquire { tid, lock } => {
                self.byte(2);
                self.word(u64::from(tid.raw()));
                self.word(u64::from(lock));
            }
            TraceEvent::Release { tid, lock } => {
                self.byte(3);
                self.word(u64::from(tid.raw()));
                self.word(u64::from(lock));
            }
            TraceEvent::Fork { parent, child } => {
                self.byte(4);
                self.word(u64::from(parent.raw()));
                self.word(u64::from(child.raw()));
            }
            TraceEvent::Join { parent, child } => {
                self.byte(5);
                self.word(u64::from(parent.raw()));
                self.word(u64::from(child.raw()));
            }
        }
        self.events += 1;
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finalizes: the event count is folded in last, so a trace and any
    /// proper prefix of it always digest differently (even the empty
    /// prefix of an empty-state collision).
    pub fn finish(mut self) -> TraceDigest {
        let n = self.events;
        self.word(n);
        TraceDigest(self.state)
    }
}

/// Digest of an in-memory event sequence.
pub fn digest_events(events: &[TraceEvent]) -> TraceDigest {
    let mut d = Digester::new();
    for e in events {
        d.update(e);
    }
    d.finish()
}

/// Digest of a stored `CLTR` trace, streamed (the file is decoded, never
/// loaded whole).
///
/// # Errors
///
/// Propagates I/O and decode errors.
pub fn digest_file(path: impl AsRef<Path>) -> Result<TraceDigest> {
    let mut d = Digester::new();
    for ev in TraceReader::open(path)? {
        d.update(&ev?);
    }
    Ok(d.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_trace, TraceWriter};
    use clean_core::ThreadId;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fork {
                parent: t(0),
                child: t(1),
            },
            TraceEvent::Write {
                tid: t(0),
                addr: 64,
                size: 4,
            },
            TraceEvent::Acquire { tid: t(1), lock: 3 },
            TraceEvent::Read {
                tid: t(1),
                addr: 64,
                size: 4,
            },
            TraceEvent::Release { tid: t(1), lock: 3 },
            TraceEvent::Join {
                parent: t(0),
                child: t(1),
            },
        ]
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let ev = sample();
        assert_eq!(digest_events(&ev), digest_events(&ev));
        let mut swapped = ev.clone();
        swapped.swap(1, 3);
        assert_ne!(digest_events(&ev), digest_events(&swapped));
    }

    #[test]
    fn field_changes_change_the_digest() {
        let ev = sample();
        let base = digest_events(&ev);
        let mut other = ev.clone();
        other[1] = TraceEvent::Write {
            tid: t(0),
            addr: 65,
            size: 4,
        };
        assert_ne!(digest_events(&other), base);
        other[1] = TraceEvent::Read {
            tid: t(0),
            addr: 64,
            size: 4,
        };
        assert_ne!(digest_events(&other), base, "kind matters");
    }

    #[test]
    fn prefix_digests_differ() {
        let ev = sample();
        let full = digest_events(&ev);
        for cut in 0..ev.len() {
            assert_ne!(digest_events(&ev[..cut]), full, "prefix {cut}");
        }
    }

    #[test]
    fn chunking_does_not_change_the_digest() {
        let ev = sample();
        let want = digest_events(&ev);
        let dir = std::env::temp_dir();
        for (i, chunk) in [1usize, 7, 64 * 1024].into_iter().enumerate() {
            let path = dir.join(format!("clean-digest-{}-{i}.cltr", std::process::id()));
            let mut w = TraceWriter::create(&path).unwrap().chunk_bytes(chunk);
            for e in &ev {
                w.write_event(e).unwrap();
            }
            w.finish().unwrap();
            assert_eq!(digest_file(&path).unwrap(), want, "chunk_bytes {chunk}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = digest_events(&sample());
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s.parse::<TraceDigest>().unwrap(), d);
        assert_eq!(TraceDigest::from_bytes(d.to_bytes()), d);
        assert!("xyz".parse::<TraceDigest>().is_err());
        assert!("g".repeat(32).parse::<TraceDigest>().is_err());
    }

    #[test]
    fn digest_file_matches_in_memory() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("clean-digest-file-{}.cltr", std::process::id()));
        let ev = sample();
        write_trace(&path, &ev).unwrap();
        assert_eq!(digest_file(&path).unwrap(), digest_events(&ev));
        std::fs::remove_file(&path).ok();
    }
}
