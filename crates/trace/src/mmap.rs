//! Memory-mapped trace input (feature `mmap`, unix only).
//!
//! Multi-GB `CLTR` traces are read most efficiently straight out of the
//! page cache: one `mmap(2)` of the whole file gives every analysis
//! worker a zero-copy `&[u8]` view, with the kernel paging bytes in on
//! demand — no per-chunk `read(2)` syscalls, no double buffering, and
//! concurrent readers share one physical copy. [`TraceReader`] is generic
//! over [`Read`], so a mapped view plugs in as a plain byte slice.
//!
//! The syscall is issued through a local `extern "C"` binding (the
//! offline environment has no libc crate); on non-unix targets, with the
//! feature disabled, or when the kernel refuses the mapping,
//! [`map_file`] returns `None` and callers fall back to buffered reads.
//!
//! [`TraceReader`]: crate::TraceReader
//! [`Read`]: std::io::Read

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(feature = "mmap", unix))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only memory mapping of a whole trace file.
///
/// Dereferences to `&[u8]`; unmapped on drop. Constructed only by
/// [`map_file`].
pub struct MappedTrace {
    #[cfg(all(feature = "mmap", unix))]
    ptr: *mut std::ffi::c_void,
    #[cfg(all(feature = "mmap", unix))]
    len: usize,
    /// On targets without mmap support the type is uninhabited: no value
    /// can exist, so every method body is trivially unreachable.
    #[cfg(not(all(feature = "mmap", unix)))]
    never: std::convert::Infallible,
}

/// SAFETY: the mapping is `PROT_READ`/`MAP_PRIVATE` — immutable shared
/// bytes, safe to read from any thread.
unsafe impl Send for MappedTrace {}
/// SAFETY: see the `Send` impl.
unsafe impl Sync for MappedTrace {}

impl MappedTrace {
    /// The mapped bytes.
    #[cfg(all(feature = "mmap", unix))]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, held until drop; MAP_PRIVATE isolates it from concurrent
        // file writes at page granularity.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// The mapped bytes.
    #[cfg(not(all(feature = "mmap", unix)))]
    pub fn bytes(&self) -> &[u8] {
        match self.never {}
    }
}

impl std::ops::Deref for MappedTrace {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for MappedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedTrace")
            .field("len", &self.bytes().len())
            .finish()
    }
}

#[cfg(all(feature = "mmap", unix))]
impl Drop for MappedTrace {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are
        // unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

/// Maps the file at `path` read-only.
///
/// Returns `Ok(None)` when mapping is unavailable (feature disabled,
/// non-unix target, empty file, or the kernel refused) — callers fall
/// back to buffered reads.
///
/// # Errors
///
/// Only filesystem errors (open/metadata) are reported; mapping refusals
/// degrade to `None`.
#[cfg(all(feature = "mmap", unix))]
pub fn map_file(path: impl AsRef<Path>) -> io::Result<Option<MappedTrace>> {
    use std::os::unix::io::AsRawFd;

    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 || len > usize::MAX as u64 {
        return Ok(None);
    }
    let len = len as usize;
    // SAFETY: requesting a fresh PROT_READ/MAP_PRIVATE mapping of an open
    // fd; the result is checked against MAP_FAILED before use. The fd may
    // close right after — POSIX keeps the mapping alive independently.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == sys::MAP_FAILED {
        return Ok(None);
    }
    Ok(Some(MappedTrace { ptr, len }))
}

/// Maps the file at `path` read-only (unsupported on this target: always
/// `Ok(None)`, callers use buffered reads).
///
/// # Errors
///
/// Only filesystem errors; this stub reports none.
#[cfg(not(all(feature = "mmap", unix)))]
pub fn map_file(path: impl AsRef<Path>) -> io::Result<Option<MappedTrace>> {
    let _ = path;
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_trace, write_trace, TraceReader};
    use clean_core::{ThreadId, TraceEvent};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("clean-trace-mmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mapped_bytes_decode_identically() {
        let path = tmp("roundtrip.cltr");
        let events: Vec<TraceEvent> = (0..500)
            .map(|i| TraceEvent::Write {
                tid: ThreadId::new((i % 3) as u16),
                addr: 64 * (i % 7),
                size: 4,
            })
            .collect();
        write_trace(&path, &events).unwrap();
        if let Some(mapped) = map_file(&path).unwrap() {
            let via_mmap: Vec<TraceEvent> = TraceReader::new(mapped.bytes())
                .unwrap()
                .collect::<crate::Result<_>>()
                .unwrap();
            assert_eq!(via_mmap, events);
        }
        // The buffered path must agree regardless of mapping support.
        assert_eq!(read_trace(&path).unwrap(), events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(map_file(tmp("does-not-exist")).is_err());
    }

    #[cfg(all(feature = "mmap", unix))]
    #[test]
    fn empty_file_degrades_to_none() {
        let path = tmp("empty.cltr");
        std::fs::write(&path, b"").unwrap();
        assert!(map_file(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
