//! Summary statistics of a stored trace (the `clean-analyze stats`
//! subcommand).

use crate::analyze::sync_free_segments;
use clean_core::TraceEvent;
use std::collections::BTreeMap;

/// Aggregate statistics of an event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total events.
    pub events: u64,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
    /// Lock acquires.
    pub acquires: u64,
    /// Lock releases.
    pub releases: u64,
    /// Thread forks.
    pub forks: u64,
    /// Thread joins.
    pub joins: u64,
    /// Bytes read by all read events.
    pub bytes_read: u64,
    /// Bytes written by all write events.
    pub bytes_written: u64,
    /// Events per thread id.
    pub per_thread: BTreeMap<u16, u64>,
    /// Distinct lock ids.
    pub locks: u64,
    /// Memory-access count per access width.
    pub size_histogram: BTreeMap<usize, u64>,
    /// Synchronization-free segments in the stream.
    pub segments: u64,
    /// Length (in memory events) of the longest SFR segment.
    pub longest_segment: u64,
}

impl TraceStats {
    /// Computes statistics over an in-memory event stream.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = TraceStats::default();
        let mut locks = std::collections::BTreeSet::new();
        for e in events {
            s.events += 1;
            *s.per_thread.entry(e.tid().raw()).or_insert(0) += 1;
            match *e {
                TraceEvent::Read { size, .. } => {
                    s.reads += 1;
                    s.bytes_read += size as u64;
                    *s.size_histogram.entry(size).or_insert(0) += 1;
                }
                TraceEvent::Write { size, .. } => {
                    s.writes += 1;
                    s.bytes_written += size as u64;
                    *s.size_histogram.entry(size).or_insert(0) += 1;
                }
                TraceEvent::Acquire { lock, .. } => {
                    s.acquires += 1;
                    locks.insert(lock);
                }
                TraceEvent::Release { lock, .. } => {
                    s.releases += 1;
                    locks.insert(lock);
                }
                TraceEvent::Fork { child, .. } => {
                    s.forks += 1;
                    s.per_thread.entry(child.raw()).or_insert(0);
                }
                TraceEvent::Join { .. } => s.joins += 1,
            }
        }
        s.locks = locks.len() as u64;
        let segments = sync_free_segments(events);
        s.segments = segments.len() as u64;
        s.longest_segment = segments.iter().map(|r| r.len() as u64).max().unwrap_or(0);
        s
    }

    /// Memory events (reads + writes).
    pub fn memory_events(&self) -> u64 {
        self.reads + self.writes
    }

    /// Sync events (everything that is not a memory access).
    pub fn sync_events(&self) -> u64 {
        self.acquires + self.releases + self.forks + self.joins
    }

    /// Renders a human-readable report.
    pub fn render(&self, stream_bytes: Option<u64>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "events            {:>12}", self.events);
        let _ = writeln!(out, "  reads           {:>12}", self.reads);
        let _ = writeln!(out, "  writes          {:>12}", self.writes);
        let _ = writeln!(out, "  acquires        {:>12}", self.acquires);
        let _ = writeln!(out, "  releases        {:>12}", self.releases);
        let _ = writeln!(out, "  forks           {:>12}", self.forks);
        let _ = writeln!(out, "  joins           {:>12}", self.joins);
        let _ = writeln!(out, "bytes read        {:>12}", self.bytes_read);
        let _ = writeln!(out, "bytes written     {:>12}", self.bytes_written);
        let _ = writeln!(out, "threads           {:>12}", self.per_thread.len());
        let _ = writeln!(out, "locks             {:>12}", self.locks);
        let _ = writeln!(out, "SFR segments      {:>12}", self.segments);
        let _ = writeln!(out, "longest segment   {:>12}", self.longest_segment);
        if let Some(bytes) = stream_bytes {
            let _ = writeln!(out, "stream bytes      {:>12}", bytes);
            if self.events > 0 {
                let _ = writeln!(
                    out,
                    "bytes/event       {:>12.2}",
                    bytes as f64 / self.events as f64
                );
            }
        }
        let _ = writeln!(out, "access widths:");
        for (size, count) in &self.size_histogram {
            let _ = writeln!(out, "  {size:>3} B           {count:>12}");
        }
        let _ = writeln!(out, "events by thread:");
        for (tid, count) in &self.per_thread {
            let _ = writeln!(out, "  t{tid:<3}            {count:>12}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_core::ThreadId;

    #[test]
    fn counts_by_kind_and_thread() {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let events = vec![
            TraceEvent::Fork {
                parent: t0,
                child: t1,
            },
            TraceEvent::Write {
                tid: t0,
                addr: 0,
                size: 4,
            },
            TraceEvent::Read {
                tid: t1,
                addr: 0,
                size: 1,
            },
            TraceEvent::Acquire { tid: t1, lock: 3 },
            TraceEvent::Release { tid: t1, lock: 3 },
            TraceEvent::Join {
                parent: t0,
                child: t1,
            },
        ];
        let s = TraceStats::from_events(&events);
        assert_eq!(s.events, 6);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.memory_events(), 2);
        assert_eq!(s.sync_events(), 4);
        assert_eq!(s.locks, 1);
        assert_eq!(s.bytes_written, 4);
        assert_eq!(s.per_thread.len(), 2);
        // The write and read are adjacent: one sync-free segment.
        assert_eq!(s.segments, 1);
        assert_eq!(s.longest_segment, 2);
        assert_eq!(s.size_histogram[&4], 1);
        assert!(s.render(Some(100)).contains("bytes/event"));
    }
}
