//! Streaming trace deserialization: [`TraceReader`] iterates events out
//! of a `CLTR` stream chunk by chunk, validating framing and checksums.

use crate::codec::{crc32, Decoder, FORMAT_VERSION, MAGIC};
use crate::error::{Result, TraceError};
use clean_core::TraceEvent;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Streaming reader of the `CLTR` binary trace format.
///
/// Implements `Iterator<Item = Result<TraceEvent>>`: events decode
/// lazily from an internal chunk buffer; each chunk's CRC-32 is verified
/// before any of its events are surfaced, so a corrupt chunk yields an
/// error instead of garbage events. Reading continues past a fully
/// consumed chunk into the next one; a clean end of stream at a chunk
/// boundary ends iteration.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    dec: Decoder,
    /// Decoded payload of the current chunk.
    payload: Vec<u8>,
    /// Read cursor within `payload`.
    pos: usize,
    /// Events remaining to decode in the current chunk.
    chunk_events_left: u32,
    /// Index of the current chunk (for error reporting).
    chunk_index: u64,
    /// Set after an error or clean EOF: iteration is over.
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens the trace file at `path` and validates its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the stream header.
    pub fn new(mut input: R) -> Result<Self> {
        let mut header = [0u8; 5];
        input
            .read_exact(&mut header)
            .map_err(|_| TraceError::BadMagic([0; 4]))?;
        let magic: [u8; 4] = header[..4].try_into().expect("slice of length 4");
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        if header[4] != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(header[4]));
        }
        Ok(TraceReader {
            input,
            dec: Decoder::new(),
            payload: Vec::new(),
            pos: 0,
            chunk_events_left: 0,
            chunk_index: 0,
            done: false,
        })
    }

    /// Loads and validates the next chunk. `Ok(false)` means the
    /// end-of-stream marker (an all-zero frame) was reached. A plain EOF
    /// — even at a chunk boundary — is a truncated stream: every intact
    /// trace ends with the marker.
    fn load_chunk(&mut self) -> Result<bool> {
        let mut frame = [0u8; 12];
        let mut filled = 0;
        while filled < frame.len() {
            match self.input.read(&mut frame[filled..]) {
                Ok(0) => {
                    return Err(TraceError::Truncated {
                        chunk: self.chunk_index,
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        if frame == [0u8; 12] {
            return Ok(false);
        }
        let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
        let events = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes"));
        if events == 0 || payload_len == 0 {
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: "zero-length chunk frame",
            });
        }
        // A corrupt length field must not drive a giant allocation.
        if payload_len > 256 << 20 {
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: "chunk payload implausibly large",
            });
        }
        self.payload.resize(payload_len, 0);
        self.input
            .read_exact(&mut self.payload)
            .map_err(|_| TraceError::Truncated {
                chunk: self.chunk_index,
            })?;
        let computed = crc32(&self.payload);
        if computed != stored_crc {
            return Err(TraceError::ChecksumMismatch {
                chunk: self.chunk_index,
                stored: stored_crc,
                computed,
            });
        }
        self.pos = 0;
        self.chunk_events_left = events;
        self.dec.reset();
        Ok(true)
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>> {
        loop {
            if self.chunk_events_left > 0 {
                let mut input = &self.payload[self.pos..];
                let before = input.len();
                let event = self
                    .dec
                    .decode(&mut input)
                    .map_err(|reason| TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason,
                    })?;
                self.pos += before - input.len();
                self.chunk_events_left -= 1;
                if self.chunk_events_left == 0 && self.pos != self.payload.len() {
                    return Err(TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason: "payload longer than its event count",
                    });
                }
                return Ok(Some(event));
            }
            if !self.load_chunk()? {
                return Ok(None);
            }
            self.chunk_index += 1;
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads a whole trace file into memory.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>> {
    TraceReader::open(path)?.collect()
}
