//! Streaming trace deserialization: [`TraceReader`] iterates events out
//! of a `CLTR` stream chunk by chunk, validating framing and checksums.
//!
//! Both format versions decode here: v1 ends at the all-zero
//! end-of-stream marker, while v2 additionally carries a chunk-table
//! footer after the marker which the reader validates *strictly* —
//! CRC, trailer magic, and entry-for-entry agreement with the chunks
//! actually decoded. A v2 stream whose table is truncated or corrupted
//! in any byte therefore fails to read, preserving the invariant that
//! every single-bit flip and every truncation of a trace is detected.

use crate::codec::{crc32, Decoder, FORMAT_V1, FORMAT_VERSION, MAGIC};
use crate::error::{Result, TraceError};
use crate::table::{parse_footer, read_table, ChunkEntry};
use clean_core::TraceEvent;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::Path;

/// Streaming reader of the `CLTR` binary trace format.
///
/// Implements `Iterator<Item = Result<TraceEvent>>`: events decode
/// lazily from an internal chunk buffer; each chunk's CRC-32 is verified
/// before any of its events are surfaced, so a corrupt chunk yields an
/// error instead of garbage events. Reading continues past a fully
/// consumed chunk into the next one; a clean end of stream at a chunk
/// boundary ends iteration (after footer validation, for v2 streams).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    dec: Decoder,
    /// Decoded payload of the current chunk.
    payload: Vec<u8>,
    /// Read cursor within `payload`.
    pos: usize,
    /// Events remaining to decode in the current chunk.
    chunk_events_left: u32,
    /// Index of the current chunk (for error reporting).
    chunk_index: u64,
    /// Set after an error or clean EOF: iteration is over.
    done: bool,
    /// Stream format version (1 or 2).
    version: u8,
    /// Stream offset consumed so far (header + frames + payloads).
    offset: u64,
    /// Chunk entries observed while decoding, checked against the v2
    /// footer at end of stream.
    observed: Vec<ChunkEntry>,
    /// Events in fully loaded chunks so far.
    events_seen: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens the trace file at `path` and validates its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the stream header.
    pub fn new(mut input: R) -> Result<Self> {
        let mut header = [0u8; 5];
        input
            .read_exact(&mut header)
            .map_err(|_| TraceError::BadMagic([0; 4]))?;
        let magic: [u8; 4] = header[..4].try_into().expect("slice of length 4");
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        if header[4] != FORMAT_V1 && header[4] != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(header[4]));
        }
        Ok(TraceReader {
            input,
            dec: Decoder::new(),
            payload: Vec::new(),
            pos: 0,
            chunk_events_left: 0,
            chunk_index: 0,
            done: false,
            version: header[4],
            offset: header.len() as u64,
            observed: Vec::new(),
            events_seen: 0,
        })
    }

    /// The stream's format version byte (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Loads and validates the next chunk. `Ok(false)` means the
    /// end-of-stream marker (an all-zero frame) was reached — and, for
    /// v2 streams, that the chunk-table footer validated. A plain EOF —
    /// even at a chunk boundary — is a truncated stream: every intact
    /// trace ends with the marker.
    fn load_chunk(&mut self) -> Result<bool> {
        let mut frame = [0u8; 12];
        let mut filled = 0;
        while filled < frame.len() {
            match self.input.read(&mut frame[filled..]) {
                Ok(0) => {
                    return Err(TraceError::Truncated {
                        chunk: self.chunk_index,
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        if frame == [0u8; 12] {
            self.offset += frame.len() as u64;
            if self.version == FORMAT_VERSION {
                self.verify_footer()?;
            }
            return Ok(false);
        }
        let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
        let events = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes"));
        if events == 0 || payload_len == 0 {
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: "zero-length chunk frame",
            });
        }
        // A corrupt length field must not drive a giant allocation.
        if payload_len > 256 << 20 {
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: "chunk payload implausibly large",
            });
        }
        self.payload.resize(payload_len, 0);
        self.input
            .read_exact(&mut self.payload)
            .map_err(|_| TraceError::Truncated {
                chunk: self.chunk_index,
            })?;
        let computed = crc32(&self.payload);
        if computed != stored_crc {
            return Err(TraceError::ChecksumMismatch {
                chunk: self.chunk_index,
                stored: stored_crc,
                computed,
            });
        }
        if self.version == FORMAT_VERSION {
            self.observed.push(ChunkEntry {
                offset: self.offset,
                payload_len: payload_len as u32,
                events,
                first_event: self.events_seen,
            });
        }
        self.offset += (frame.len() + payload_len) as u64;
        self.events_seen += u64::from(events);
        self.pos = 0;
        self.chunk_events_left = events;
        self.dec.reset();
        Ok(true)
    }

    /// Reads and strictly validates the v2 footer after the end-of-stream
    /// marker: trailer magic, CRC, and exact agreement between the table
    /// entries and the chunks this reader actually decoded.
    fn verify_footer(&mut self) -> Result<()> {
        // parse_footer expects the EOS marker to precede the entries;
        // the marker was already consumed, so re-prefix zeros.
        let mut tail = vec![0u8; 12];
        self.input.read_to_end(&mut tail)?;
        let stream_len = self.offset + (tail.len() - 12) as u64;
        let table = parse_footer(&tail, stream_len)?;
        if table.entries != self.observed {
            return Err(TraceError::BadTable {
                reason: "table entries disagree with the decoded chunks",
            });
        }
        if table.total_events != self.events_seen {
            return Err(TraceError::BadTable {
                reason: "table event total disagrees with the decoded stream",
            });
        }
        Ok(())
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>> {
        loop {
            if self.chunk_events_left > 0 {
                let mut input = &self.payload[self.pos..];
                let before = input.len();
                let event = self
                    .dec
                    .decode(&mut input)
                    .map_err(|reason| TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason,
                    })?;
                self.pos += before - input.len();
                self.chunk_events_left -= 1;
                if self.chunk_events_left == 0 && self.pos != self.payload.len() {
                    return Err(TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason: "payload longer than its event count",
                    });
                }
                return Ok(Some(event));
            }
            if !self.load_chunk()? {
                return Ok(None);
            }
            self.chunk_index += 1;
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads a whole trace file into memory.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>> {
    TraceReader::open(path)?.collect()
}

/// Reads the events with trace indices in `range` (clamped to the trace
/// length) — random access built on the v2 chunk table.
///
/// On v2 traces only the chunks covering the range are read and decoded:
/// the table locates the first covering chunk by binary search, the file
/// is seeked straight to its offset, and decode stops at the end of the
/// range. v1 traces (no table) fall back to a sequential skip/take scan.
///
/// # Errors
///
/// Propagates I/O and decode errors, including a corrupt chunk table.
pub fn read_range(path: impl AsRef<Path>, range: Range<u64>) -> Result<Vec<TraceEvent>> {
    let path = path.as_ref();
    let Some(table) = read_table(path)? else {
        // v1 fallback: decode from the start, keep the window.
        let mut out = Vec::new();
        for (i, ev) in TraceReader::open(path)?.enumerate() {
            let ev = ev?;
            let i = i as u64;
            if i >= range.end {
                break;
            }
            if i >= range.start {
                out.push(ev);
            }
        }
        return Ok(out);
    };
    let start = range.start.min(table.total_events);
    let end = range.end.min(table.total_events);
    if start >= end {
        return Ok(Vec::new());
    }
    let first_chunk = table.locate(start).expect("start is within the trace");
    let mut out = Vec::with_capacity((end - start) as usize);
    let mut file = BufReader::new(File::open(path)?);
    file.seek(SeekFrom::Start(table.entries[first_chunk].offset))?;
    let mut dec = Decoder::new();
    let mut payload = Vec::new();
    for (ci, e) in table.entries.iter().enumerate().skip(first_chunk) {
        if e.first_event >= end {
            break;
        }
        let chunk = ci as u64;
        let mut frame = [0u8; 12];
        file.read_exact(&mut frame)
            .map_err(|_| TraceError::Truncated { chunk })?;
        let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        let frame_events = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes"));
        if payload_len != e.payload_len || frame_events != e.events {
            return Err(TraceError::Corrupt {
                chunk,
                reason: "chunk frame disagrees with the chunk table",
            });
        }
        payload.resize(payload_len as usize, 0);
        file.read_exact(&mut payload)
            .map_err(|_| TraceError::Truncated { chunk })?;
        let computed = crc32(&payload);
        if computed != stored_crc {
            return Err(TraceError::ChecksumMismatch {
                chunk,
                stored: stored_crc,
                computed,
            });
        }
        dec.reset();
        let mut input = &payload[..];
        for j in 0..u64::from(e.events) {
            let ev = dec
                .decode(&mut input)
                .map_err(|reason| TraceError::Corrupt { chunk, reason })?;
            let idx = e.first_event + j;
            if idx >= end {
                break;
            }
            if idx >= start {
                out.push(ev);
            }
        }
    }
    Ok(out)
}
