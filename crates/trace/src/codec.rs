//! The compact binary event codec (format `CLTR`, versions 1 and 2 —
//! the event encoding is identical; version 2 adds a chunk table).
//!
//! Events serialize as a one-byte tag followed by LEB128 varints; memory
//! addresses are delta-encoded against the *same thread's* previous
//! access (threads walk memory locally, so per-thread deltas are small
//! even in interleaved streams) and zigzag-mapped so negative strides
//! stay short. See `DESIGN.md` ("Binary trace format") for the full
//! layout specification. Encoder and decoder state reset at chunk
//! boundaries, so every chunk decodes independently.

use clean_core::{ThreadId, TraceEvent};

/// File magic: the first four bytes of every trace stream.
pub const MAGIC: [u8; 4] = *b"CLTR";

/// Current format version, stored in the fifth byte of the stream.
/// Version 2 keeps the event encoding of version 1 byte-for-byte and
/// appends a chunk-offset table after the end-of-stream marker (see
/// [`table`](crate::table)).
pub const FORMAT_VERSION: u8 = 2;

/// The legacy tableless format version, still fully readable; writable
/// via [`TraceWriter::new_v1`](crate::TraceWriter::new_v1).
pub const FORMAT_V1: u8 = 1;

/// Tag-byte kind values (bits 0..=2).
const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;
const KIND_ACQUIRE: u8 = 2;
const KIND_RELEASE: u8 = 3;
const KIND_FORK: u8 = 4;
const KIND_JOIN: u8 = 5;

/// Tag bit 5: the access width follows as an explicit varint (set when
/// the width is not one of the four common classes).
const FLAG_EXPLICIT_SIZE: u8 = 1 << 5;

/// Common access widths, indexed by tag bits 3..=4.
const SIZE_CLASSES: [usize; 4] = [1, 2, 4, 8];

/// Appends `v` as an unsigned LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `input`.
pub fn read_uvarint(input: &mut &[u8]) -> Result<u64, &'static str> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input
            .split_first()
            .ok_or("varint runs past end of payload")?;
        *input = rest;
        if shift == 63 && byte > 1 {
            return Err("varint overflows 64 bits");
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err("varint overflows 64 bits");
        }
    }
}

/// Zigzag-maps a signed value so small magnitudes encode short.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Per-thread last-address table for delta encoding. Shared by the
/// encoder and decoder: both must evolve it identically.
#[derive(Debug, Default, Clone)]
struct DeltaState {
    last_addr: Vec<u64>,
}

impl DeltaState {
    /// Returns the previous address for `tid` and records `addr`.
    fn exchange(&mut self, tid: u16, addr: u64) -> u64 {
        let idx = usize::from(tid);
        if idx >= self.last_addr.len() {
            self.last_addr.resize(idx + 1, 0);
        }
        std::mem::replace(&mut self.last_addr[idx], addr)
    }

    fn reset(&mut self) {
        self.last_addr.clear();
    }
}

/// Streaming event encoder (one chunk's worth of state).
#[derive(Debug, Default)]
pub struct Encoder {
    delta: DeltaState,
}

impl Encoder {
    /// Creates an encoder with fresh delta state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all inter-event state (start of a new chunk).
    pub fn reset(&mut self) {
        self.delta.reset();
    }

    /// Appends the encoding of `event` to `out`.
    pub fn encode(&mut self, event: &TraceEvent, out: &mut Vec<u8>) {
        match *event {
            TraceEvent::Read { tid, addr, size } => {
                self.encode_memory(KIND_READ, tid, addr, size, out)
            }
            TraceEvent::Write { tid, addr, size } => {
                self.encode_memory(KIND_WRITE, tid, addr, size, out)
            }
            TraceEvent::Acquire { tid, lock } => {
                out.push(KIND_ACQUIRE);
                write_uvarint(out, u64::from(tid.raw()));
                write_uvarint(out, u64::from(lock));
            }
            TraceEvent::Release { tid, lock } => {
                out.push(KIND_RELEASE);
                write_uvarint(out, u64::from(tid.raw()));
                write_uvarint(out, u64::from(lock));
            }
            TraceEvent::Fork { parent, child } => {
                out.push(KIND_FORK);
                write_uvarint(out, u64::from(parent.raw()));
                write_uvarint(out, u64::from(child.raw()));
            }
            TraceEvent::Join { parent, child } => {
                out.push(KIND_JOIN);
                write_uvarint(out, u64::from(parent.raw()));
                write_uvarint(out, u64::from(child.raw()));
            }
        }
    }

    fn encode_memory(
        &mut self,
        kind: u8,
        tid: ThreadId,
        addr: usize,
        size: usize,
        out: &mut Vec<u8>,
    ) {
        let mut tag = kind;
        let explicit = match SIZE_CLASSES.iter().position(|&s| s == size) {
            Some(class) => {
                tag |= (class as u8) << 3;
                false
            }
            None => {
                tag |= FLAG_EXPLICIT_SIZE;
                true
            }
        };
        out.push(tag);
        write_uvarint(out, u64::from(tid.raw()));
        let prev = self.delta.exchange(tid.raw(), addr as u64);
        let delta = (addr as u64 as i64).wrapping_sub(prev as i64);
        write_uvarint(out, zigzag(delta));
        if explicit {
            write_uvarint(out, size as u64);
        }
    }
}

/// Streaming event decoder (one chunk's worth of state).
#[derive(Debug, Default)]
pub struct Decoder {
    delta: DeltaState,
}

impl Decoder {
    /// Creates a decoder with fresh delta state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all inter-event state (start of a new chunk).
    pub fn reset(&mut self) {
        self.delta.reset();
    }

    /// Decodes one event, advancing `input`.
    pub fn decode(&mut self, input: &mut &[u8]) -> Result<TraceEvent, &'static str> {
        let (&tag, rest) = input.split_first().ok_or("payload ends before event tag")?;
        *input = rest;
        let kind = tag & 0x07;
        if tag & 0xc0 != 0 {
            return Err("reserved tag bits set");
        }
        let tid = read_tid(input)?;
        match kind {
            KIND_READ | KIND_WRITE => {
                let delta = unzigzag(read_uvarint(input)?);
                let prev = self.delta.exchange(tid.raw(), 0);
                let addr = (prev as i64).wrapping_add(delta) as u64;
                self.delta.exchange(tid.raw(), addr);
                let size = if tag & FLAG_EXPLICIT_SIZE != 0 {
                    let s = read_uvarint(input)?;
                    usize::try_from(s).map_err(|_| "access size overflows usize")?
                } else {
                    SIZE_CLASSES[usize::from((tag >> 3) & 0x03)]
                };
                let addr = usize::try_from(addr).map_err(|_| "address overflows usize")?;
                Ok(if kind == KIND_READ {
                    TraceEvent::Read { tid, addr, size }
                } else {
                    TraceEvent::Write { tid, addr, size }
                })
            }
            KIND_ACQUIRE | KIND_RELEASE => {
                if tag & !0x07 != 0 {
                    return Err("size bits set on sync event");
                }
                let lock = read_uvarint(input)?;
                let lock = u32::try_from(lock).map_err(|_| "lock id overflows 32 bits")?;
                Ok(if kind == KIND_ACQUIRE {
                    TraceEvent::Acquire { tid, lock }
                } else {
                    TraceEvent::Release { tid, lock }
                })
            }
            KIND_FORK | KIND_JOIN => {
                if tag & !0x07 != 0 {
                    return Err("size bits set on thread event");
                }
                let child = read_tid(input)?;
                Ok(if kind == KIND_FORK {
                    TraceEvent::Fork { parent: tid, child }
                } else {
                    TraceEvent::Join { parent: tid, child }
                })
            }
            _ => Err("unknown event kind"),
        }
    }
}

fn read_tid(input: &mut &[u8]) -> Result<ThreadId, &'static str> {
    let raw = read_uvarint(input)?;
    let raw = u16::try_from(raw).map_err(|_| "thread id overflows 16 bits")?;
    Ok(ThreadId::new(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn roundtrip(events: &[TraceEvent]) -> Vec<TraceEvent> {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for e in events {
            enc.encode(e, &mut buf);
        }
        let mut dec = Decoder::new();
        let mut input = &buf[..];
        let mut out = Vec::new();
        while !input.is_empty() {
            out.push(dec.decode(&mut input).unwrap());
        }
        out
    }

    #[test]
    fn varint_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut input = &buf[..];
            assert_eq!(read_uvarint(&mut input).unwrap(), v);
            assert!(input.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes: more than 64 bits of payload.
        let buf = [0xff; 11];
        let mut input = &buf[..];
        assert!(read_uvarint(&mut input).is_err());
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        let events = vec![
            TraceEvent::Read {
                tid: t(0),
                addr: 0x1000,
                size: 4,
            },
            TraceEvent::Write {
                tid: t(1),
                addr: 0xdead_beef,
                size: 8,
            },
            TraceEvent::Read {
                tid: t(0),
                addr: 0x0ffc,
                size: 1,
            }, // negative delta
            TraceEvent::Write {
                tid: t(2),
                addr: 7,
                size: 3,
            }, // explicit size
            TraceEvent::Acquire { tid: t(3), lock: 0 },
            TraceEvent::Release {
                tid: t(3),
                lock: u32::MAX,
            },
            TraceEvent::Fork {
                parent: t(0),
                child: t(9),
            },
            TraceEvent::Join {
                parent: t(0),
                child: t(9),
            },
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn deltas_are_per_thread() {
        // Interleaved threads with local strides must not perturb each
        // other's deltas: every encoded memory event stays small.
        let mut events = Vec::new();
        for i in 0..64usize {
            events.push(TraceEvent::Write {
                tid: t(0),
                addr: 0x10_0000 + i * 4,
                size: 4,
            });
            events.push(TraceEvent::Write {
                tid: t(1),
                addr: 0x90_0000 + i * 8,
                size: 8,
            });
        }
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for e in &events {
            enc.encode(e, &mut buf);
        }
        assert_eq!(roundtrip(&events), events);
        // First event per thread pays for the absolute address; the rest
        // are tag + tid + 1-byte delta = 3 bytes.
        assert!(
            buf.len() <= 6 + 6 + 126 * 3,
            "encoding too large: {}",
            buf.len()
        );
    }

    #[test]
    fn truncated_event_rejected() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.encode(
            &TraceEvent::Write {
                tid: t(5),
                addr: 0x123456,
                size: 4,
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let mut dec = Decoder::new();
            let mut input = &buf[..cut];
            assert!(dec.decode(&mut input).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_tags_rejected() {
        for tag in [
            0x06u8,
            0x07,
            0x40,
            0x80,
            KIND_ACQUIRE | 1 << 3,
            KIND_FORK | FLAG_EXPLICIT_SIZE,
        ] {
            let buf = [tag, 0, 0, 0];
            let mut dec = Decoder::new();
            let mut input = &buf[..];
            assert!(dec.decode(&mut input).is_err(), "tag {tag:#04x} accepted");
        }
    }

    #[test]
    fn crc32_known_answer() {
        // IEEE CRC-32 of "123456789" is the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
