//! `clean-analyze` — record, inspect and replay persistent CLEAN traces.
//!
//! ```text
//! clean-analyze record --workload <name> [--racy] [--sim] [--threads N] [--seed N] --out <file>
//! clean-analyze stats  [--quick] <file>
//! clean-analyze digest <file>
//! clean-analyze replay [--engine all|clean|fasttrack|vcfull|tsan] [--shards N]
//!                      [--stream] [--workers N] [--decode-workers N]
//!                      [--range A..B] <file>
//! clean-analyze diff   [--shards N] <file>
//! clean-analyze plan   [--granule N] [--out <file>] [--against <plan>] <file>
//! ```
//!
//! Exit codes let scripts branch without parsing stdout: 0 = success (no
//! race for `replay`), 10 = race(s) found, 12 = the trace failed to
//! decode (bad magic, truncation, checksum mismatch), 1 = any other
//! error.

use clean_baselines::{FoundRace, FullRaceKind};
use clean_trace::{
    digest_file, read_range, read_table, read_trace, record_kernel_trace, record_sim_trace,
    replay_file_stealing_with, replay_sharded, scan_trace, EngineKind, RecordOptions, TraceError,
    TraceStats,
};
use clean_workloads::{derive_plan_from_trace, TraceGenConfig};
use std::collections::HashSet;
use std::process::ExitCode;
use std::time::Instant;

/// `replay` found at least one race.
const EXIT_RACE: u8 = 10;
/// The trace file failed to decode (corrupt, truncated, wrong format).
const EXIT_DECODE: u8 = 12;

/// CLI failure, classified so `main` can pick the process exit code.
enum CliError {
    /// The trace could not be decoded.
    Decode(String),
    /// Anything else (usage, I/O, workload errors).
    Other(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Other(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Other(msg.to_string())
    }
}

/// Maps a trace error to the right exit class: I/O problems are generic,
/// everything else means the bytes were not a valid `CLTR` stream.
fn trace_err(e: TraceError) -> CliError {
    match e {
        TraceError::Io(_) => CliError::Other(e.to_string()),
        _ => CliError::Decode(e.to_string()),
    }
}

const USAGE: &str = "\
clean-analyze — persistent trace store & offline race analysis for CLEAN

USAGE:
  clean-analyze record --workload <name> [--racy] [--sim] [--threads N] [--seed N] --out <file>
      Run a workload kernel (or generate its simulator trace with --sim)
      and stream the event trace to <file>.
  clean-analyze stats [--quick] <file>
      Event, thread, lock, access-width and SFR-segment statistics.
      With --quick on a v2 trace only the chunk table is read: event,
      chunk and thread counts without decoding a single event.
  clean-analyze digest <file>
      Print the canonical 128-bit trace digest (the content address the
      serving layer's trace store uses; independent of chunking).
  clean-analyze replay [--engine all|clean|fasttrack|vcfull|tsan] [--shards N]
                       [--stream] [--workers N] [--decode-workers N]
                       [--range A..B] <file>
      Replay the trace through one engine (or all) over N address shards
      (default: available parallelism). With --stream the trace is not
      loaded into memory: on v2 traces --decode-workers threads (default:
      --workers) decode disjoint chunk ranges in parallel via the chunk
      table (mmap-backed when the kernel allows), feeding pre-sharded
      batches to a work-stealing pool of --workers replay threads; v1
      traces stream through a sequential decode pass. With --range A..B
      only events with trace indices in [A, B) are replayed (as a
      standalone prefix: sync state before A is not reconstructed); on
      v2 traces the table seeks straight to the covering chunks.
  clean-analyze diff [--shards N] <file>
      Cross-engine verdict comparison (e.g. the WAR races CLEAN skips).
  clean-analyze plan [--granule N] [--out <file>] [--against <plan>] <file>
      Derive a static check plan (CPLN v1) from the trace's observed
      access pattern: thread-private ranges become elide entries (with
      their soundness witness), strided shared writers coalesce, and the
      remaining shared spans batch. Prints the coverage split; with
      --out the plan is saved for loading via the runtime's check_plan
      knob. --granule sets the derivation granule in bytes (default 64).
      Saved plans carry a derivation-footprint stamp (granule, granule,
      event and thread counts); --against <plan> audits an existing plan
      file's stamp against this trace's footprint and warns loudly (and
      bumps the plan_stale metric) when they diverge beyond 50%.

EXIT CODES:
  0   success; for replay: no race found
  10  replay found at least one race
  12  the trace file failed to decode
  1   any other error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("digest") => cmd_digest(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Other(format!(
            "unknown subcommand {other:?}\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Decode(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(EXIT_DECODE)
        }
        Err(CliError::Other(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what}: {v:?}"))
}

fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn cmd_record(rest: &[String]) -> Result<ExitCode, CliError> {
    let mut args = rest.to_vec();
    let workload = take_value(&mut args, "--workload")?.ok_or("record needs --workload <name>")?;
    let out = take_value(&mut args, "--out")?.ok_or("record needs --out <file>")?;
    let racy = take_flag(&mut args, "--racy");
    let sim = take_flag(&mut args, "--sim");
    let threads = match take_value(&mut args, "--threads")? {
        Some(v) => parse_num(&v, "--threads")?,
        None => 4,
    };
    let seed = match take_value(&mut args, "--seed")? {
        Some(v) => parse_num(&v, "--seed")?,
        None => 1u64,
    };
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}").into());
    }
    let start = Instant::now();
    let summary = if sim {
        if racy {
            return Err("--sim traces are race-free by construction; drop --racy".into());
        }
        let cfg = TraceGenConfig {
            threads,
            seed,
            ..TraceGenConfig::default()
        };
        record_sim_trace(&workload, &out, &cfg).map_err(|e| e.to_string())?
    } else {
        let opts = RecordOptions {
            threads,
            racy,
            seed,
        };
        record_kernel_trace(&workload, &out, &opts).map_err(|e| e.to_string())?
    };
    println!(
        "recorded {} events to {} ({} bytes, {:.2} B/event, {} chunks) in {:.2?}",
        summary.events,
        out,
        summary.bytes,
        summary.bytes_per_event(),
        summary.chunks,
        start.elapsed(),
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(rest: &[String]) -> Result<ExitCode, CliError> {
    let mut args = rest.to_vec();
    let quick = take_flag(&mut args, "--quick");
    let [path] = &args[..] else {
        return Err("stats takes exactly one trace file".into());
    };
    let table = read_table(path).map_err(trace_err)?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).ok();
    match &table {
        Some(t) => println!(
            "format v2: {} chunks, {} events, {} thread slots (from the chunk table)",
            t.entries.len(),
            t.total_events,
            t.threads
        ),
        None => println!("format v1: no chunk table"),
    }
    if quick {
        if let Some(t) = &table {
            if let Some(b) = bytes {
                let bpe = if t.total_events == 0 {
                    0.0
                } else {
                    b as f64 / t.total_events as f64
                };
                println!("{b} bytes, {bpe:.2} B/event");
            }
            return Ok(ExitCode::SUCCESS);
        }
        println!("note: --quick needs a v2 chunk table; falling back to a full decode");
    }
    let events = read_trace(path).map_err(trace_err)?;
    print!("{}", TraceStats::from_events(&events).render(bytes));
    Ok(ExitCode::SUCCESS)
}

fn cmd_digest(rest: &[String]) -> Result<ExitCode, CliError> {
    let [path] = rest else {
        return Err("digest takes exactly one trace file".into());
    };
    println!("{}", digest_file(path).map_err(trace_err)?);
    Ok(ExitCode::SUCCESS)
}

fn engines_from_arg(arg: Option<String>) -> Result<Vec<EngineKind>, String> {
    match arg.as_deref() {
        None | Some("all") => Ok(EngineKind::ALL.to_vec()),
        Some(name) => EngineKind::parse(name)
            .map(|k| vec![k])
            .ok_or_else(|| format!("unknown engine {name:?} (clean|fasttrack|vcfull|tsan|all)")),
    }
}

fn verdict_code(any_race: bool) -> ExitCode {
    if any_race {
        ExitCode::from(EXIT_RACE)
    } else {
        ExitCode::SUCCESS
    }
}

fn kind_counts(races: &[FoundRace]) -> (usize, usize, usize) {
    let count = |k| races.iter().filter(|r| r.kind == k).count();
    (
        count(FullRaceKind::Waw),
        count(FullRaceKind::Raw),
        count(FullRaceKind::War),
    )
}

fn shards_from_args(args: &mut Vec<String>) -> Result<usize, String> {
    let shards = match take_value(args, "--shards")? {
        Some(v) => parse_num(&v, "--shards")?,
        None => default_shards(),
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(shards)
}

/// Parses an `A..B` event-index range.
fn parse_range(v: &str) -> Result<std::ops::Range<u64>, String> {
    let (a, b) = v
        .split_once("..")
        .ok_or_else(|| format!("bad --range {v:?} (want A..B)"))?;
    let a: u64 = parse_num(a, "--range start")?;
    let b: u64 = parse_num(b, "--range end")?;
    if a >= b {
        return Err(format!("--range {v:?} is empty (start must be below end)"));
    }
    Ok(a..b)
}

fn cmd_replay(rest: &[String]) -> Result<ExitCode, CliError> {
    let mut args = rest.to_vec();
    let engines = engines_from_arg(take_value(&mut args, "--engine")?)?;
    let shards = shards_from_args(&mut args)?;
    let stream = take_flag(&mut args, "--stream");
    let workers = match take_value(&mut args, "--workers")? {
        Some(v) => parse_num(&v, "--workers")?,
        None => default_shards(),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let decode_workers = match take_value(&mut args, "--decode-workers")? {
        Some(v) => parse_num(&v, "--decode-workers")?,
        None => workers,
    };
    if decode_workers == 0 {
        return Err("--decode-workers must be at least 1".into());
    }
    let range = match take_value(&mut args, "--range")? {
        Some(v) => Some(parse_range(&v)?),
        None => None,
    };
    if stream && range.is_some() {
        return Err("--range loads the slice into memory; drop --stream".into());
    }
    let [path] = &args[..] else {
        return Err("replay takes exactly one trace file".into());
    };
    let events = if stream {
        None
    } else if let Some(range) = &range {
        let slice = read_range(path, range.clone()).map_err(trace_err)?;
        println!(
            "events {}..{}: {} in range (replayed as a standalone prefix)",
            range.start,
            range.end,
            slice.len()
        );
        Some(slice)
    } else {
        Some(read_trace(path).map_err(trace_err)?)
    };
    let scan = if stream {
        let scan = scan_trace(path).map_err(trace_err)?;
        println!(
            "{} events ({} bytes), {} shards, {} streaming workers, {} decode workers",
            scan.events, scan.bytes, shards, workers, decode_workers
        );
        Some(scan)
    } else {
        println!(
            "{} events, {} shards",
            events.as_ref().map_or(0, Vec::len),
            shards
        );
        None
    };
    let mut any_race = false;
    for kind in engines {
        let start = Instant::now();
        let (races, detail) = match (&events, &scan) {
            (Some(events), _) => (replay_sharded(events, kind, shards), String::new()),
            (None, Some(scan)) => {
                let (races, stats) = replay_file_stealing_with(
                    path,
                    kind,
                    shards,
                    workers,
                    decode_workers,
                    scan.threads,
                )
                .map_err(trace_err)?;
                let detail = format!(
                    " [{} batches, {} steals, {}, {}]",
                    stats.batches,
                    stats.steals,
                    if stats.used_mmap { "mmap" } else { "buffered" },
                    if stats.used_table {
                        format!("table decode x{}", stats.decode_workers)
                    } else {
                        "sequential decode".to_string()
                    }
                );
                (races, detail)
            }
            (None, None) => unreachable!("stream mode always scans"),
        };
        let (waw, raw, war) = kind_counts(&races);
        println!(
            "{:<10} {:>6} races (WAW {waw}, RAW {raw}, WAR {war}) in {:.2?}{detail}",
            kind.name(),
            races.len(),
            start.elapsed(),
        );
        for r in races.iter().take(10) {
            println!(
                "  {} at {:#x}: t{} after t{}",
                r.kind,
                r.addr,
                r.current.raw(),
                r.previous.raw()
            );
        }
        if races.len() > 10 {
            println!("  … {} more", races.len() - 10);
        }
        any_race |= !races.is_empty();
    }
    Ok(verdict_code(any_race))
}

fn cmd_plan(rest: &[String]) -> Result<ExitCode, CliError> {
    let mut args = rest.to_vec();
    let granule = match take_value(&mut args, "--granule")? {
        Some(v) => parse_num(&v, "--granule")?,
        None => 0usize,
    };
    let out = take_value(&mut args, "--out")?;
    let against = take_value(&mut args, "--against")?;
    let [path] = &args[..] else {
        return Err("plan takes exactly one trace file".into());
    };
    let events = read_trace(path).map_err(trace_err)?;
    let (plan, coverage) = derive_plan_from_trace(&events, granule);
    // Derived plans always carry sound witnesses; compiling re-checks
    // the invariant the loader enforces on untrusted plan files.
    plan.compile()
        .map_err(|e| CliError::Other(format!("derived plan failed validation: {e}")))?;
    println!(
        "{} events, {} plan entries",
        events.len(),
        plan.entries.len()
    );
    println!("{}", coverage.render());
    if let Some(against) = &against {
        let old = clean_core::CheckPlan::load(against)
            .map_err(|e| CliError::Other(format!("load {against}: {e}")))?;
        let current = plan
            .profile
            .expect("derived plans always carry a footprint stamp");
        match old.audit_freshness(&current) {
            Some(warning) => eprintln!("WARNING: {against}: {warning}"),
            None if old.profile.is_none() => {
                println!("{against}: no footprint stamp to audit (pre-stamp plan file)");
            }
            None => println!("{against}: stamp is fresh against this trace"),
        }
    }
    if let Some(out) = &out {
        plan.save(out).map_err(|e| e.to_string())?;
        println!("saved CPLN v1 plan to {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn race_set(races: &[FoundRace]) -> HashSet<FoundRace> {
    races.iter().copied().collect()
}

fn cmd_diff(rest: &[String]) -> Result<ExitCode, CliError> {
    let mut args = rest.to_vec();
    let shards = shards_from_args(&mut args)?;
    let [path] = &args[..] else {
        return Err("diff takes exactly one trace file".into());
    };
    let events = read_trace(path).map_err(trace_err)?;
    let verdicts: Vec<(EngineKind, Vec<FoundRace>)> = EngineKind::ALL
        .iter()
        .map(|&k| (k, replay_sharded(&events, k, shards)))
        .collect();
    for (kind, races) in &verdicts {
        let (waw, raw, war) = kind_counts(races);
        println!(
            "{:<10} {:>6} races (WAW {waw}, RAW {raw}, WAR {war})",
            kind.name(),
            races.len()
        );
    }
    // CLEAN's deliberate blind spot: WAR races the full detectors see.
    let clean: HashSet<FoundRace> = verdicts
        .iter()
        .find(|(k, _)| *k == EngineKind::Clean)
        .map(|(_, r)| race_set(r))
        .unwrap_or_default();
    let mut war_only: Vec<FoundRace> = Vec::new();
    for (kind, races) in &verdicts {
        if !kind.detects_war() {
            continue;
        }
        for r in races {
            if r.kind == FullRaceKind::War && !clean.contains(r) && !war_only.contains(r) {
                war_only.push(*r);
            }
        }
        // Sanity: on WAW/RAW the full detectors and CLEAN must agree in
        // verdict direction; report divergences rather than asserting
        // (tsan's bounded shadow cells may drop old accesses).
        let theirs = race_set(races);
        let missing: Vec<&FoundRace> = clean.iter().filter(|r| !theirs.contains(r)).collect();
        if !missing.is_empty() {
            println!(
                "note: {} CLEAN race(s) not reported by {} (bounded metadata or WAR ordering)",
                missing.len(),
                kind.name()
            );
        }
    }
    println!("WAR races invisible to CLEAN: {}", war_only.len());
    for r in war_only.iter().take(10) {
        println!(
            "  WAR at {:#x}: t{} after t{}",
            r.addr,
            r.current.raw(),
            r.previous.raw()
        );
    }
    Ok(ExitCode::SUCCESS)
}
