//! Recording helpers: run a workload (live kernel or generated
//! simulator trace) and persist its event stream to disk.

use crate::error::{Result, TraceError};
use crate::writer::{FileSink, WriteSummary};
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{
    benchmark, export_sim_trace, generate_trace, run_benchmark, KernelParams, TraceGenConfig,
};
use std::path::Path;
use std::sync::Arc;

/// Options of [`record_kernel_trace`].
#[derive(Debug, Clone, Copy)]
pub struct RecordOptions {
    /// Worker threads for the kernel run.
    pub threads: usize,
    /// Run the unmodified ("racy") benchmark version.
    pub racy: bool,
    /// Kernel RNG seed.
    pub seed: u64,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            threads: 4,
            racy: false,
            seed: 1,
        }
    }
}

/// Runs workload `name` under the CLEAN runtime with a streaming file
/// sink attached and returns the stream summary.
///
/// Detection is disabled so racy executions run to completion (the
/// offline engines want the whole interleaving, not the prefix up to
/// the first race exception); deterministic synchronization stays on so
/// recorded traces are reproducible.
pub fn record_kernel_trace(
    name: &str,
    path: impl AsRef<Path>,
    opts: &RecordOptions,
) -> Result<WriteSummary> {
    let profile = benchmark(name).ok_or_else(|| {
        TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("unknown benchmark {name:?}"),
        ))
    })?;
    let sink = Arc::new(FileSink::create(path)?);
    let rt = CleanRuntime::with_trace_sink(
        RuntimeConfig::new()
            .detection(false)
            .heap_size(1 << 22)
            .max_threads((opts.threads + 4).max(8)),
        Box::new(Arc::clone(&sink)),
    );
    let params = KernelParams::new()
        .threads(opts.threads)
        .racy(opts.racy)
        .seed(opts.seed);
    run_benchmark(profile, &rt, &params)
        .map_err(|e| TraceError::Io(std::io::Error::other(format!("kernel failed: {e}"))))?;
    drop(rt);
    Ok(sink.finish()?)
}

/// Generates the simulator trace for profile `name`, flattens it to a
/// serialized event stream, and writes it to `path`.
pub fn record_sim_trace(
    name: &str,
    path: impl AsRef<Path>,
    cfg: &TraceGenConfig,
) -> Result<WriteSummary> {
    let profile = benchmark(name).ok_or_else(|| {
        TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("unknown benchmark {name:?}"),
        ))
    })?;
    let events = export_sim_trace(&generate_trace(profile, cfg));
    crate::writer::write_trace(path, &events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_trace;
    use crate::stats::TraceStats;

    #[test]
    fn kernel_recording_roundtrips() {
        let dir = std::env::temp_dir().join("clean-trace-test-record");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamcluster.cltr");
        let summary = record_kernel_trace(
            "streamcluster",
            &path,
            &RecordOptions {
                threads: 2,
                racy: false,
                seed: 3,
            },
        )
        .unwrap();
        assert!(summary.events > 0);
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len() as u64, summary.events);
        let stats = TraceStats::from_events(&events);
        assert!(stats.memory_events() > 0 && stats.sync_events() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sim_recording_roundtrips_compactly() {
        let dir = std::env::temp_dir().join("clean-trace-test-record");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("barnes-sim.cltr");
        let cfg = TraceGenConfig {
            threads: 4,
            accesses_per_thread: 500,
            seed: 9,
        };
        let summary = record_sim_trace("barnes", &path, &cfg).unwrap();
        assert!(summary.events > 0);
        assert!(
            summary.bytes_per_event() <= 8.0,
            "too large: {} B/event",
            summary.bytes_per_event()
        );
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len() as u64, summary.events);
        std::fs::remove_file(&path).ok();
    }
}
