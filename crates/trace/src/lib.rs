//! # clean-trace
//!
//! Persistent binary trace store and parallel offline race analysis for
//! the CLEAN reproduction — the production-scale form of the paper's
//! Section 3.1.2 debugging workflow: *"if a program execution does
//! trigger a race exception, a precise race detector can be used
//! alongside CLEAN in subsequent runs to systematically detect all
//! races."*
//!
//! Four layers:
//!
//! * **Codec** ([`codec`]): the versioned `CLTR` binary format — tag
//!   byte + LEB128 varints with per-thread address delta encoding,
//!   ~3–5 bytes per event against the 40-byte in-memory enum.
//! * **Store** ([`TraceWriter`] / [`TraceReader`]): streaming,
//!   chunk-framed file I/O with CRC-32 corruption detection;
//!   [`FileSink`] plugs into the runtime's [`EventSink`] capture hook so
//!   executions record straight to disk.
//! * **Analysis** ([`analyze`]): sequential replay through any
//!   [`TraceDetector`] engine, and the address-sharded parallel replay
//!   across scoped worker threads that provably agrees with sequential
//!   replay (see [`analyze`]'s module docs).
//! * **CLI** (`clean-analyze`): `record`, `stats`, `replay`, `diff`.
//!
//! # Example
//!
//! ```no_run
//! use clean_trace::{write_trace, read_trace, EngineKind, replay_sharded};
//! use clean_core::{ThreadId, TraceEvent};
//!
//! let events = vec![
//!     TraceEvent::Write { tid: ThreadId::new(0), addr: 64, size: 4 },
//!     TraceEvent::Write { tid: ThreadId::new(1), addr: 64, size: 4 },
//! ];
//! write_trace("waw.cltr", &events)?;
//! let back = read_trace("waw.cltr")?;
//! assert_eq!(back, events);
//! let races = replay_sharded(&back, EngineKind::Clean, 4);
//! assert_eq!(races.len(), 1);
//! # Ok::<(), clean_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod codec;
pub mod digest;
mod error;
pub mod mmap;
mod reader;
mod record;
mod stats;
mod stealing;
pub mod table;
mod writer;

pub use analyze::{
    replay_sequential, replay_sharded, required_threads, sync_free_segments, EngineKind,
    SHARD_GRANULE,
};
pub use clean_core::{EventSink, TraceEvent};
pub use digest::{digest_events, digest_file, Digester, TraceDigest};
pub use error::{Result, TraceError};
pub use mmap::{map_file, MappedTrace};
pub use reader::{read_range, read_trace, TraceReader};
pub use record::{record_kernel_trace, record_sim_trace, RecordOptions};
pub use stats::TraceStats;
pub use stealing::{
    replay_file_sharded, replay_file_stealing, replay_file_stealing_with, replay_stealing,
    scan_trace, ReplayStats, TraceScan,
};
pub use table::{parse_table, read_table, ChunkEntry, ChunkTable, TABLE_MAGIC};
pub use writer::{
    encode_trace, write_trace, write_trace_v1, FileSink, TraceWriter, WriteSummary,
    DEFAULT_CHUNK_BYTES,
};
