//! Offline race analysis over stored traces: engine selection,
//! sequential replay, and the address-sharded parallel replay.
//!
//! # Why address sharding is exact
//!
//! Every analysis engine ([`TraceDetector`]) separates its state into
//! two disjoint halves:
//!
//! * **Synchronization state** (thread/lock vector clocks): mutated
//!   *only* by sync events (acquire/release/fork/join), never by memory
//!   events.
//! * **Per-location metadata** (epochs, read/write clocks, shadow
//!   cells): mutated *only* by memory events touching that location.
//!
//! So a worker that replays the *full* synchronization skeleton but only
//! the memory events landing in its own address shard has, at every
//! event index, exactly the sequential detector's state restricted to
//! its shard — sharded and sequential replay agree race-for-race.
//! Shards are [`SHARD_GRANULE`]-byte address granules assigned
//! round-robin; the granule is a multiple of every engine's internal
//! granularity (TSan-like shadow cells use 8-byte granules), so no
//! engine's location state straddles two shards. A memory event is
//! clipped to the byte ranges its shard owns; each engine reports at
//! most one race per event (the first racy byte in address order), so
//! the merge keeps, per event index, the race with the lowest address —
//! reproducing the sequential "first racy byte" exactly.
//!
//! One caveat, checked empirically by the agreement tests: FastTrack
//! stops updating an access's remaining bytes after its first racy byte,
//! so an access that both *straddles a shard boundary* and *races in a
//! lower shard* could leave higher-shard bytes updated where sequential
//! replay left them alone. The workloads' racy accesses are aligned
//! word-size probes inside one granule, where the semantics coincide.

use clean_baselines::{
    run_detector, CleanEngine, FastTrack, FoundRace, TraceDetector, TsanLike, VcFullDetector,
};
use clean_core::TraceEvent;
use std::collections::BTreeMap;
use std::ops::Range;

/// Address-shard granule in bytes. A multiple of the TSan-like engine's
/// 8-byte shadow granule so per-location state never crosses shards.
pub const SHARD_GRANULE: usize = 64;

/// Selectable offline analysis engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The CLEAN per-byte epoch engine (WAW/RAW only).
    Clean,
    /// FastTrack with adaptive read metadata (full WAW/RAW/WAR).
    FastTrack,
    /// Two-vector-clock reference detector (full, expensive).
    VcFull,
    /// TSan-like bounded shadow-cell detector (full, approximate).
    Tsan,
}

impl EngineKind {
    /// Every engine, in the order the CLI's `--engine all` reports.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Clean,
        EngineKind::FastTrack,
        EngineKind::VcFull,
        EngineKind::Tsan,
    ];

    /// The engine's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Clean => "clean",
            EngineKind::FastTrack => "fasttrack",
            EngineKind::VcFull => "vcfull",
            EngineKind::Tsan => "tsan",
        }
    }

    /// Parses a CLI engine name.
    pub fn parse(s: &str) -> Option<EngineKind> {
        Self::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Instantiates the engine for `threads` analysis threads.
    pub fn build(&self, threads: usize) -> Box<dyn TraceDetector + Send> {
        match self {
            EngineKind::Clean => Box::new(CleanEngine::new(threads)),
            EngineKind::FastTrack => Box::new(FastTrack::new(threads)),
            EngineKind::VcFull => Box::new(VcFullDetector::new(threads)),
            EngineKind::Tsan => Box::new(TsanLike::new(threads)),
        }
    }

    /// Whether the engine detects WAR races (CLEAN deliberately does
    /// not — Section 3.2).
    pub fn detects_war(&self) -> bool {
        !matches!(self, EngineKind::Clean)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of analysis thread slots a trace needs (highest thread id
/// observed, plus one).
pub fn required_threads(events: &[TraceEvent]) -> usize {
    let mut max = 0u16;
    for e in events {
        max = max.max(e.tid().raw());
        if let TraceEvent::Fork { child, .. } | TraceEvent::Join { child, .. } = e {
            max = max.max(child.raw());
        }
    }
    usize::from(max) + 1
}

/// Cuts a trace into synchronization-free segments: maximal runs of
/// memory events, delimited by sync (acquire/release/fork/join) events.
/// Sync events belong to no segment. Empty segments are not reported.
pub fn sync_free_segments(events: &[TraceEvent]) -> Vec<Range<usize>> {
    let mut segments = Vec::new();
    let mut start = None;
    for (i, e) in events.iter().enumerate() {
        if e.is_memory() {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            segments.push(s..i);
        }
    }
    if let Some(s) = start {
        segments.push(s..events.len());
    }
    segments
}

/// Replays a trace through one engine sequentially.
pub fn replay_sequential(events: &[TraceEvent], kind: EngineKind) -> Vec<FoundRace> {
    let mut det = kind.build(required_threads(events));
    run_detector(&mut *det, events)
}

/// Byte sub-ranges of `[addr, addr + size)` owned by `shard` (of
/// `shards`), as maximal runs of consecutive owned granules.
pub(crate) fn owned_runs(
    addr: usize,
    size: usize,
    shard: usize,
    shards: usize,
) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let first = addr / SHARD_GRANULE;
    let last = (addr + size - 1) / SHARD_GRANULE;
    let mut g = first;
    while g <= last {
        if g % shards == shard {
            // Extend over consecutive owned granules (only possible
            // when shards == 1, but stay general).
            let mut end = g;
            while end < last && (end + 1) % shards == shard {
                end += 1;
            }
            let lo = addr.max(g * SHARD_GRANULE);
            let hi = (addr + size).min((end + 1) * SHARD_GRANULE);
            runs.push((lo, hi - lo));
            g = end + 1;
        } else {
            g += 1;
        }
    }
    runs
}

/// Replays a trace through one engine with memory events sharded by
/// address range, merging the per-shard race sets back into the
/// sequential verdict (see the module docs for the agreement argument).
///
/// Shard *assignment* is dynamic: shards are dealt to a bounded worker
/// pool as work-stealing tasks (see [`replay_stealing`]), so oversharding
/// — more shards than cores — load-balances instead of oversubscribing.
/// The verdict is independent of worker count and scheduling.
///
/// # Panics
///
/// Panics if `shards == 0` or a worker thread panics.
///
/// [`replay_stealing`]: crate::replay_stealing
pub fn replay_sharded(events: &[TraceEvent], kind: EngineKind, shards: usize) -> Vec<FoundRace> {
    assert!(shards > 0, "need at least one shard");
    if shards == 1 {
        return replay_sequential(events, kind);
    }
    let workers = shards.min(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2),
    );
    crate::stealing::replay_stealing(events, kind, shards, workers).0
}

/// Merges per-shard `(event index, race)` sets into the sequential
/// verdict: per event index every engine reports at most one race — the
/// first racy byte in address order — so the merge keeps the
/// lowest-address race of each event.
pub(crate) fn merge_shard_races(
    per_shard: impl IntoIterator<Item = Vec<(usize, FoundRace)>>,
) -> Vec<FoundRace> {
    let mut merged: BTreeMap<usize, FoundRace> = BTreeMap::new();
    for (idx, race) in per_shard.into_iter().flatten() {
        merged
            .entry(idx)
            .and_modify(|r| {
                if race.addr < r.addr {
                    *r = race;
                }
            })
            .or_insert(race);
    }
    merged.into_values().collect()
}

/// One shard's replay: full sync skeleton, clipped memory events.
pub(crate) fn shard_worker(
    events: &[TraceEvent],
    segments: &[Range<usize>],
    kind: EngineKind,
    threads: usize,
    shard: usize,
    shards: usize,
) -> Vec<(usize, FoundRace)> {
    let mut det = kind.build(threads);
    let mut found = Vec::new();
    // Alternate between sync gaps (replayed verbatim — the skeleton
    // every worker shares) and synchronization-free segments (memory
    // events, clipped to the shard's owned address ranges).
    let mut next = 0usize;
    let replay_sync_gap = |det: &mut Box<dyn TraceDetector + Send>,
                           found: &mut Vec<(usize, FoundRace)>,
                           range: Range<usize>| {
        for idx in range {
            for race in det.process(&events[idx]) {
                found.push((idx, race));
            }
        }
    };
    for seg in segments {
        replay_sync_gap(&mut det, &mut found, next..seg.start);
        for idx in seg.clone() {
            let (tid, addr, size, is_read) = match events[idx] {
                TraceEvent::Read { tid, addr, size } => (tid, addr, size, true),
                TraceEvent::Write { tid, addr, size } => (tid, addr, size, false),
                ref other => unreachable!("sync event {other:?} inside an SFR segment"),
            };
            for (a, s) in owned_runs(addr, size, shard, shards) {
                let clipped = if is_read {
                    TraceEvent::Read {
                        tid,
                        addr: a,
                        size: s,
                    }
                } else {
                    TraceEvent::Write {
                        tid,
                        addr: a,
                        size: s,
                    }
                };
                for race in det.process(&clipped) {
                    found.push((idx, race));
                }
            }
        }
        next = seg.end;
    }
    replay_sync_gap(&mut det, &mut found, next..events.len());
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_core::ThreadId;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn w(tid: u16, addr: usize, size: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size,
        }
    }

    #[test]
    fn owned_runs_partition_the_range() {
        // Every byte of any range must be owned by exactly one shard.
        for shards in 1..=5 {
            for (addr, size) in [(0, 1), (63, 2), (100, 300), (4096, 64), (7, 777)] {
                let mut owners = vec![0u32; size];
                for shard in 0..shards {
                    for (a, s) in owned_runs(addr, size, shard, shards) {
                        assert!(a >= addr && a + s <= addr + size);
                        for b in a..a + s {
                            owners[b - addr] += 1;
                        }
                    }
                }
                assert!(
                    owners.iter().all(|&c| c == 1),
                    "{shards} shards, {addr}+{size}"
                );
            }
        }
    }

    #[test]
    fn segments_split_on_sync() {
        let events = vec![
            w(0, 0, 4),
            w(0, 4, 4),
            TraceEvent::Acquire { tid: t(0), lock: 1 },
            w(1, 8, 4),
            TraceEvent::Release { tid: t(0), lock: 1 },
        ];
        assert_eq!(sync_free_segments(&events), vec![0..2, 3..4]);
        assert_eq!(sync_free_segments(&[]), Vec::<Range<usize>>::new());
    }

    #[test]
    fn sharded_matches_sequential_on_simple_race() {
        // Two unordered threads write the same word: a WAW every engine
        // must find, at the same address, sharded or not.
        let events = vec![w(0, 128, 4), w(1, 128, 4)];
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            assert!(!seq.is_empty(), "{kind} missed the WAW");
            for shards in [1, 2, 3, 8] {
                assert_eq!(
                    replay_sharded(&events, kind, shards),
                    seq,
                    "{kind}/{shards}"
                );
            }
        }
    }

    #[test]
    fn required_threads_counts_forked_children() {
        let events = vec![TraceEvent::Fork {
            parent: t(0),
            child: t(7),
        }];
        assert_eq!(required_threads(&events), 8);
    }
}
