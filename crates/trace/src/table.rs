//! The CLTR v2 chunk-offset table: random access and parallel decode.
//!
//! Version 2 appends a footer after the end-of-stream marker describing
//! every chunk in the stream: its file offset, payload length, event
//! count, and the index of its first event. Because encoder and decoder
//! state reset at chunk boundaries (see [`codec`](crate::codec)), any
//! chunk decodes independently given its offset — the table turns the
//! sequential stream into an indexed one, unlocking N-way parallel
//! decode and event-index range queries without touching the event
//! encoding (digests are over events, so they are unchanged by the
//! table).
//!
//! Layout, after the all-zero end-of-stream frame:
//!
//! ```text
//! entry * chunk_count   [offset u64][payload_len u32][events u32][first_event u64]   24 B each
//! trailer               [chunk_count u32][total_events u64][threads u32]
//!                       [table_crc u32][magic "CTB2"]                                24 B
//! ```
//!
//! All integers little-endian. `offset` addresses the chunk's 12-byte
//! frame header from the start of the stream. `table_crc` is CRC-32 over
//! the entry bytes followed by `chunk_count`, `total_events`, and
//! `threads` (every trailer field except the CRC and magic themselves).
//! The trailer is fixed-size and last, so the whole table is located
//! from the end of the stream with no stored offset: the entries begin
//! `24 + 24 * chunk_count` bytes before EOF.
//!
//! v1 streams have no footer; every consumer of the table degrades to
//! the sequential scan when [`read_table`]/[`parse_table`] return
//! `None`.

use crate::codec::{crc32, FORMAT_V1, FORMAT_VERSION, MAGIC};
use crate::error::{Result, TraceError};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Trailer magic: the last four bytes of every v2 stream.
pub const TABLE_MAGIC: [u8; 4] = *b"CTB2";

/// Encoded size of one chunk-table entry.
pub const ENTRY_BYTES: usize = 24;

/// Encoded size of the fixed trailer.
pub const TRAILER_BYTES: usize = 24;

/// Stream header size (magic + version byte).
const HEADER_BYTES: u64 = 5;

/// End-of-stream marker size (one all-zero chunk frame).
const EOS_BYTES: u64 = 12;

/// Chunk frame header size (payload length, event count, CRC).
const FRAME_BYTES: u64 = 12;

/// One chunk's description in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Stream offset of the chunk's 12-byte frame header.
    pub offset: u64,
    /// Payload bytes (excluding the frame header).
    pub payload_len: u32,
    /// Events encoded in the chunk.
    pub events: u32,
    /// Trace index of the chunk's first event.
    pub first_event: u64,
}

impl ChunkEntry {
    /// Trace index one past the chunk's last event.
    pub fn end_event(&self) -> u64 {
        self.first_event + u64::from(self.events)
    }

    /// Stream offset one past the chunk's payload.
    pub fn end_offset(&self) -> u64 {
        self.offset + FRAME_BYTES + u64::from(self.payload_len)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.first_event.to_le_bytes());
    }

    fn decode(b: &[u8]) -> Self {
        ChunkEntry {
            offset: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            payload_len: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            events: u32::from_le_bytes(b[12..16].try_into().expect("4 bytes")),
            first_event: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
        }
    }
}

/// The decoded v2 chunk table: one entry per chunk plus stream totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkTable {
    /// Per-chunk entries in stream order.
    pub entries: Vec<ChunkEntry>,
    /// Total events in the stream (equals the last entry's
    /// [`end_event`](ChunkEntry::end_event), zero when empty).
    pub total_events: u64,
    /// Analysis thread slots required (highest tid observed plus one;
    /// one for an empty trace).
    pub threads: u32,
}

impl ChunkTable {
    /// Encodes the table (entries + trailer) for appending after the
    /// end-of-stream marker.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * ENTRY_BYTES + TRAILER_BYTES);
        for e in &self.entries {
            e.encode_into(&mut out);
        }
        let crc = self.table_crc(&out);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.total_events.to_le_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&TABLE_MAGIC);
        out
    }

    /// CRC over the entry bytes and every trailer field before the CRC.
    fn table_crc(&self, entry_bytes: &[u8]) -> u32 {
        let mut covered = Vec::with_capacity(entry_bytes.len() + 16);
        covered.extend_from_slice(entry_bytes);
        covered.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        covered.extend_from_slice(&self.total_events.to_le_bytes());
        covered.extend_from_slice(&self.threads.to_le_bytes());
        crc32(&covered)
    }

    /// Index of the chunk containing trace event `event`, or `None`
    /// past the end of the stream.
    pub fn locate(&self, event: u64) -> Option<usize> {
        if event >= self.total_events {
            return None;
        }
        Some(self.entries.partition_point(|e| e.end_event() <= event))
    }

    /// Structural validation against the stream length: contiguous
    /// chunks starting right after the header, consistent event prefix
    /// sums, and a footer that accounts for every remaining byte.
    fn validate(&self, stream_len: u64) -> Result<()> {
        let bad = |reason| Err(TraceError::BadTable { reason });
        let mut next_offset = HEADER_BYTES;
        let mut next_event = 0u64;
        for e in &self.entries {
            if e.payload_len == 0 || e.events == 0 {
                return bad("zero-length chunk entry");
            }
            if e.payload_len as usize > 256 << 20 {
                return bad("chunk entry implausibly large");
            }
            if e.offset != next_offset {
                return bad("chunk offsets not contiguous");
            }
            if e.first_event != next_event {
                return bad("chunk event indices not contiguous");
            }
            next_offset = e.end_offset();
            next_event = e.end_event();
        }
        if next_event != self.total_events {
            return bad("entry event counts disagree with trailer total");
        }
        if self.threads == 0 {
            return bad("zero thread slots");
        }
        let table_len = (self.entries.len() * ENTRY_BYTES + TRAILER_BYTES) as u64;
        if next_offset + EOS_BYTES + table_len != stream_len {
            return bad("table does not account for the stream length");
        }
        Ok(())
    }
}

/// Reads the version byte of a 5-byte stream header, rejecting foreign
/// magics and unknown versions.
fn header_version(header: &[u8; 5]) -> Result<u8> {
    let magic: [u8; 4] = header[..4].try_into().expect("slice of length 4");
    if magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    if header[4] != FORMAT_V1 && header[4] != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(header[4]));
    }
    Ok(header[4])
}

/// Parses and validates the footer region of a v2 stream given the
/// trailing `EOS + entries + trailer` bytes and the total stream length.
pub(crate) fn parse_footer(tail: &[u8], stream_len: u64) -> Result<ChunkTable> {
    let bad = |reason| Err(TraceError::BadTable { reason });
    if tail.len() < TRAILER_BYTES {
        return bad("stream too short for a chunk-table trailer");
    }
    let trailer = &tail[tail.len() - TRAILER_BYTES..];
    if trailer[20..24] != TABLE_MAGIC {
        return bad("chunk-table trailer magic missing");
    }
    let chunk_count = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes")) as usize;
    let total_events = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
    let threads = u32::from_le_bytes(trailer[12..16].try_into().expect("4 bytes"));
    let stored_crc = u32::from_le_bytes(trailer[16..20].try_into().expect("4 bytes"));
    let table_len = match chunk_count
        .checked_mul(ENTRY_BYTES)
        .and_then(|n| n.checked_add(TRAILER_BYTES))
    {
        Some(n) if n + EOS_BYTES as usize <= tail.len() => n,
        _ => return bad("chunk count overruns the stream"),
    };
    let entries_start = tail.len() - table_len;
    if tail[entries_start - EOS_BYTES as usize..entries_start]
        .iter()
        .any(|&b| b != 0)
    {
        return bad("end-of-stream marker missing before the table");
    }
    let entry_bytes = &tail[entries_start..tail.len() - TRAILER_BYTES];
    let entries: Vec<ChunkEntry> = entry_bytes
        .chunks_exact(ENTRY_BYTES)
        .map(ChunkEntry::decode)
        .collect();
    let table = ChunkTable {
        entries,
        total_events,
        threads,
    };
    let computed = table.table_crc(entry_bytes);
    if computed != stored_crc {
        return bad("chunk-table checksum mismatch");
    }
    table.validate(stream_len)?;
    Ok(table)
}

/// Parses the chunk table out of a complete in-memory stream (e.g. an
/// mmap view). Returns `Ok(None)` for v1 streams (no table).
///
/// # Errors
///
/// [`TraceError::BadMagic`]/[`UnsupportedVersion`] for foreign streams;
/// [`TraceError::BadTable`] when a v2 footer is missing, truncated,
/// corrupt, or inconsistent with the stream length.
///
/// [`UnsupportedVersion`]: TraceError::UnsupportedVersion
pub fn parse_table(stream: &[u8]) -> Result<Option<ChunkTable>> {
    if stream.len() < HEADER_BYTES as usize {
        return Err(TraceError::BadMagic(
            stream
                .get(..4)
                .and_then(|s| s.try_into().ok())
                .unwrap_or([0; 4]),
        ));
    }
    let header: [u8; 5] = stream[..5].try_into().expect("5 bytes");
    if header_version(&header)? == FORMAT_V1 {
        return Ok(None);
    }
    let tail_start = HEADER_BYTES as usize;
    parse_footer(&stream[tail_start..], stream.len() as u64).map(Some)
}

/// Reads the chunk table from the trace file at `path` without decoding
/// any events: the header, trailer, and entries are read directly (three
/// small reads). Returns `Ok(None)` for v1 traces.
///
/// # Errors
///
/// As [`parse_table`], plus I/O errors.
pub fn read_table(path: impl AsRef<Path>) -> Result<Option<ChunkTable>> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let mut header = [0u8; 5];
    file.read_exact(&mut header)
        .map_err(|_| TraceError::BadMagic([0; 4]))?;
    if header_version(&header)? == FORMAT_V1 {
        return Ok(None);
    }
    if len < HEADER_BYTES + EOS_BYTES + TRAILER_BYTES as u64 {
        return Err(TraceError::BadTable {
            reason: "stream too short for a chunk-table trailer",
        });
    }
    let mut trailer = [0u8; TRAILER_BYTES];
    file.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
    file.read_exact(&mut trailer)?;
    if trailer[20..24] != TABLE_MAGIC {
        return Err(TraceError::BadTable {
            reason: "chunk-table trailer magic missing",
        });
    }
    let chunk_count = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes")) as u64;
    let tail_len = match chunk_count
        .checked_mul(ENTRY_BYTES as u64)
        .and_then(|n| n.checked_add(TRAILER_BYTES as u64 + EOS_BYTES))
    {
        Some(n) if n + HEADER_BYTES <= len => n,
        _ => {
            return Err(TraceError::BadTable {
                reason: "chunk count overruns the stream",
            })
        }
    };
    let mut tail = vec![0u8; tail_len as usize];
    file.seek(SeekFrom::End(-(tail_len as i64)))?;
    file.read_exact(&mut tail)?;
    parse_footer(&tail, len).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use clean_core::{ThreadId, TraceEvent};

    fn events(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::Write {
                tid: ThreadId::new((i % 3) as u16),
                addr: 64 * i,
                size: 4,
            })
            .collect()
    }

    fn encode_chunked(events: &[TraceEvent], chunk_bytes: usize) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new())
            .unwrap()
            .chunk_bytes(chunk_bytes);
        for e in events {
            w.write_event(e).unwrap();
        }
        w.finish_into().unwrap().1
    }

    #[test]
    fn table_roundtrips_and_locates() {
        let evs = events(1000);
        let bytes = encode_chunked(&evs, 256);
        let table = parse_table(&bytes).unwrap().expect("v2 stream has a table");
        assert!(table.entries.len() > 2);
        assert_eq!(table.total_events, 1000);
        assert_eq!(table.threads, 3);
        for probe in [0u64, 1, 255, 256, 500, 999] {
            let chunk = table.locate(probe).unwrap();
            let e = &table.entries[chunk];
            assert!(e.first_event <= probe && probe < e.end_event());
        }
        assert_eq!(table.locate(1000), None);
        assert_eq!(table.locate(u64::MAX), None);
    }

    #[test]
    fn v1_stream_has_no_table() {
        let evs = events(100);
        let mut w = TraceWriter::new_v1(Vec::new()).unwrap();
        for e in &evs {
            w.write_event(e).unwrap();
        }
        let (_, bytes) = w.finish_into().unwrap();
        assert!(parse_table(&bytes).unwrap().is_none());
    }

    #[test]
    fn empty_trace_table_is_valid() {
        let w = TraceWriter::new(Vec::new()).unwrap();
        let (_, bytes) = w.finish_into().unwrap();
        let table = parse_table(&bytes).unwrap().expect("table");
        assert!(table.entries.is_empty());
        assert_eq!(table.total_events, 0);
        assert_eq!(table.threads, 1);
    }

    #[test]
    fn every_footer_corruption_is_detected() {
        let evs = events(500);
        let bytes = encode_chunked(&evs, 512);
        let table = parse_table(&bytes).unwrap().expect("table");
        let footer_len = table.entries.len() * ENTRY_BYTES + TRAILER_BYTES;
        let footer_start = bytes.len() - footer_len;
        for pos in footer_start..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    parse_table(&bad).is_err(),
                    "flip at byte {pos} bit {bit} accepted"
                );
            }
        }
        for cut in footer_start..bytes.len() {
            assert!(parse_table(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn file_table_matches_in_memory_table() {
        let mut path = std::env::temp_dir();
        path.push(format!("clean-trace-table-{}.cltr", std::process::id()));
        let evs = events(2000);
        let mut w = TraceWriter::create(&path).unwrap().chunk_bytes(512);
        for e in &evs {
            w.write_event(e).unwrap();
        }
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let mem = parse_table(&bytes).unwrap().expect("table");
        let file = read_table(&path).unwrap().expect("table");
        assert_eq!(mem, file);
        std::fs::remove_file(&path).ok();
    }
}
