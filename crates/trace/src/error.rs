//! Error type of the trace store.

use std::fmt;
use std::io;

/// Failures reading, writing or validating a binary trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `CLTR` magic.
    BadMagic([u8; 4]),
    /// The stream's format version is not supported by this reader.
    UnsupportedVersion(u8),
    /// A chunk header or payload ends before its declared length.
    Truncated {
        /// Index of the chunk where the stream ended prematurely.
        chunk: u64,
    },
    /// A chunk's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Index of the corrupt chunk.
        chunk: u64,
        /// CRC stored in the chunk header.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// A chunk payload is malformed (bad tag, varint overflow, or length
    /// inconsistent with the declared event count).
    Corrupt {
        /// Index of the corrupt chunk.
        chunk: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// A v2 chunk table is missing, truncated, corrupt, or inconsistent
    /// with the stream it describes.
    BadTable {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a CLEAN trace (magic {m:02x?})"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Truncated { chunk } => {
                write!(f, "trace truncated inside chunk {chunk}")
            }
            TraceError::ChecksumMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::Corrupt { chunk, reason } => {
                write!(f, "chunk {chunk} corrupt: {reason}")
            }
            TraceError::BadTable { reason } => {
                write!(f, "chunk table invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Result alias of the trace store.
pub type Result<T> = std::result::Result<T, TraceError>;
