//! Work-stealing parallel replay: dynamic shard scheduling for the
//! address-sharded analysis, in memory and straight off disk.
//!
//! [`analyze`](crate::analyze) proves that replaying the full sync
//! skeleton plus the memory events of one address shard reproduces the
//! sequential verdict restricted to that shard. The original engine
//! spawned one OS thread *per shard*, which couples the sharding degree
//! (a precision-neutral tuning knob) to the hardware parallelism. Here
//! shards become *tasks* scheduled onto a bounded worker pool:
//!
//! * [`replay_stealing`] — in-memory traces. Shards are dealt
//!   round-robin into per-worker lanes; a worker drains its own lane
//!   from the front and steals from the back of the busiest siblings,
//!   so skewed address distributions load-balance automatically.
//! * [`replay_file_sharded`] — the naive file engine: one worker per
//!   shard, each independently decoding the *whole* file through a
//!   buffered [`TraceReader`]. Simple and exact, but the decode work is
//!   multiplied by the shard count.
//! * [`replay_file_stealing`] — the optimized file engine: a single
//!   producer decodes the trace once (out of an [`mmap`](crate::mmap)
//!   view when the kernel grants one, buffered reads otherwise) into
//!   shared event batches; per-shard bounded queues with backpressure
//!   feed workers that claim shards with a `try_lock` and steal any
//!   shard whose home worker is busy. Per-shard batch order is FIFO, so
//!   the verdict is exactly the sequential one regardless of worker
//!   count, steal pattern, or batch size.

use crate::analyze::{
    merge_shard_races, owned_runs, required_threads, shard_worker, sync_free_segments, EngineKind,
};
use crate::error::Result;
use crate::mmap::map_file;
use crate::reader::TraceReader;
use clean_baselines::{FoundRace, TraceDetector};
use clean_core::TraceEvent;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Events per producer batch in [`replay_file_stealing`]. Large enough
/// to amortize queue locking, small enough that per-shard backpressure
/// bounds memory at `shards * QUEUE_CAP * BATCH_EVENTS` events.
const BATCH_EVENTS: usize = 64 * 1024;

/// Maximum batches buffered per shard queue before the producer blocks.
const QUEUE_CAP: usize = 8;

/// Counters describing how a parallel replay actually executed. The
/// race verdict never depends on these — they exist for benchmarks and
/// the CLI's reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Total events replayed (per engine; every shard sees the sync
    /// skeleton, so this counts the trace once).
    pub events: u64,
    /// Scheduling units issued: shard tasks for the in-memory engines,
    /// producer batches for the streaming file engine.
    pub batches: u64,
    /// Tasks executed by a worker other than their round-robin home.
    pub steals: u64,
    /// Whether the file engine read from an `mmap` view (`false` for
    /// in-memory engines and the buffered fallback).
    pub used_mmap: bool,
}

/// Result of one streaming pass over a trace file: the sizing facts the
/// file replay engines need up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceScan {
    /// Number of events in the trace.
    pub events: u64,
    /// Analysis thread slots required (highest tid observed, plus one).
    pub threads: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// Scans a trace file once, counting events and required thread slots.
///
/// The file engines take the slot count as a parameter instead of
/// rescanning so that benchmark comparisons between them measure replay
/// alone; call this once and pass [`TraceScan::threads`] to both.
///
/// # Errors
///
/// Propagates I/O and decode errors.
pub fn scan_trace(path: impl AsRef<Path>) -> Result<TraceScan> {
    let path = path.as_ref();
    let bytes = std::fs::metadata(path)?.len();
    let mut events = 0u64;
    let mut max = 0u16;
    for ev in TraceReader::open(path)? {
        let ev = ev?;
        events += 1;
        max = max.max(ev.tid().raw());
        if let TraceEvent::Fork { child, .. } | TraceEvent::Join { child, .. } = ev {
            max = max.max(child.raw());
        }
    }
    Ok(TraceScan {
        events,
        threads: usize::from(max) + 1,
        bytes,
    })
}

/// Feeds one event to a shard's detector: sync events verbatim (the
/// shared skeleton), memory events clipped to the shard's owned address
/// granules. Streaming twin of [`shard_worker`]'s segment walk.
fn process_event(
    det: &mut Box<dyn TraceDetector + Send>,
    found: &mut Vec<(usize, FoundRace)>,
    idx: usize,
    ev: &TraceEvent,
    shard: usize,
    shards: usize,
) {
    match *ev {
        TraceEvent::Read { tid, addr, size } => {
            for (a, s) in owned_runs(addr, size, shard, shards) {
                let clipped = TraceEvent::Read {
                    tid,
                    addr: a,
                    size: s,
                };
                for race in det.process(&clipped) {
                    found.push((idx, race));
                }
            }
        }
        TraceEvent::Write { tid, addr, size } => {
            for (a, s) in owned_runs(addr, size, shard, shards) {
                let clipped = TraceEvent::Write {
                    tid,
                    addr: a,
                    size: s,
                };
                for race in det.process(&clipped) {
                    found.push((idx, race));
                }
            }
        }
        _ => {
            for race in det.process(ev) {
                found.push((idx, race));
            }
        }
    }
}

/// Replays an in-memory trace with `shards` address shards scheduled as
/// work-stealing tasks over `workers` threads. The verdict equals
/// [`replay_sequential`](crate::replay_sequential) for any shard/worker
/// combination; the returned [`ReplayStats`] describe the scheduling.
///
/// # Panics
///
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn replay_stealing(
    events: &[TraceEvent],
    kind: EngineKind,
    shards: usize,
    workers: usize,
) -> (Vec<FoundRace>, ReplayStats) {
    assert!(shards > 0, "need at least one shard");
    assert!(workers > 0, "need at least one worker");
    let threads = required_threads(events);
    let segments = sync_free_segments(events);
    // Shards dealt round-robin into per-worker lanes. A worker pops its
    // own lane from the front and steals from victims' backs, so an
    // owner and a thief never contend for the same end of a busy lane.
    let lanes: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for shard in 0..shards {
        lanes[shard % workers].lock().push_back(shard);
    }
    let steals = AtomicU64::new(0);
    let per_shard: Vec<Vec<(usize, FoundRace)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (lanes, steals, segments) = (&lanes, &steals, &segments);
                scope.spawn(move |_| {
                    let mut done = Vec::new();
                    loop {
                        let mut claimed = lanes[w].lock().pop_front();
                        if claimed.is_none() {
                            for v in 1..workers {
                                if let Some(s) = lanes[(w + v) % workers].lock().pop_back() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    claimed = Some(s);
                                    break;
                                }
                            }
                        }
                        let Some(shard) = claimed else { break };
                        done.push(shard_worker(events, segments, kind, threads, shard, shards));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stealing worker panicked"))
            .collect()
    })
    .expect("stealing scope panicked");
    let races = merge_shard_races(per_shard);
    let stats = ReplayStats {
        events: events.len() as u64,
        batches: shards as u64,
        steals: steals.load(Ordering::Relaxed),
        used_mmap: false,
    };
    (races, stats)
}

/// The naive parallel file engine: one worker per shard, each decoding
/// the whole file through its own buffered [`TraceReader`]. `slots` is
/// the analysis thread capacity (see [`scan_trace`]).
///
/// Exact but decode-bound: the file is decoded `shards` times. Kept as
/// the honest baseline [`replay_file_stealing`] is measured against.
///
/// # Errors
///
/// Propagates I/O and decode errors from any worker.
///
/// # Panics
///
/// Panics if `shards == 0` or a worker thread panics.
pub fn replay_file_sharded(
    path: impl AsRef<Path>,
    kind: EngineKind,
    shards: usize,
    slots: usize,
) -> Result<(Vec<FoundRace>, ReplayStats)> {
    assert!(shards > 0, "need at least one shard");
    let path = path.as_ref();
    type ShardResult = Result<(Vec<(usize, FoundRace)>, u64)>;
    let results: Vec<ShardResult> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut det = kind.build(slots);
                    let mut found = Vec::new();
                    let mut idx = 0usize;
                    for ev in TraceReader::open(path)? {
                        process_event(&mut det, &mut found, idx, &ev?, shard, shards);
                        idx += 1;
                    }
                    Ok((found, idx as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("file shard worker panicked"))
            .collect()
    })
    .expect("file replay scope panicked");
    let mut per_shard = Vec::with_capacity(shards);
    let mut events = 0u64;
    for r in results {
        let (found, n) = r?;
        events = n;
        per_shard.push(found);
    }
    let stats = ReplayStats {
        events,
        batches: shards as u64,
        steals: 0,
        used_mmap: false,
    };
    Ok((merge_shard_races(per_shard), stats))
}

/// One producer batch: `events[i]` is trace event `base + i`.
struct Batch {
    base: usize,
    events: Vec<TraceEvent>,
}

/// A shard's analysis state. The `Mutex` wrapping it *is* the shard
/// claim: whichever worker holds it replays that shard's next batch.
struct ShardLane {
    det: Box<dyn TraceDetector + Send>,
    found: Vec<(usize, FoundRace)>,
}

/// Queue state shared between the producer and all workers.
struct PipeState {
    /// Per-shard FIFO of pending batches (each batch is pushed to every
    /// shard — all shards replay the sync skeleton).
    queues: Vec<VecDeque<Arc<Batch>>>,
    /// Producer finished (successfully or not); no more pushes coming.
    done: bool,
}

/// The streaming pipeline of [`replay_file_stealing`].
struct Pipeline {
    shards: usize,
    shared: Mutex<PipeState>,
    /// Signals workers: new batches queued, or `done` set.
    work: Condvar,
    /// Signals the producer: queue space freed.
    space: Condvar,
    claims: Vec<Mutex<ShardLane>>,
    steals: AtomicU64,
}

impl Pipeline {
    fn new(kind: EngineKind, slots: usize, shards: usize) -> Self {
        Pipeline {
            shards,
            shared: Mutex::new(PipeState {
                queues: (0..shards).map(|_| VecDeque::new()).collect(),
                done: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            claims: (0..shards)
                .map(|_| {
                    Mutex::new(ShardLane {
                        det: kind.build(slots),
                        found: Vec::new(),
                    })
                })
                .collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Decodes the whole trace once, fanning batches out to every shard
    /// queue. Returns `(events, batches)` produced.
    fn produce<R: Read>(&self, reader: TraceReader<R>) -> Result<(u64, u64)> {
        let mut base = 0usize;
        let mut batches = 0u64;
        let mut buf: Vec<TraceEvent> = Vec::with_capacity(BATCH_EVENTS);
        for ev in reader {
            buf.push(ev?);
            if buf.len() == BATCH_EVENTS {
                let events = std::mem::replace(&mut buf, Vec::with_capacity(BATCH_EVENTS));
                self.push(Batch { base, events });
                base += BATCH_EVENTS;
                batches += 1;
            }
        }
        let total = (base + buf.len()) as u64;
        if !buf.is_empty() {
            self.push(Batch { base, events: buf });
            batches += 1;
        }
        Ok((total, batches))
    }

    /// Queues one batch for every shard, blocking while any queue is at
    /// capacity (backpressure bounds decoded-but-unreplayed memory).
    fn push(&self, batch: Batch) {
        let batch = Arc::new(batch);
        let mut st = self.shared.lock();
        while st.queues.iter().any(|q| q.len() >= QUEUE_CAP) {
            self.space.wait(&mut st);
        }
        for q in st.queues.iter_mut() {
            q.push_back(Arc::clone(&batch));
        }
        drop(st);
        self.work.notify_all();
    }

    /// Marks the producer finished (even on error) so workers drain the
    /// queues and exit instead of waiting forever.
    fn finish(&self) {
        self.shared.lock().done = true;
        self.work.notify_all();
    }

    /// Worker loop: claim a shard with a pending batch (own shards
    /// first, then steals), replay the batch, repeat until the producer
    /// is done and every queue is drained.
    fn run_worker(&self, w: usize, workers: usize) {
        loop {
            let mut task = None;
            {
                let mut st = self.shared.lock();
                loop {
                    // Pass 0 scans this worker's round-robin home
                    // shards, pass 1 steals from the rest. `try_lock`
                    // both claims the shard and skips shards another
                    // worker is already replaying.
                    'scan: for pass in 0..2 {
                        for shard in 0..self.shards {
                            let home = shard % workers == w;
                            if home != (pass == 0) || st.queues[shard].is_empty() {
                                continue;
                            }
                            if let Some(lane) = self.claims[shard].try_lock() {
                                let batch =
                                    st.queues[shard].pop_front().expect("checked non-empty");
                                task = Some((shard, batch, lane, pass == 1));
                                break 'scan;
                            }
                        }
                    }
                    if task.is_some() {
                        break;
                    }
                    if st.done && st.queues.iter().all(|q| q.is_empty()) {
                        drop(st);
                        // Wake parked siblings so they observe
                        // completion too.
                        self.work.notify_all();
                        return;
                    }
                    self.work.wait(&mut st);
                }
            }
            self.space.notify_one();
            let (shard, batch, mut lane, stolen) = task.expect("task set before loop exit");
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            let ShardLane { det, found } = &mut *lane;
            for (off, ev) in batch.events.iter().enumerate() {
                process_event(det, found, batch.base + off, ev, shard, self.shards);
            }
        }
    }
}

/// The optimized parallel file engine: the trace is decoded once — from
/// an `mmap` view when available, buffered reads otherwise — and
/// streamed as shared batches through bounded per-shard queues to
/// `workers` work-stealing replay threads. `slots` is the analysis
/// thread capacity (see [`scan_trace`]).
///
/// Exactly matches [`replay_file_sharded`] and the in-memory engines
/// for any shard/worker/batch combination: every shard still observes
/// the full event stream in order, because batches are FIFO per shard
/// and a shard's claim lock serializes its replay.
///
/// # Errors
///
/// Propagates I/O and decode errors.
///
/// # Panics
///
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn replay_file_stealing(
    path: impl AsRef<Path>,
    kind: EngineKind,
    shards: usize,
    workers: usize,
    slots: usize,
) -> Result<(Vec<FoundRace>, ReplayStats)> {
    assert!(shards > 0, "need at least one shard");
    assert!(workers > 0, "need at least one worker");
    let path = path.as_ref();
    let mapped = map_file(path)?;
    let pipe = Pipeline::new(kind, slots, shards);
    let produced = crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let pipe = &pipe;
            scope.spawn(move |_| pipe.run_worker(w, workers));
        }
        let result = match &mapped {
            Some(m) => TraceReader::new(m.bytes()).and_then(|r| pipe.produce(r)),
            None => TraceReader::open(path).and_then(|r| pipe.produce(r)),
        };
        // Even on a decode error: workers must drain and exit before
        // the scope can join them.
        pipe.finish();
        result
    })
    .expect("streaming replay scope panicked");
    let (events, batches) = produced?;
    let per_shard: Vec<_> = pipe
        .claims
        .into_iter()
        .map(|lane| lane.into_inner().found)
        .collect();
    let stats = ReplayStats {
        events,
        batches,
        steals: pipe.steals.load(Ordering::Relaxed),
        used_mmap: mapped.is_some(),
    };
    Ok((merge_shard_races(per_shard), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::replay_sequential;
    use crate::write_trace;
    use clean_core::ThreadId;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn w(tid: u16, addr: usize, size: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size,
        }
    }

    /// Forks, disjoint bulk writes, a locked region, and two genuine
    /// races (one against plain writes, one against a locked write with
    /// no release/acquire pairing).
    fn mixed_trace() -> Vec<TraceEvent> {
        let mut ev = vec![
            TraceEvent::Fork {
                parent: t(0),
                child: t(1),
            },
            TraceEvent::Fork {
                parent: t(0),
                child: t(2),
            },
        ];
        for i in 0..200 {
            ev.push(w(0, 64 * (i % 5), 4));
            ev.push(w(1, 4096 + 64 * (i % 5), 4));
        }
        ev.push(TraceEvent::Acquire { tid: t(1), lock: 9 });
        ev.push(w(1, 1 << 20, 8));
        ev.push(TraceEvent::Release { tid: t(1), lock: 9 });
        ev.push(w(2, 64, 4));
        ev.push(w(2, 1 << 20, 8));
        ev
    }

    #[test]
    fn stealing_matches_sequential_for_all_schedules() {
        let events = mixed_trace();
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            assert!(!seq.is_empty(), "{kind} found no races");
            for shards in [1, 2, 3, 8] {
                for workers in [1, 2, 3] {
                    let (races, stats) = replay_stealing(&events, kind, shards, workers);
                    assert_eq!(races, seq, "{kind}/{shards} shards/{workers} workers");
                    assert_eq!(stats.events, events.len() as u64);
                }
            }
        }
    }

    #[test]
    fn file_engines_agree_with_sequential() {
        let mut path = std::env::temp_dir();
        path.push(format!("clean-trace-stealing-{}.cltr", std::process::id()));
        let events = mixed_trace();
        write_trace(&path, &events).unwrap();

        let scan = scan_trace(&path).unwrap();
        assert_eq!(scan.events, events.len() as u64);
        assert_eq!(scan.threads, 3);
        assert!(scan.bytes > 0);

        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            for shards in [1, 3, 8] {
                let (naive, nstats) =
                    replay_file_sharded(&path, kind, shards, scan.threads).unwrap();
                assert_eq!(naive, seq, "naive {kind}/{shards}");
                assert_eq!(nstats.events, events.len() as u64);
                for workers in [1, 2, 4] {
                    let (fast, fstats) =
                        replay_file_stealing(&path, kind, shards, workers, scan.threads).unwrap();
                    assert_eq!(fast, seq, "stealing {kind}/{shards}/{workers}");
                    assert_eq!(fstats.events, events.len() as u64);
                    assert!(fstats.batches >= 1);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_of_missing_file_errors() {
        assert!(scan_trace("/nonexistent/clean-trace.cltr").is_err());
    }
}
