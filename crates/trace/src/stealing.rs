//! Work-stealing parallel replay: dynamic shard scheduling for the
//! address-sharded analysis, in memory and straight off disk.
//!
//! [`analyze`](crate::analyze) proves that replaying the full sync
//! skeleton plus the memory events of one address shard reproduces the
//! sequential verdict restricted to that shard. The original engine
//! spawned one OS thread *per shard*, which couples the sharding degree
//! (a precision-neutral tuning knob) to the hardware parallelism. Here
//! shards become *tasks* scheduled onto a bounded worker pool:
//!
//! * [`replay_stealing`] — in-memory traces. Shards are dealt
//!   round-robin into per-worker lanes; a worker drains its own lane
//!   from the front and steals from the back of the busiest siblings,
//!   so skewed address distributions load-balance automatically.
//! * [`replay_file_sharded`] — the naive file engine: one worker per
//!   shard, each independently decoding the *whole* file through a
//!   buffered [`TraceReader`]. Simple and exact, but the decode work is
//!   multiplied by the shard count.
//! * [`replay_file_stealing`] — the optimized file engine. On v2 traces
//!   the [chunk table](crate::table) turns decode embarrassingly
//!   parallel: N decode workers claim disjoint chunk *groups* (chunks
//!   decode independently — encoder state resets at chunk boundaries),
//!   decode them concurrently off the shared mmap (or per-worker file
//!   handles), and a turn-taking sequencer pushes the finished groups in
//!   stream order. Decoded events are *pre-sharded at decode time*:
//!   memory events are clipped to their owning address granules and
//!   routed only to the owning shard's queue, sync events to every
//!   queue. Each shard then replays its own slice plus the shared sync
//!   skeleton instead of scanning the full stream — the replay work per
//!   shard drops by roughly the shard count, independent of core count.
//!   v1 traces (no table) fall back to a single sequential decode
//!   producer feeding the same pre-sharded queues. Per-shard batch
//!   order is FIFO and group pushes are sequenced in stream order, so
//!   the verdict is exactly the sequential one regardless of worker
//!   count, decode-worker count, steal pattern, or batch size.

use crate::analyze::{
    merge_shard_races, owned_runs, required_threads, shard_worker, sync_free_segments, EngineKind,
    SHARD_GRANULE,
};
use crate::codec::{crc32, Decoder};
use crate::error::{Result, TraceError};
use crate::mmap::map_file;
use crate::reader::TraceReader;
use crate::table::{parse_table, read_table, ChunkEntry};
use clean_baselines::{FoundRace, TraceDetector};
use clean_core::TraceEvent;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Events per producer batch in [`replay_file_stealing`] — also the
/// chunk-group sizing target for parallel decode. Large enough to
/// amortize queue locking, small enough that per-shard backpressure
/// bounds memory at roughly `shards * QUEUE_CAP * BATCH_EVENTS` events.
const BATCH_EVENTS: usize = 64 * 1024;

/// Maximum batches buffered per shard queue before the producer blocks.
const QUEUE_CAP: usize = 8;

/// Counters describing how a parallel replay actually executed. The
/// race verdict never depends on these — they exist for benchmarks and
/// the CLI's reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Total events replayed (per engine; every shard sees the sync
    /// skeleton, so this counts the trace once).
    pub events: u64,
    /// Scheduling units issued: shard tasks for the in-memory engines,
    /// producer batches for the streaming file engine.
    pub batches: u64,
    /// Tasks executed by a worker other than their round-robin home.
    pub steals: u64,
    /// Whether the file engine read from an `mmap` view (`false` for
    /// in-memory engines and the buffered fallback).
    pub used_mmap: bool,
    /// Decode threads used by the streaming file engine (1 on the
    /// sequential fallback, 0 for the non-streaming engines).
    pub decode_workers: u64,
    /// Whether the streaming file engine decoded through the v2 chunk
    /// table (parallel decode) rather than the sequential scan.
    pub used_table: bool,
}

/// Result of one streaming pass over a trace file: the sizing facts the
/// file replay engines need up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceScan {
    /// Number of events in the trace.
    pub events: u64,
    /// Analysis thread slots required (highest tid observed, plus one).
    pub threads: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// Scans a trace file, counting events and required thread slots.
///
/// On v2 traces this is O(footer): the chunk table records both totals,
/// so no events are decoded. v1 traces fall back to a full sequential
/// decode.
///
/// The file engines take the slot count as a parameter instead of
/// rescanning so that benchmark comparisons between them measure replay
/// alone; call this once and pass [`TraceScan::threads`] to both.
///
/// # Errors
///
/// Propagates I/O and decode errors (including a corrupt v2 table).
pub fn scan_trace(path: impl AsRef<Path>) -> Result<TraceScan> {
    let path = path.as_ref();
    let bytes = std::fs::metadata(path)?.len();
    if let Some(table) = read_table(path)? {
        return Ok(TraceScan {
            events: table.total_events,
            threads: table.threads as usize,
            bytes,
        });
    }
    let mut events = 0u64;
    let mut max = 0u16;
    for ev in TraceReader::open(path)? {
        let ev = ev?;
        events += 1;
        max = max.max(ev.tid().raw());
        if let TraceEvent::Fork { child, .. } | TraceEvent::Join { child, .. } = ev {
            max = max.max(child.raw());
        }
    }
    Ok(TraceScan {
        events,
        threads: usize::from(max) + 1,
        bytes,
    })
}

/// Feeds one event to a shard's detector: sync events verbatim (the
/// shared skeleton), memory events clipped to the shard's owned address
/// granules. Streaming twin of [`shard_worker`]'s segment walk.
fn process_event(
    det: &mut Box<dyn TraceDetector + Send>,
    found: &mut Vec<(usize, FoundRace)>,
    idx: usize,
    ev: &TraceEvent,
    shard: usize,
    shards: usize,
) {
    match *ev {
        TraceEvent::Read { tid, addr, size } => {
            for (a, s) in owned_runs(addr, size, shard, shards) {
                let clipped = TraceEvent::Read {
                    tid,
                    addr: a,
                    size: s,
                };
                for race in det.process(&clipped) {
                    found.push((idx, race));
                }
            }
        }
        TraceEvent::Write { tid, addr, size } => {
            for (a, s) in owned_runs(addr, size, shard, shards) {
                let clipped = TraceEvent::Write {
                    tid,
                    addr: a,
                    size: s,
                };
                for race in det.process(&clipped) {
                    found.push((idx, race));
                }
            }
        }
        _ => {
            for race in det.process(ev) {
                found.push((idx, race));
            }
        }
    }
}

/// Routes one event into per-shard output lanes at decode time: memory
/// events are clipped to maximal runs of consecutive same-shard granules
/// and pushed only to the owning shards, sync events to every shard.
/// Produces per shard exactly the clipped events [`process_event`] would
/// feed that shard's detector, in the same order.
fn shard_event(ev: &TraceEvent, idx: usize, shards: usize, out: &mut [Vec<(usize, TraceEvent)>]) {
    let (addr, size) = match *ev {
        TraceEvent::Read { addr, size, .. } | TraceEvent::Write { addr, size, .. } => (addr, size),
        _ => {
            for lane in out.iter_mut() {
                lane.push((idx, *ev));
            }
            return;
        }
    };
    let first = addr / SHARD_GRANULE;
    let last = (addr + size - 1) / SHARD_GRANULE;
    let mut g = first;
    while g <= last {
        let shard = g % shards;
        // Extend over consecutive same-shard granules (only possible
        // when shards == 1, but stay general) — mirrors `owned_runs`.
        let mut end = g;
        while end < last && (end + 1) % shards == shard {
            end += 1;
        }
        let lo = addr.max(g * SHARD_GRANULE);
        let hi = (addr + size).min((end + 1) * SHARD_GRANULE);
        let clipped = match *ev {
            TraceEvent::Read { tid, .. } => TraceEvent::Read {
                tid,
                addr: lo,
                size: hi - lo,
            },
            TraceEvent::Write { tid, .. } => TraceEvent::Write {
                tid,
                addr: lo,
                size: hi - lo,
            },
            _ => unreachable!("memory event"),
        };
        out[shard].push((idx, clipped));
        g = end + 1;
    }
}

/// Replays an in-memory trace with `shards` address shards scheduled as
/// work-stealing tasks over `workers` threads. The verdict equals
/// [`replay_sequential`](crate::replay_sequential) for any shard/worker
/// combination; the returned [`ReplayStats`] describe the scheduling.
///
/// # Panics
///
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn replay_stealing(
    events: &[TraceEvent],
    kind: EngineKind,
    shards: usize,
    workers: usize,
) -> (Vec<FoundRace>, ReplayStats) {
    assert!(shards > 0, "need at least one shard");
    assert!(workers > 0, "need at least one worker");
    let threads = required_threads(events);
    let segments = sync_free_segments(events);
    // Shards dealt round-robin into per-worker lanes. A worker pops its
    // own lane from the front and steals from victims' backs, so an
    // owner and a thief never contend for the same end of a busy lane.
    let lanes: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for shard in 0..shards {
        lanes[shard % workers].lock().push_back(shard);
    }
    let steals = AtomicU64::new(0);
    let per_shard: Vec<Vec<(usize, FoundRace)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (lanes, steals, segments) = (&lanes, &steals, &segments);
                scope.spawn(move |_| {
                    let mut done = Vec::new();
                    loop {
                        let mut claimed = lanes[w].lock().pop_front();
                        if claimed.is_none() {
                            for v in 1..workers {
                                if let Some(s) = lanes[(w + v) % workers].lock().pop_back() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    claimed = Some(s);
                                    break;
                                }
                            }
                        }
                        let Some(shard) = claimed else { break };
                        done.push(shard_worker(events, segments, kind, threads, shard, shards));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stealing worker panicked"))
            .collect()
    })
    .expect("stealing scope panicked");
    let races = merge_shard_races(per_shard);
    let stats = ReplayStats {
        events: events.len() as u64,
        batches: shards as u64,
        steals: steals.load(Ordering::Relaxed),
        used_mmap: false,
        decode_workers: 0,
        used_table: false,
    };
    (races, stats)
}

/// The naive parallel file engine: one worker per shard, each decoding
/// the whole file through its own buffered [`TraceReader`]. `slots` is
/// the analysis thread capacity (see [`scan_trace`]).
///
/// Exact but decode-bound: the file is decoded `shards` times. Kept as
/// the honest baseline [`replay_file_stealing`] is measured against.
///
/// # Errors
///
/// Propagates I/O and decode errors from any worker.
///
/// # Panics
///
/// Panics if `shards == 0` or a worker thread panics.
pub fn replay_file_sharded(
    path: impl AsRef<Path>,
    kind: EngineKind,
    shards: usize,
    slots: usize,
) -> Result<(Vec<FoundRace>, ReplayStats)> {
    assert!(shards > 0, "need at least one shard");
    let path = path.as_ref();
    type ShardResult = Result<(Vec<(usize, FoundRace)>, u64)>;
    let results: Vec<ShardResult> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut det = kind.build(slots);
                    let mut found = Vec::new();
                    let mut idx = 0usize;
                    for ev in TraceReader::open(path)? {
                        process_event(&mut det, &mut found, idx, &ev?, shard, shards);
                        idx += 1;
                    }
                    Ok((found, idx as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("file shard worker panicked"))
            .collect()
    })
    .expect("file replay scope panicked");
    let mut per_shard = Vec::with_capacity(shards);
    let mut events = 0u64;
    for r in results {
        let (found, n) = r?;
        events = n;
        per_shard.push(found);
    }
    let stats = ReplayStats {
        events,
        batches: shards as u64,
        steals: 0,
        used_mmap: false,
        decode_workers: 0,
        used_table: false,
    };
    Ok((merge_shard_races(per_shard), stats))
}

/// One shard's slice of a producer batch: pre-clipped `(index, event)`
/// pairs ready to feed the shard's detector verbatim.
type ShardItems = Vec<(usize, TraceEvent)>;

/// A shard's analysis state. The `Mutex` wrapping it *is* the shard
/// claim: whichever worker holds it replays that shard's next batch.
struct ShardLane {
    det: Box<dyn TraceDetector + Send>,
    found: Vec<(usize, FoundRace)>,
}

/// Queue state shared between the producers and all workers.
struct PipeState {
    /// Per-shard FIFO of pending pre-sharded batches.
    queues: Vec<VecDeque<ShardItems>>,
    /// Producers finished (successfully or not); no more pushes coming.
    done: bool,
}

/// The streaming pipeline of [`replay_file_stealing`].
struct Pipeline {
    shards: usize,
    shared: Mutex<PipeState>,
    /// Signals workers: new batches queued, or `done` set.
    work: Condvar,
    /// Signals the producer: queue space freed.
    space: Condvar,
    claims: Vec<Mutex<ShardLane>>,
    steals: AtomicU64,
}

/// Turn-taking state for parallel decode: group `g`'s decoder may push
/// only once `turn == g`, so per-shard queue order equals stream order
/// even though groups decode concurrently and out of order.
struct Sequencer {
    /// Next unclaimed group index.
    next: AtomicUsize,
    /// Index of the group allowed to push now.
    turn: Mutex<usize>,
    /// Signals waiters: `turn` advanced or `failed` set.
    advanced: Condvar,
    /// A decoder hit an error: everyone drains out instead of waiting
    /// for a turn that will never come.
    failed: AtomicBool,
}

impl Pipeline {
    fn new(kind: EngineKind, slots: usize, shards: usize) -> Self {
        Pipeline {
            shards,
            shared: Mutex::new(PipeState {
                queues: (0..shards).map(|_| VecDeque::new()).collect(),
                done: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            claims: (0..shards)
                .map(|_| {
                    Mutex::new(ShardLane {
                        det: kind.build(slots),
                        found: Vec::new(),
                    })
                })
                .collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Sequential decode fallback (v1 traces): decodes the whole trace
    /// once in stream order, pre-sharding events into per-shard batches.
    /// Returns `(events, batches)` produced.
    fn produce_sequential<R: Read>(&self, reader: TraceReader<R>) -> Result<(u64, u64)> {
        let mut idx = 0usize;
        let mut in_group = 0usize;
        let mut batches = 0u64;
        let mut group: Vec<ShardItems> = (0..self.shards).map(|_| Vec::new()).collect();
        for ev in reader {
            shard_event(&ev?, idx, self.shards, &mut group);
            idx += 1;
            in_group += 1;
            if in_group == BATCH_EVENTS {
                let full =
                    std::mem::replace(&mut group, (0..self.shards).map(|_| Vec::new()).collect());
                self.push_group(full);
                batches += 1;
                in_group = 0;
            }
        }
        if in_group > 0 {
            self.push_group(group);
            batches += 1;
        }
        Ok((idx as u64, batches))
    }

    /// Queues one batch per shard, blocking while any queue is at
    /// capacity (backpressure bounds decoded-but-unreplayed memory).
    fn push_group(&self, group: Vec<ShardItems>) {
        let mut st = self.shared.lock();
        while st.queues.iter().any(|q| q.len() >= QUEUE_CAP) {
            self.space.wait(&mut st);
        }
        for (q, items) in st.queues.iter_mut().zip(group) {
            q.push_back(items);
        }
        drop(st);
        self.work.notify_all();
    }

    /// Marks the producers finished (even on error) so workers drain the
    /// queues and exit instead of waiting forever.
    fn finish(&self) {
        self.shared.lock().done = true;
        self.work.notify_all();
    }

    /// One parallel-decode worker: claim the next chunk group, decode
    /// and pre-shard it (concurrently with other decoders), then wait
    /// for this group's turn and push. Returns events decoded by this
    /// worker; the first decode error aborts every decoder.
    fn run_decoder(
        &self,
        source: Source<'_>,
        entries: &[ChunkEntry],
        groups: &[Range<usize>],
        seq: &Sequencer,
    ) -> Result<u64> {
        let mut handle = source.open()?;
        let mut events = 0u64;
        let mut scratch = Vec::new();
        loop {
            let g = seq.next.fetch_add(1, Ordering::Relaxed);
            if g >= groups.len() || seq.failed.load(Ordering::Relaxed) {
                return Ok(events);
            }
            let range = groups[g].clone();
            let decoded = decode_group(&mut handle, entries, range, self.shards, &mut scratch);
            let (group_items, n) = match decoded {
                Ok(ok) => ok,
                Err(e) => {
                    seq.failed.store(true, Ordering::Relaxed);
                    seq.advanced.notify_all();
                    return Err(e);
                }
            };
            {
                let mut turn = seq.turn.lock();
                while *turn != g {
                    if seq.failed.load(Ordering::Relaxed) {
                        return Ok(events);
                    }
                    seq.advanced.wait(&mut turn);
                }
            }
            // Push outside the turn lock: order is already guaranteed
            // (only this worker holds turn == g), and pushing may block
            // on queue backpressure.
            self.push_group(group_items);
            events += n;
            *seq.turn.lock() += 1;
            seq.advanced.notify_all();
        }
    }

    /// Worker loop: claim a shard with a pending batch (own shards
    /// first, then steals), replay the batch, repeat until the producer
    /// is done and every queue is drained.
    fn run_worker(&self, w: usize, workers: usize) {
        loop {
            let mut task = None;
            {
                let mut st = self.shared.lock();
                loop {
                    // Pass 0 scans this worker's round-robin home
                    // shards, pass 1 steals from the rest. `try_lock`
                    // both claims the shard and skips shards another
                    // worker is already replaying.
                    'scan: for pass in 0..2 {
                        for shard in 0..self.shards {
                            let home = shard % workers == w;
                            if home != (pass == 0) || st.queues[shard].is_empty() {
                                continue;
                            }
                            if let Some(lane) = self.claims[shard].try_lock() {
                                let items =
                                    st.queues[shard].pop_front().expect("checked non-empty");
                                task = Some((items, lane, pass == 1));
                                break 'scan;
                            }
                        }
                    }
                    if task.is_some() {
                        break;
                    }
                    if st.done && st.queues.iter().all(|q| q.is_empty()) {
                        drop(st);
                        // Wake parked siblings so they observe
                        // completion too.
                        self.work.notify_all();
                        return;
                    }
                    self.work.wait(&mut st);
                }
            }
            self.space.notify_one();
            let (items, mut lane, stolen) = task.expect("task set before loop exit");
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            let ShardLane { det, found } = &mut *lane;
            for (idx, ev) in &items {
                for race in det.process(ev) {
                    found.push((*idx, race));
                }
            }
        }
    }
}

/// Where decode workers read chunk bytes from.
#[derive(Clone, Copy)]
enum Source<'a> {
    /// The whole stream is mapped: slice directly.
    Mapped(&'a [u8]),
    /// No mapping: each worker opens its own file handle.
    Disk(&'a Path),
}

enum SourceHandle<'a> {
    Mapped(&'a [u8]),
    Disk(File),
}

impl<'a> Source<'a> {
    fn open(self) -> Result<SourceHandle<'a>> {
        Ok(match self {
            Source::Mapped(bytes) => SourceHandle::Mapped(bytes),
            Source::Disk(path) => SourceHandle::Disk(File::open(path)?),
        })
    }
}

impl SourceHandle<'_> {
    /// The contiguous byte range `[start, end)` of the stream, read via
    /// `scratch` on the disk path.
    fn bytes<'b>(&'b mut self, start: u64, end: u64, scratch: &'b mut Vec<u8>) -> Result<&'b [u8]> {
        match self {
            SourceHandle::Mapped(bytes) => Ok(&bytes[start as usize..end as usize]),
            SourceHandle::Disk(file) => {
                scratch.resize((end - start) as usize, 0);
                file.seek(SeekFrom::Start(start))?;
                file.read_exact(scratch)?;
                Ok(scratch)
            }
        }
    }
}

/// Decodes one contiguous chunk group into pre-sharded batches,
/// verifying each chunk's frame against its table entry and its CRC.
fn decode_group(
    handle: &mut SourceHandle<'_>,
    entries: &[ChunkEntry],
    range: Range<usize>,
    shards: usize,
    scratch: &mut Vec<u8>,
) -> Result<(Vec<ShardItems>, u64)> {
    let base = entries[range.start].offset;
    let end = entries[range.end - 1].end_offset();
    let bytes = handle.bytes(base, end, scratch)?;
    let mut out: Vec<ShardItems> = (0..shards).map(|_| Vec::new()).collect();
    let mut events = 0u64;
    for ci in range {
        let e = &entries[ci];
        let chunk = ci as u64;
        let rel = (e.offset - base) as usize;
        let frame = &bytes[rel..rel + 12];
        let payload = &bytes[rel + 12..rel + 12 + e.payload_len as usize];
        let payload_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        let frame_events = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes"));
        if payload_len != e.payload_len || frame_events != e.events {
            return Err(TraceError::Corrupt {
                chunk,
                reason: "chunk frame disagrees with the chunk table",
            });
        }
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(TraceError::ChecksumMismatch {
                chunk,
                stored: stored_crc,
                computed,
            });
        }
        let mut dec = Decoder::new();
        let mut input = payload;
        for j in 0..u64::from(e.events) {
            let ev = dec
                .decode(&mut input)
                .map_err(|reason| TraceError::Corrupt { chunk, reason })?;
            shard_event(&ev, (e.first_event + j) as usize, shards, &mut out);
        }
        if !input.is_empty() {
            return Err(TraceError::Corrupt {
                chunk,
                reason: "payload longer than its event count",
            });
        }
        events += u64::from(e.events);
    }
    Ok((out, events))
}

/// Splits the chunk list into contiguous groups of roughly
/// [`BATCH_EVENTS`] events — the unit of parallel-decode claiming.
fn chunk_groups(entries: &[ChunkEntry], target_events: usize) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, e) in entries.iter().enumerate() {
        acc += e.events as usize;
        if acc >= target_events {
            groups.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < entries.len() {
        groups.push(start..entries.len());
    }
    groups
}

/// The optimized parallel file engine with the default decode-worker
/// count (equal to `workers`). See [`replay_file_stealing_with`].
///
/// # Errors
///
/// Propagates I/O and decode errors.
///
/// # Panics
///
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn replay_file_stealing(
    path: impl AsRef<Path>,
    kind: EngineKind,
    shards: usize,
    workers: usize,
    slots: usize,
) -> Result<(Vec<FoundRace>, ReplayStats)> {
    replay_file_stealing_with(path, kind, shards, workers, workers, slots)
}

/// The optimized parallel file engine: on v2 traces, `decode_workers`
/// threads claim disjoint chunk groups via the chunk table and decode
/// them concurrently — off a shared mmap view when available, per-worker
/// file handles otherwise — pre-sharding events into bounded per-shard
/// queues replayed by `workers` work-stealing threads. v1 traces (no
/// table) fall back to one sequential decode producer feeding the same
/// queues. `slots` is the analysis thread capacity (see [`scan_trace`]).
///
/// Exactly matches [`replay_file_sharded`] and the in-memory engines for
/// any shard/worker/decode-worker combination: group pushes are
/// sequenced in stream order, batches are FIFO per shard, and a shard's
/// claim lock serializes its replay, so every shard observes exactly the
/// clipped event stream of the sequential engine.
///
/// A corrupt or truncated v2 chunk table yields a clean
/// [`TraceError::BadTable`] — never a verdict.
///
/// # Errors
///
/// Propagates I/O and decode errors.
///
/// # Panics
///
/// Panics if `shards == 0`, `workers == 0`, `decode_workers == 0`, or a
/// worker thread panics.
pub fn replay_file_stealing_with(
    path: impl AsRef<Path>,
    kind: EngineKind,
    shards: usize,
    workers: usize,
    decode_workers: usize,
    slots: usize,
) -> Result<(Vec<FoundRace>, ReplayStats)> {
    assert!(shards > 0, "need at least one shard");
    assert!(workers > 0, "need at least one worker");
    assert!(decode_workers > 0, "need at least one decode worker");
    let path = path.as_ref();
    let mapped = map_file(path)?;
    let table = match &mapped {
        Some(m) => parse_table(m.bytes())?,
        None => read_table(path)?,
    };
    let pipe = Pipeline::new(kind, slots, shards);
    let produced: Result<(u64, u64, u64)> = crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let pipe = &pipe;
            scope.spawn(move |_| pipe.run_worker(w, workers));
        }
        let result = match &table {
            Some(table) if !table.entries.is_empty() => {
                let entries = &table.entries[..];
                let groups = chunk_groups(entries, BATCH_EVENTS);
                let decoders = decode_workers.min(groups.len());
                let source = match &mapped {
                    Some(m) => Source::Mapped(m.bytes()),
                    None => Source::Disk(path),
                };
                let seq = Sequencer {
                    next: AtomicUsize::new(0),
                    turn: Mutex::new(0),
                    advanced: Condvar::new(),
                    failed: AtomicBool::new(false),
                };
                let (groups, seq, pipe) = (&groups, &seq, &pipe);
                // Nested scope: decoder borrows (`groups`, `seq`) are
                // locals of this arm, so they cannot ride the outer
                // worker scope.
                let first_err = crossbeam::thread::scope(|dscope| {
                    let handles: Vec<_> = (0..decoders)
                        .map(|_| {
                            dscope.spawn(move |_| pipe.run_decoder(source, entries, groups, seq))
                        })
                        .collect();
                    let mut first_err = None;
                    for h in handles {
                        if let Err(e) = h.join().expect("decode worker panicked") {
                            first_err.get_or_insert(e);
                        }
                    }
                    first_err
                })
                .expect("decode scope panicked");
                match first_err {
                    Some(e) => Err(e),
                    None => Ok((table.total_events, groups.len() as u64, decoders as u64)),
                }
            }
            Some(_) => Ok((0, 0, 0)), // empty v2 trace: nothing to decode
            None => {
                // v1: sequential scan fallback, still pre-sharded.
                let r = match &mapped {
                    Some(m) => TraceReader::new(m.bytes()).and_then(|r| pipe.produce_sequential(r)),
                    None => TraceReader::open(path).and_then(|r| pipe.produce_sequential(r)),
                };
                r.map(|(events, batches)| (events, batches, 1))
            }
        };
        // Even on a decode error: workers must drain and exit before
        // the scope can join them.
        pipe.finish();
        result
    })
    .expect("streaming replay scope panicked");
    let (events, batches, decoders) = produced?;
    let per_shard: Vec<_> = pipe
        .claims
        .into_iter()
        .map(|lane| lane.into_inner().found)
        .collect();
    let stats = ReplayStats {
        events,
        batches,
        steals: pipe.steals.load(Ordering::Relaxed),
        used_mmap: mapped.is_some(),
        decode_workers: decoders,
        used_table: table.is_some(),
    };
    Ok((merge_shard_races(per_shard), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::replay_sequential;
    use crate::writer::{write_trace, write_trace_v1};
    use clean_core::ThreadId;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn w(tid: u16, addr: usize, size: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size,
        }
    }

    /// Forks, disjoint bulk writes, a locked region, and two genuine
    /// races (one against plain writes, one against a locked write with
    /// no release/acquire pairing).
    fn mixed_trace() -> Vec<TraceEvent> {
        let mut ev = vec![
            TraceEvent::Fork {
                parent: t(0),
                child: t(1),
            },
            TraceEvent::Fork {
                parent: t(0),
                child: t(2),
            },
        ];
        for i in 0..200 {
            ev.push(w(0, 64 * (i % 5), 4));
            ev.push(w(1, 4096 + 64 * (i % 5), 4));
        }
        ev.push(TraceEvent::Acquire { tid: t(1), lock: 9 });
        ev.push(w(1, 1 << 20, 8));
        ev.push(TraceEvent::Release { tid: t(1), lock: 9 });
        ev.push(w(2, 64, 4));
        ev.push(w(2, 1 << 20, 8));
        ev
    }

    #[test]
    fn stealing_matches_sequential_for_all_schedules() {
        let events = mixed_trace();
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            assert!(!seq.is_empty(), "{kind} found no races");
            for shards in [1, 2, 3, 8] {
                for workers in [1, 2, 3] {
                    let (races, stats) = replay_stealing(&events, kind, shards, workers);
                    assert_eq!(races, seq, "{kind}/{shards} shards/{workers} workers");
                    assert_eq!(stats.events, events.len() as u64);
                }
            }
        }
    }

    #[test]
    fn file_engines_agree_with_sequential() {
        let mut path = std::env::temp_dir();
        path.push(format!("clean-trace-stealing-{}.cltr", std::process::id()));
        let events = mixed_trace();
        write_trace(&path, &events).unwrap();

        let scan = scan_trace(&path).unwrap();
        assert_eq!(scan.events, events.len() as u64);
        assert_eq!(scan.threads, 3);
        assert!(scan.bytes > 0);

        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            for shards in [1, 3, 8] {
                let (naive, nstats) =
                    replay_file_sharded(&path, kind, shards, scan.threads).unwrap();
                assert_eq!(naive, seq, "naive {kind}/{shards}");
                assert_eq!(nstats.events, events.len() as u64);
                for workers in [1, 2, 4] {
                    let (fast, fstats) =
                        replay_file_stealing(&path, kind, shards, workers, scan.threads).unwrap();
                    assert_eq!(fast, seq, "stealing {kind}/{shards}/{workers}");
                    assert_eq!(fstats.events, events.len() as u64);
                    assert!(fstats.batches >= 1);
                    assert!(fstats.used_table, "v2 trace should decode via the table");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_decode_agrees_across_decode_worker_counts() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "clean-trace-stealing-pd-{}.cltr",
            std::process::id()
        ));
        let events = mixed_trace();
        // Tiny chunks force many chunk groups so decode parallelism and
        // the sequencer actually engage on a small trace.
        let mut wtr = crate::TraceWriter::create(&path).unwrap().chunk_bytes(64);
        for e in &events {
            wtr.write_event(e).unwrap();
        }
        wtr.finish().unwrap();
        let scan = scan_trace(&path).unwrap();
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            for decode_workers in [1, 2, 4, 7] {
                let (races, stats) =
                    replay_file_stealing_with(&path, kind, 4, 2, decode_workers, scan.threads)
                        .unwrap();
                assert_eq!(races, seq, "{kind}/decode {decode_workers}");
                assert_eq!(stats.events, events.len() as u64);
                assert!(stats.used_table);
                assert!(stats.decode_workers >= 1);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_traces_replay_via_the_sequential_fallback() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "clean-trace-stealing-v1-{}.cltr",
            std::process::id()
        ));
        let events = mixed_trace();
        write_trace_v1(&path, &events).unwrap();
        let scan = scan_trace(&path).unwrap();
        assert_eq!(scan.events, events.len() as u64);
        for kind in EngineKind::ALL {
            let seq = replay_sequential(&events, kind);
            let (races, stats) = replay_file_stealing(&path, kind, 4, 2, scan.threads).unwrap();
            assert_eq!(races, seq, "v1 {kind}");
            assert!(!stats.used_table);
            assert_eq!(stats.decode_workers, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_of_missing_file_errors() {
        assert!(scan_trace("/nonexistent/clean-trace.cltr").is_err());
    }
}
