//! Property-based agreement tests between the detector engines:
//!
//! * FastTrack and the classic two-vector-clock detector are both precise
//!   and must agree on whether a trace is racy at all;
//! * every trace on which CLEAN raises also makes the full detectors
//!   raise (CLEAN's WAW/RAW set is a subset of all races);
//! * on WAW/RAW-free traces CLEAN never reports anything, even when WAR
//!   races are present.

use clean_baselines::{
    run_detector, CleanEngine, FastTrack, FullRaceKind, TraceEvent, TsanLike, VcFullDetector,
};
use clean_core::ThreadId;
use proptest::prelude::*;

const THREADS: u16 = 4;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let tid = 0u16..THREADS;
    prop_oneof![
        (tid.clone(), 0usize..32, 1usize..=4).prop_map(|(t, a, s)| TraceEvent::Read {
            tid: ThreadId::new(t),
            addr: a,
            size: s,
        }),
        (tid.clone(), 0usize..32, 1usize..=4).prop_map(|(t, a, s)| TraceEvent::Write {
            tid: ThreadId::new(t),
            addr: a,
            size: s,
        }),
        (tid.clone(), 0u32..3).prop_map(|(t, l)| TraceEvent::Acquire {
            tid: ThreadId::new(t),
            lock: l,
        }),
        (tid, 0u32..3).prop_map(|(t, l)| TraceEvent::Release {
            tid: ThreadId::new(t),
            lock: l,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn precise_detectors_agree_on_raciness(
        trace in proptest::collection::vec(arb_event(), 1..80),
    ) {
        let mut ft = FastTrack::new(THREADS as usize);
        let mut vc = VcFullDetector::new(THREADS as usize);
        let f = !run_detector(&mut ft, &trace).is_empty();
        let v = !run_detector(&mut vc, &trace).is_empty();
        prop_assert_eq!(f, v, "precise detectors disagreed");
    }

    #[test]
    fn clean_races_imply_full_detector_races(
        trace in proptest::collection::vec(arb_event(), 1..80),
    ) {
        let mut clean = CleanEngine::new(THREADS as usize);
        let mut ft = FastTrack::new(THREADS as usize);
        let c = run_detector(&mut clean, &trace);
        let f = run_detector(&mut ft, &trace);
        if !c.is_empty() {
            prop_assert!(!f.is_empty(), "CLEAN found {:?} but FastTrack found none", c);
        }
        // And CLEAN never reports a WAR.
        prop_assert!(c.iter().all(|r| r.kind != FullRaceKind::War));
    }

    #[test]
    fn tsan_never_reports_on_clean_and_fasttrack_free_traces(
        trace in proptest::collection::vec(arb_event(), 1..60),
    ) {
        // TSan-like is imprecise by omission (evictions) but its
        // happens-before logic is the same: it must not report a race on
        // traces the precise detectors consider race-free (no false
        // positives beyond precision of the shared hb model).
        let mut ft = FastTrack::new(THREADS as usize);
        if run_detector(&mut ft, &trace).is_empty() {
            let mut tsan = TsanLike::new(THREADS as usize);
            let t = run_detector(&mut tsan, &trace);
            prop_assert!(t.is_empty(), "tsan false positive: {:?}", t);
        }
    }

    #[test]
    fn single_thread_traces_are_race_free(
        ops in proptest::collection::vec((0usize..64, 1usize..=8, prop::bool::ANY), 1..60),
    ) {
        let trace: Vec<TraceEvent> = ops
            .into_iter()
            .map(|(addr, size, w)| {
                if w {
                    TraceEvent::Write { tid: ThreadId::new(0), addr, size }
                } else {
                    TraceEvent::Read { tid: ThreadId::new(0), addr, size }
                }
            })
            .collect();
        let mut clean = CleanEngine::new(1);
        prop_assert!(run_detector(&mut clean, &trace).is_empty());
        let mut ft = FastTrack::new(1);
        prop_assert!(run_detector(&mut ft, &trace).is_empty());
        let mut vc = VcFullDetector::new(1);
        prop_assert!(run_detector(&mut vc, &trace).is_empty());
        let mut ts = TsanLike::new(1);
        prop_assert!(run_detector(&mut ts, &trace).is_empty());
    }

    #[test]
    fn fully_locked_traces_are_race_free(
        ops in proptest::collection::vec(
            (0u16..THREADS, 0usize..16, prop::bool::ANY), 1..50),
    ) {
        // Every access wrapped in the same global lock: no detector may
        // report anything.
        let mut trace = Vec::new();
        for (t, addr, w) in ops {
            let tid = ThreadId::new(t);
            trace.push(TraceEvent::Acquire { tid, lock: 0 });
            trace.push(if w {
                TraceEvent::Write { tid, addr, size: 4 }
            } else {
                TraceEvent::Read { tid, addr, size: 4 }
            });
            trace.push(TraceEvent::Release { tid, lock: 0 });
        }
        let mut clean = CleanEngine::new(THREADS as usize);
        let mut ft = FastTrack::new(THREADS as usize);
        let mut vc = VcFullDetector::new(THREADS as usize);
        let mut ts = TsanLike::new(THREADS as usize);
        prop_assert!(run_detector(&mut clean, &trace).is_empty());
        prop_assert!(run_detector(&mut ft, &trace).is_empty());
        prop_assert!(run_detector(&mut vc, &trace).is_empty());
        prop_assert!(run_detector(&mut ts, &trace).is_empty());
    }
}
