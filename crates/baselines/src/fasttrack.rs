//! FastTrack (Flanagan & Freund, PLDI 2009; Section 2.3 of the CLEAN
//! paper): the full precise detector CLEAN simplifies.
//!
//! FastTrack keeps, per location, a last-write *epoch* plus an adaptive
//! read side: a single read epoch while reads are totally ordered,
//! inflated to a full read vector clock once concurrent reads appear.
//! Detecting WAR races requires comparing a write against that full read
//! vector clock — `n` clock comparisons — which is exactly the cost CLEAN
//! eliminates by not detecting WAR.

use crate::api::{FoundRace, FullRaceKind, TraceDetector, TraceEvent};
use crate::hb::HbState;
use clean_core::{Epoch, EpochLayout, ThreadId, VectorClock};
use std::collections::HashMap;

/// Adaptive read metadata of one location.
#[derive(Debug, Clone)]
enum ReadState {
    /// All reads so far are totally ordered: remember only the last.
    Epoch(Epoch),
    /// Concurrent reads exist: full per-thread read clocks.
    Clock(VectorClock),
}

#[derive(Debug, Clone)]
struct Cell {
    write: Epoch,
    read: ReadState,
}

/// The FastTrack precise detector (WAW + RAW + WAR).
///
/// # Examples
///
/// ```
/// use clean_baselines::{FastTrack, TraceDetector, TraceEvent, FullRaceKind, run_detector};
/// use clean_core::ThreadId;
///
/// let mut det = FastTrack::new(2);
/// // WAR race: CLEAN misses it by design, FastTrack reports it.
/// let races = run_detector(&mut det, &[
///     TraceEvent::Read { tid: ThreadId::new(0), addr: 0, size: 1 },
///     TraceEvent::Write { tid: ThreadId::new(1), addr: 0, size: 1 },
/// ]);
/// assert_eq!(races[0].kind, FullRaceKind::War);
/// ```
#[derive(Debug)]
pub struct FastTrack {
    hb: HbState,
    cells: HashMap<usize, Cell>,
    comparisons: u64,
    read_vc_inflations: u64,
}

impl FastTrack {
    /// Creates a detector for traces with up to `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        FastTrack {
            hb: HbState::new(num_threads, EpochLayout::paper_default()),
            cells: HashMap::new(),
            comparisons: 0,
            read_vc_inflations: 0,
        }
    }

    /// Clock comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Locations whose read metadata was inflated to a full vector clock.
    pub fn read_vc_inflations(&self) -> u64 {
        self.read_vc_inflations
    }

    fn on_read(&mut self, tid: ThreadId, addr: usize) -> Option<FoundRace> {
        let layout = self.hb.layout();
        let n = self.hb.num_threads();
        let my_epoch = self.hb.epoch(tid);
        let vc_snapshot = self.hb.vc(tid).clone();
        let cell = self.cells.entry(addr).or_insert_with(|| Cell {
            write: Epoch::ZERO,
            read: ReadState::Epoch(Epoch::ZERO),
        });

        // Write-read race check (single comparison, like CLEAN).
        self.comparisons += 1;
        let race = if vc_snapshot.races_with(cell.write) {
            Some(FoundRace {
                kind: FullRaceKind::Raw,
                addr,
                current: tid,
                previous: layout.tid(cell.write),
            })
        } else {
            None
        };

        // Update read metadata (the FastTrack adaptive rules).
        match &mut cell.read {
            ReadState::Epoch(e) => {
                self.comparisons += 1;
                if *e == Epoch::ZERO || !vc_snapshot.races_with(*e) {
                    // Previous read happens-before us: stay in epoch mode.
                    *e = my_epoch;
                } else {
                    // Concurrent reads: inflate to a full read clock.
                    let mut rvc = VectorClock::new(n, layout);
                    let prev = *e;
                    rvc.set_clock(layout.tid(prev), layout.clock(prev));
                    rvc.set_clock(tid, layout.clock(my_epoch));
                    cell.read = ReadState::Clock(rvc);
                    self.read_vc_inflations += 1;
                }
            }
            ReadState::Clock(rvc) => {
                rvc.set_clock(tid, layout.clock(my_epoch));
            }
        }
        race
    }

    fn on_write(&mut self, tid: ThreadId, addr: usize) -> Option<FoundRace> {
        let layout = self.hb.layout();
        let my_epoch = self.hb.epoch(tid);
        let vc_snapshot = self.hb.vc(tid).clone();
        let n = self.hb.num_threads();
        let cell = self.cells.entry(addr).or_insert_with(|| Cell {
            write: Epoch::ZERO,
            read: ReadState::Epoch(Epoch::ZERO),
        });

        // Write-write check (single comparison).
        self.comparisons += 1;
        let mut race = if vc_snapshot.races_with(cell.write) {
            Some(FoundRace {
                kind: FullRaceKind::Waw,
                addr,
                current: tid,
                previous: layout.tid(cell.write),
            })
        } else {
            None
        };

        // Read-write (WAR) check — the expensive one.
        match &cell.read {
            ReadState::Epoch(e) => {
                self.comparisons += 1;
                if *e != Epoch::ZERO && vc_snapshot.races_with(*e) {
                    race = race.or(Some(FoundRace {
                        kind: FullRaceKind::War,
                        addr,
                        current: tid,
                        previous: layout.tid(*e),
                    }));
                }
            }
            ReadState::Clock(rvc) => {
                // Full O(n) comparison: any read not ≤ our clock races.
                self.comparisons += n as u64;
                for i in 0..n {
                    let rt = ThreadId::new(i as u16);
                    let e = rvc.element(rt);
                    if layout.clock(e) != 0 && vc_snapshot.races_with(e) {
                        race = race.or(Some(FoundRace {
                            kind: FullRaceKind::War,
                            addr,
                            current: tid,
                            previous: rt,
                        }));
                        break;
                    }
                }
            }
        }

        cell.write = my_epoch;
        cell.read = ReadState::Epoch(Epoch::ZERO);
        race
    }
}

impl TraceDetector for FastTrack {
    fn name(&self) -> &'static str {
        "fasttrack"
    }

    fn process(&mut self, event: &TraceEvent) -> Vec<FoundRace> {
        if self.hb.apply_sync(event) {
            return Vec::new();
        }
        let mut races = Vec::new();
        match *event {
            TraceEvent::Read { tid, addr, size } => {
                for a in addr..addr + size {
                    if let Some(r) = self.on_read(tid, a) {
                        races.push(r);
                        break;
                    }
                }
            }
            TraceEvent::Write { tid, addr, size } => {
                for a in addr..addr + size {
                    if let Some(r) = self.on_write(tid, a) {
                        races.push(r);
                        break;
                    }
                }
            }
            _ => unreachable!("sync handled above"),
        }
        races
    }

    fn reset(&mut self) {
        self.hb.reset();
        self.cells.clear();
        self.comparisons = 0;
        self.read_vc_inflations = 0;
    }

    fn metadata_bytes(&self) -> usize {
        let per_cell: usize = self
            .cells
            .values()
            .map(|c| {
                4 + match &c.read {
                    ReadState::Epoch(_) => 4,
                    ReadState::Clock(vc) => vc.len() * 4,
                }
            })
            .sum();
        self.hb.metadata_bytes() + per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_detector;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn read(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Read {
            tid: t(tid),
            addr,
            size: 1,
        }
    }
    fn write(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size: 1,
        }
    }

    #[test]
    fn detects_all_three_race_kinds() {
        let mut d = FastTrack::new(3);
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::Waw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), read(1, 0)])[0].kind,
            FullRaceKind::Raw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[read(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::War
        );
    }

    #[test]
    fn ordered_accesses_race_free() {
        let mut d = FastTrack::new(2);
        let races = run_detector(
            &mut d,
            &[
                write(0, 0),
                TraceEvent::Release { tid: t(0), lock: 1 },
                TraceEvent::Acquire { tid: t(1), lock: 1 },
                read(1, 0),
                write(1, 0),
            ],
        );
        assert!(races.is_empty());
    }

    #[test]
    fn concurrent_reads_inflate_then_war_detected_against_nonlast_read() {
        // The shared-read case FastTrack's epochs cannot summarize:
        // t0 and t1 read concurrently; t1's read is last, but the write
        // by t2 races with *t0's* read (t2 synchronized only with t1).
        let mut d = FastTrack::new(3);
        let races = run_detector(
            &mut d,
            &[
                read(0, 0),
                read(1, 0),
                TraceEvent::Release { tid: t(1), lock: 7 },
                TraceEvent::Acquire { tid: t(2), lock: 7 },
                write(2, 0),
            ],
        );
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, FullRaceKind::War);
        assert_eq!(races[0].previous, t(0));
        assert!(d.read_vc_inflations() >= 1);
    }

    #[test]
    fn war_costs_n_comparisons_after_inflation() {
        let mut d = FastTrack::new(8);
        let _ = run_detector(&mut d, &[read(0, 0), read(1, 0)]);
        let before = d.comparisons();
        let _ = d.process(&write(2, 0));
        // 1 (WAW) + n (read VC scan)
        assert_eq!(d.comparisons() - before, 1 + 8);
    }

    #[test]
    fn same_epoch_reads_stay_compact() {
        let mut d = FastTrack::new(4);
        // Same thread reads repeatedly: never inflates.
        let _ = run_detector(&mut d, &[read(0, 0), read(0, 0), read(0, 0)]);
        assert_eq!(d.read_vc_inflations(), 0);
    }
}
