//! Common interface for the baseline detectors CLEAN is compared against
//! (Sections 2.3 and 7): a detector is an analysis engine that consumes a
//! serialized event stream — the standard model for comparing detection
//! algorithms' precision and per-access cost. The event type itself lives
//! in `clean-core` ([`TraceEvent`]) so the CLEAN runtime can record live
//! executions in the same format.

use clean_core::ThreadId;
use core::fmt;

pub use clean_core::{LockId, TraceEvent};

/// The race class reported by a baseline detector. Unlike
/// [`clean_core::RaceKind`], this includes WAR — full detectors find it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FullRaceKind {
    /// Write-after-write.
    Waw,
    /// Read-after-write.
    Raw,
    /// Write-after-read — the class CLEAN deliberately does not detect.
    War,
}

impl fmt::Display for FullRaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FullRaceKind::Waw => "WAW",
            FullRaceKind::Raw => "RAW",
            FullRaceKind::War => "WAR",
        })
    }
}

/// A race reported by a baseline detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoundRace {
    /// The race class.
    pub kind: FullRaceKind,
    /// First racy byte address.
    pub addr: usize,
    /// Thread performing the current access.
    pub current: ThreadId,
    /// Thread that performed the earlier, conflicting access.
    pub previous: ThreadId,
}

/// A race-detection analysis engine consuming a serialized trace.
///
/// Engines keep reporting after the first race (they do not stop the
/// "execution"); the experiments compare the *sets* of races found.
pub trait TraceDetector {
    /// Human-readable detector name.
    fn name(&self) -> &'static str;

    /// Processes one event; returns the races this event completes.
    fn process(&mut self, event: &TraceEvent) -> Vec<FoundRace>;

    /// Clears all analysis state.
    fn reset(&mut self);

    /// Approximate resident metadata size in bytes (for the memory
    /// overhead comparisons of Section 4.6).
    fn metadata_bytes(&self) -> usize;
}

/// Runs a detector over a whole trace, collecting every reported race.
pub fn run_detector<D: TraceDetector + ?Sized>(
    detector: &mut D,
    trace: &[TraceEvent],
) -> Vec<FoundRace> {
    let mut races = Vec::new();
    for e in trace {
        races.extend(detector.process(e));
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_kind_display() {
        assert_eq!(FullRaceKind::Waw.to_string(), "WAW");
        assert_eq!(FullRaceKind::Raw.to_string(), "RAW");
        assert_eq!(FullRaceKind::War.to_string(), "WAR");
    }
}
