//! # clean-baselines
//!
//! The race detectors CLEAN is evaluated against (Sections 2.3, 6.2.1 and
//! 7 of the paper), implemented from scratch as trace-analysis engines
//! behind one [`TraceDetector`] interface:
//!
//! * [`CleanEngine`] — CLEAN's WAW/RAW-only check (one epoch per byte, one
//!   comparison per access),
//! * [`FastTrack`] — the full precise detector (adaptive read metadata,
//!   O(n) WAR checks after read sharing),
//! * [`VcFullDetector`] — the classic two-vector-clocks-per-location
//!   detector (O(n) everywhere),
//! * [`TsanLike`] — a ThreadSanitizer-style imprecise detector (4 shadow
//!   cells per 8-byte granule; can miss races).
//!
//! The experiments use these to reproduce the paper's qualitative claims:
//! CLEAN performs the fewest comparisons and keeps the smallest, most
//! regular metadata, FastTrack additionally finds WAR races at the cost of
//! read vector clocks, and TSan-style eviction misses races that CLEAN's
//! fixed-layout epochs retain.
//!
//! # Example
//!
//! ```
//! use clean_baselines::*;
//! use clean_core::ThreadId;
//!
//! let trace = vec![
//!     TraceEvent::Read  { tid: ThreadId::new(0), addr: 0, size: 4 },
//!     TraceEvent::Write { tid: ThreadId::new(1), addr: 0, size: 4 },
//! ];
//! // A WAR race: FastTrack reports it, CLEAN deliberately does not.
//! let mut ft = FastTrack::new(2);
//! let mut clean = CleanEngine::new(2);
//! assert_eq!(run_detector(&mut ft, &trace).len(), 1);
//! assert_eq!(run_detector(&mut clean, &trace).len(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod clean_engine;
mod fasttrack;
mod hb;
mod tsanlike;
mod vcfull;

pub use api::{run_detector, FoundRace, FullRaceKind, LockId, TraceDetector, TraceEvent};
pub use clean_engine::CleanEngine;
pub use fasttrack::FastTrack;
pub use tsanlike::{TsanLike, GRANULE, SHADOW_CELLS};
pub use vcfull::VcFullDetector;
