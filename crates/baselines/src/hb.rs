//! Shared happens-before bookkeeping for the baseline engines: thread and
//! lock vector clocks updated on synchronization events, exactly as in
//! standard vector-clock race detectors (Section 2.3, [48]).

use crate::api::{LockId, TraceEvent};
use clean_core::{Epoch, EpochLayout, ThreadId, VectorClock};
use std::collections::HashMap;

/// Thread/lock vector-clock state driven by a serialized trace.
#[derive(Debug, Clone)]
pub(crate) struct HbState {
    layout: EpochLayout,
    threads: Vec<VectorClock>,
    locks: HashMap<LockId, VectorClock>,
    n: usize,
}

impl HbState {
    pub(crate) fn new(num_threads: usize, layout: EpochLayout) -> Self {
        let mut threads = Vec::with_capacity(num_threads);
        for i in 0..num_threads {
            let mut vc = VectorClock::new(num_threads, layout);
            // Every thread starts its first SFR at clock 1 so initial
            // writes are distinguishable from the zero epoch.
            vc.increment(ThreadId::new(i as u16)).expect("clock 1 fits");
            threads.push(vc);
        }
        HbState {
            layout,
            threads,
            locks: HashMap::new(),
            n: num_threads,
        }
    }

    pub(crate) fn layout(&self) -> EpochLayout {
        self.layout
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.n
    }

    pub(crate) fn vc(&self, tid: ThreadId) -> &VectorClock {
        &self.threads[tid.index()]
    }

    /// The epoch a write by `tid` publishes now.
    pub(crate) fn epoch(&self, tid: ThreadId) -> Epoch {
        self.threads[tid.index()].element(tid)
    }

    /// Applies a synchronization event; returns `false` for memory events
    /// (which the engines handle themselves).
    pub(crate) fn apply_sync(&mut self, event: &TraceEvent) -> bool {
        match *event {
            TraceEvent::Acquire { tid, lock } => {
                if let Some(l) = self.locks.get(&lock) {
                    self.threads[tid.index()].join(l);
                }
                true
            }
            TraceEvent::Release { tid, lock } => {
                let t = &mut self.threads[tid.index()];
                self.locks
                    .entry(lock)
                    .or_insert_with(|| VectorClock::new(self.n, self.layout))
                    .join(t);
                t.increment(tid).expect("trace clocks stay in range");
                true
            }
            TraceEvent::Fork { parent, child } => {
                let pvc = self.threads[parent.index()].clone();
                let c = &mut self.threads[child.index()];
                c.join(&pvc);
                c.increment(child).expect("trace clocks stay in range");
                self.threads[parent.index()]
                    .increment(parent)
                    .expect("trace clocks stay in range");
                true
            }
            TraceEvent::Join { parent, child } => {
                let cvc = self.threads[child.index()].clone();
                let p = &mut self.threads[parent.index()];
                p.join(&cvc);
                p.increment(parent).expect("trace clocks stay in range");
                true
            }
            TraceEvent::Read { .. } | TraceEvent::Write { .. } => false,
        }
    }

    pub(crate) fn reset(&mut self) {
        *self = HbState::new(self.n, self.layout);
    }

    pub(crate) fn metadata_bytes(&self) -> usize {
        (self.threads.len() + self.locks.len()) * self.n * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_joins_release() {
        let mut hb = HbState::new(2, EpochLayout::paper_default());
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let e0 = hb.epoch(t0);
        assert!(hb.vc(t1).races_with(e0), "initially unordered");
        hb.apply_sync(&TraceEvent::Release { tid: t0, lock: 1 });
        hb.apply_sync(&TraceEvent::Acquire { tid: t1, lock: 1 });
        assert!(!hb.vc(t1).races_with(e0), "ordered through the lock");
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut hb = HbState::new(2, EpochLayout::paper_default());
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let pre = hb.epoch(t0);
        hb.apply_sync(&TraceEvent::Fork {
            parent: t0,
            child: t1,
        });
        assert!(!hb.vc(t1).races_with(pre));
        // Post-fork parent writes are unordered with the child.
        let post = hb.epoch(t0);
        assert!(hb.vc(t1).races_with(post));
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut hb = HbState::new(2, EpochLayout::paper_default());
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let child_epoch = hb.epoch(t1);
        assert!(hb.vc(t0).races_with(child_epoch));
        hb.apply_sync(&TraceEvent::Join {
            parent: t0,
            child: t1,
        });
        assert!(!hb.vc(t0).races_with(child_epoch));
    }

    #[test]
    fn memory_events_not_consumed() {
        let mut hb = HbState::new(1, EpochLayout::paper_default());
        assert!(!hb.apply_sync(&TraceEvent::Read {
            tid: ThreadId::new(0),
            addr: 0,
            size: 4
        }));
    }
}
