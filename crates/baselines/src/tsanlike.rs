//! A ThreadSanitizer-v1-style imprecise detector (Serebryany &
//! Iskhodzhanov, WBIA 2009; Section 6.2.1 of the CLEAN paper).
//!
//! ThreadSanitizer keeps a record of only the last `k` (typically 4)
//! accesses to each 8-byte memory region. It can therefore *miss* races —
//! the CLEAN paper's software implementation was built on top of it and
//! had to fix exactly this — but it detects all three race kinds when the
//! racing accesses are still resident in the shadow cells.

use crate::api::{FoundRace, FullRaceKind, TraceDetector, TraceEvent};
use crate::hb::HbState;
use clean_core::{EpochLayout, ThreadId};
use std::collections::HashMap;

/// Number of shadow cells per 8-byte granule (the paper's `k = 4`).
pub const SHADOW_CELLS: usize = 4;

/// Size of a shadow granule in bytes.
pub const GRANULE: usize = 8;

#[derive(Debug, Clone, Copy)]
struct ShadowCell {
    tid: ThreadId,
    /// The accessor's scalar clock at the time of access.
    clock: u32,
    is_write: bool,
    /// Byte range within the granule.
    off: u8,
    len: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct Granule {
    cells: [Option<ShadowCell>; SHADOW_CELLS],
    /// Round-robin eviction cursor.
    next: usize,
}

/// The TSan-like imprecise detector.
///
/// # Examples
///
/// ```
/// use clean_baselines::{TsanLike, TraceDetector, TraceEvent, run_detector};
/// use clean_core::ThreadId;
///
/// let mut det = TsanLike::new(2);
/// let races = run_detector(&mut det, &[
///     TraceEvent::Write { tid: ThreadId::new(0), addr: 0, size: 4 },
///     TraceEvent::Write { tid: ThreadId::new(1), addr: 0, size: 4 },
/// ]);
/// assert_eq!(races.len(), 1, "recent races are caught");
/// ```
#[derive(Debug)]
pub struct TsanLike {
    hb: HbState,
    granules: HashMap<usize, Granule>,
    comparisons: u64,
    evictions: u64,
}

impl TsanLike {
    /// Creates a detector for traces with up to `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        TsanLike {
            hb: HbState::new(num_threads, EpochLayout::paper_default()),
            granules: HashMap::new(),
            comparisons: 0,
            evictions: 0,
        }
    }

    /// Clock comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Shadow cells overwritten while still holding an access record —
    /// each eviction is a potential missed race.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn access(
        &mut self,
        tid: ThreadId,
        addr: usize,
        size: usize,
        is_write: bool,
    ) -> Option<FoundRace> {
        let layout = self.hb.layout();
        let vc = self.hb.vc(tid).clone();
        let my_clock = layout.clock(self.hb.epoch(tid));
        let mut race = None;

        let mut granule_addr = addr / GRANULE * GRANULE;
        while granule_addr < addr + size {
            let lo = addr.max(granule_addr) - granule_addr;
            let hi = (addr + size).min(granule_addr + GRANULE) - granule_addr;
            let g = self.granules.entry(granule_addr).or_default();
            for cell in g.cells.iter().flatten() {
                let c_lo = cell.off as usize;
                let c_hi = c_lo + cell.len as usize;
                let overlaps = c_lo < hi && lo < c_hi;
                if !overlaps || cell.tid == tid || !(cell.is_write || is_write) {
                    continue;
                }
                self.comparisons += 1;
                let recorded = layout.pack(cell.tid, cell.clock);
                if vc.races_with(recorded) {
                    race.get_or_insert(FoundRace {
                        kind: match (cell.is_write, is_write) {
                            (true, true) => FullRaceKind::Waw,
                            (true, false) => FullRaceKind::Raw,
                            (false, true) => FullRaceKind::War,
                            (false, false) => unreachable!("filtered above"),
                        },
                        addr: granule_addr + c_lo.max(lo),
                        current: tid,
                        previous: cell.tid,
                    });
                }
            }
            // Record this access, evicting round-robin (the precision
            // loss the paper attributes to ThreadSanitizer).
            let slot = g.next;
            if g.cells[slot].is_some() {
                self.evictions += 1;
            }
            g.cells[slot] = Some(ShadowCell {
                tid,
                clock: my_clock,
                is_write,
                off: lo as u8,
                len: (hi - lo) as u8,
            });
            g.next = (g.next + 1) % SHADOW_CELLS;
            granule_addr += GRANULE;
        }
        race
    }
}

impl TraceDetector for TsanLike {
    fn name(&self) -> &'static str {
        "tsan-like"
    }

    fn process(&mut self, event: &TraceEvent) -> Vec<FoundRace> {
        if self.hb.apply_sync(event) {
            return Vec::new();
        }
        let found = match *event {
            TraceEvent::Read { tid, addr, size } => self.access(tid, addr, size, false),
            TraceEvent::Write { tid, addr, size } => self.access(tid, addr, size, true),
            _ => unreachable!("sync handled above"),
        };
        found.into_iter().collect()
    }

    fn reset(&mut self) {
        self.hb.reset();
        self.granules.clear();
        self.comparisons = 0;
        self.evictions = 0;
    }

    fn metadata_bytes(&self) -> usize {
        self.hb.metadata_bytes()
            + self.granules.len() * SHADOW_CELLS * std::mem::size_of::<ShadowCell>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_detector;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }
    fn read(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Read {
            tid: t(tid),
            addr,
            size: 1,
        }
    }
    fn write(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size: 1,
        }
    }

    #[test]
    fn catches_recent_races_of_all_kinds() {
        let mut d = TsanLike::new(2);
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::Waw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), read(1, 0)])[0].kind,
            FullRaceKind::Raw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[read(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::War
        );
    }

    #[test]
    fn misses_races_evicted_from_shadow() {
        // Thread 0 writes byte 0, then threads... enough same-granule
        // accesses by thread 1 on *other* bytes evict the record; a racy
        // write to byte 0 then goes unnoticed — the imprecision CLEAN's
        // fixed-layout epochs do not have.
        let mut d = TsanLike::new(3);
        let mut trace = vec![write(0, 0)];
        for i in 1..=SHADOW_CELLS {
            trace.push(write(1, i)); // same granule, disjoint bytes
        }
        trace.push(write(2, 0)); // races with thread 0's write
        let races = run_detector(&mut d, &trace);
        assert!(
            races.iter().all(|r| r.previous != t(0)),
            "the evicted record cannot be reported: {races:?}"
        );
        assert!(d.evictions() >= 1);

        // CLEAN (and FastTrack) catch it.
        let mut clean = crate::clean_engine::CleanEngine::new(3);
        let races = run_detector(&mut clean, &trace);
        assert!(races
            .iter()
            .any(|r| r.previous == t(0) && r.current == t(2)));
    }

    #[test]
    fn disjoint_bytes_do_not_race() {
        let mut d = TsanLike::new(2);
        let races = run_detector(&mut d, &[write(0, 0), write(1, 1)]);
        assert!(races.is_empty());
    }

    #[test]
    fn multi_granule_access_spans() {
        let mut d = TsanLike::new(2);
        let races = run_detector(
            &mut d,
            &[
                TraceEvent::Write {
                    tid: t(0),
                    addr: 6,
                    size: 4,
                }, // spans granules 0 and 8
                TraceEvent::Read {
                    tid: t(1),
                    addr: 8,
                    size: 2,
                },
            ],
        );
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, FullRaceKind::Raw);
    }
}
