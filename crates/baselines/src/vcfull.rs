//! The classic two-vector-clocks-per-location detector (Section 2.3,
//! "Vector Clocks"): one read clock and one write clock per location,
//! element-wise compared on every access. Precise like FastTrack but with
//! O(n) work and O(n) metadata on *every* location — the baseline
//! FastTrack (and then CLEAN) improve upon.

use crate::api::{FoundRace, FullRaceKind, TraceDetector, TraceEvent};
use crate::hb::HbState;
use clean_core::{EpochLayout, ThreadId, VectorClock};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Cell {
    reads: VectorClock,
    writes: VectorClock,
}

/// The unoptimized full vector-clock detector (WAW + RAW + WAR).
///
/// # Examples
///
/// ```
/// use clean_baselines::{VcFullDetector, TraceDetector, TraceEvent, run_detector};
/// use clean_core::ThreadId;
///
/// let mut det = VcFullDetector::new(2);
/// let races = run_detector(&mut det, &[
///     TraceEvent::Write { tid: ThreadId::new(0), addr: 0, size: 1 },
///     TraceEvent::Write { tid: ThreadId::new(1), addr: 0, size: 1 },
/// ]);
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Debug)]
pub struct VcFullDetector {
    hb: HbState,
    cells: HashMap<usize, Cell>,
    comparisons: u64,
}

impl VcFullDetector {
    /// Creates a detector for traces with up to `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        VcFullDetector {
            hb: HbState::new(num_threads, EpochLayout::paper_default()),
            cells: HashMap::new(),
            comparisons: 0,
        }
    }

    /// Clock comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Finds a thread whose recorded access in `recorded` does not
    /// happen-before the current thread (an unordered prior access).
    fn find_conflict(
        &mut self,
        recorded: &VectorClock,
        current: &VectorClock,
        n: usize,
    ) -> Option<ThreadId> {
        self.comparisons += n as u64;
        let layout = recorded.layout();
        for i in 0..n {
            let t = ThreadId::new(i as u16);
            let e = recorded.element(t);
            if layout.clock(e) != 0 && current.races_with(e) {
                return Some(t);
            }
        }
        None
    }
}

impl TraceDetector for VcFullDetector {
    fn name(&self) -> &'static str {
        "vc-full"
    }

    fn process(&mut self, event: &TraceEvent) -> Vec<FoundRace> {
        if self.hb.apply_sync(event) {
            return Vec::new();
        }
        let n = self.hb.num_threads();
        let layout = self.hb.layout();
        let (tid, addr, size, is_read) = match *event {
            TraceEvent::Read { tid, addr, size } => (tid, addr, size, true),
            TraceEvent::Write { tid, addr, size } => (tid, addr, size, false),
            _ => unreachable!("sync handled above"),
        };
        let current = self.hb.vc(tid).clone();
        let my_clock = layout.clock(self.hb.epoch(tid));
        let mut races = Vec::new();
        for a in addr..addr + size {
            let cell = match self.cells.get(&a) {
                Some(c) => c.clone(),
                None => Cell {
                    reads: VectorClock::new(n, layout),
                    writes: VectorClock::new(n, layout),
                },
            };
            // Always check against prior writes.
            if let Some(prev) = self.find_conflict(&cell.writes, &current, n) {
                races.push(FoundRace {
                    kind: if is_read {
                        FullRaceKind::Raw
                    } else {
                        FullRaceKind::Waw
                    },
                    addr: a,
                    current: tid,
                    previous: prev,
                });
            }
            // Writes additionally check against prior reads (WAR).
            if !is_read {
                if let Some(prev) = self.find_conflict(&cell.reads, &current, n) {
                    races.push(FoundRace {
                        kind: FullRaceKind::War,
                        addr: a,
                        current: tid,
                        previous: prev,
                    });
                }
            }
            let cell = self.cells.entry(a).or_insert(cell);
            if is_read {
                cell.reads.set_clock(tid, my_clock);
            } else {
                cell.writes.set_clock(tid, my_clock);
            }
        }
        races.truncate(1);
        races
    }

    fn reset(&mut self) {
        self.hb.reset();
        self.cells.clear();
        self.comparisons = 0;
    }

    fn metadata_bytes(&self) -> usize {
        self.hb.metadata_bytes() + self.cells.len() * self.hb.num_threads() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_detector;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }
    fn read(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Read {
            tid: t(tid),
            addr,
            size: 1,
        }
    }
    fn write(tid: u16, addr: usize) -> TraceEvent {
        TraceEvent::Write {
            tid: t(tid),
            addr,
            size: 1,
        }
    }

    #[test]
    fn detects_all_three_kinds() {
        let mut d = VcFullDetector::new(2);
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::Waw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[write(0, 0), read(1, 0)])[0].kind,
            FullRaceKind::Raw
        );
        d.reset();
        assert_eq!(
            run_detector(&mut d, &[read(0, 0), write(1, 0)])[0].kind,
            FullRaceKind::War
        );
    }

    #[test]
    fn lock_ordered_accesses_are_clean() {
        let mut d = VcFullDetector::new(2);
        let races = run_detector(
            &mut d,
            &[
                write(0, 4),
                TraceEvent::Release { tid: t(0), lock: 0 },
                TraceEvent::Acquire { tid: t(1), lock: 0 },
                write(1, 4),
                read(1, 4),
            ],
        );
        assert!(races.is_empty());
    }

    #[test]
    fn every_access_costs_n_comparisons() {
        let mut d = VcFullDetector::new(8);
        let _ = d.process(&read(0, 0));
        assert_eq!(d.comparisons(), 8);
        let _ = d.process(&write(0, 0));
        assert_eq!(d.comparisons(), 8 + 16, "write checks reads and writes");
    }

    #[test]
    fn agrees_with_fasttrack_on_random_traces() {
        use crate::fasttrack::FastTrack;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..30 {
            let mut trace = Vec::new();
            for _ in 0..60 {
                let tid = rng.gen_range(0..3u16);
                let addr = rng.gen_range(0..4usize);
                match rng.gen_range(0..4u8) {
                    0 => trace.push(read(tid, addr)),
                    1 => trace.push(write(tid, addr)),
                    2 => trace.push(TraceEvent::Acquire {
                        tid: t(tid),
                        lock: rng.gen_range(0..2),
                    }),
                    _ => trace.push(TraceEvent::Release {
                        tid: t(tid),
                        lock: rng.gen_range(0..2),
                    }),
                }
            }
            // Make lock usage well-formed: drop acquire/release pairs into
            // a simpler shape — both detectors see the same stream either
            // way, so just compare their verdicts on "any race found".
            let mut ft = FastTrack::new(3);
            let mut vc = VcFullDetector::new(3);
            let f = !run_detector(&mut ft, &trace).is_empty();
            let v = !run_detector(&mut vc, &trace).is_empty();
            assert_eq!(f, v, "precise detectors must agree on racy-or-not");
        }
    }
}
