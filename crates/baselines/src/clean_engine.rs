//! CLEAN as a trace-analysis engine: the Figure 2 check (one epoch per
//! byte, WAW/RAW only) driven by a serialized trace, for head-to-head
//! comparison with the full detectors.

use crate::api::{FoundRace, FullRaceKind, TraceDetector, TraceEvent};
use crate::hb::HbState;
use clean_core::{Epoch, EpochLayout};
use std::collections::HashMap;

/// The CLEAN WAW/RAW-only engine.
///
/// Per shared byte it stores exactly one 32-bit epoch, and per access it
/// performs exactly one clock comparison per byte — the property that
/// makes CLEAN cheap relative to FastTrack's adaptive read vector clocks.
///
/// # Examples
///
/// ```
/// use clean_baselines::{CleanEngine, TraceDetector, TraceEvent, FullRaceKind, run_detector};
/// use clean_core::ThreadId;
///
/// let mut det = CleanEngine::new(2);
/// let races = run_detector(&mut det, &[
///     TraceEvent::Write { tid: ThreadId::new(0), addr: 0, size: 4 },
///     TraceEvent::Write { tid: ThreadId::new(1), addr: 0, size: 4 },
/// ]);
/// assert_eq!(races.len(), 1);
/// assert_eq!(races[0].kind, FullRaceKind::Waw);
/// ```
#[derive(Debug)]
pub struct CleanEngine {
    hb: HbState,
    epochs: HashMap<usize, Epoch>,
    comparisons: u64,
}

impl CleanEngine {
    /// Creates an engine for traces with up to `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        CleanEngine {
            hb: HbState::new(num_threads, EpochLayout::paper_default()),
            epochs: HashMap::new(),
            comparisons: 0,
        }
    }

    /// Clock comparisons performed so far (the per-access cost metric).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    fn check_bytes(
        &mut self,
        tid: clean_core::ThreadId,
        addr: usize,
        size: usize,
        kind: FullRaceKind,
        update: bool,
    ) -> Vec<FoundRace> {
        let mut races = Vec::new();
        let layout = self.hb.layout();
        let new_epoch = self.hb.epoch(tid);
        for a in addr..addr + size {
            let e = self.epochs.get(&a).copied().unwrap_or(Epoch::ZERO);
            self.comparisons += 1;
            if self.hb.vc(tid).races_with(e) {
                races.push(FoundRace {
                    kind,
                    addr: a,
                    current: tid,
                    previous: layout.tid(e),
                });
            }
            if update {
                self.epochs.insert(a, new_epoch);
            }
        }
        // Report each racy access once (first racy byte), like a race
        // exception would.
        races.truncate(1);
        races
    }
}

impl TraceDetector for CleanEngine {
    fn name(&self) -> &'static str {
        "clean"
    }

    fn process(&mut self, event: &TraceEvent) -> Vec<FoundRace> {
        if self.hb.apply_sync(event) {
            return Vec::new();
        }
        match *event {
            TraceEvent::Read { tid, addr, size } => {
                self.check_bytes(tid, addr, size, FullRaceKind::Raw, false)
            }
            TraceEvent::Write { tid, addr, size } => {
                self.check_bytes(tid, addr, size, FullRaceKind::Waw, true)
            }
            _ => unreachable!("sync handled above"),
        }
    }

    fn reset(&mut self) {
        self.hb.reset();
        self.epochs.clear();
        self.comparisons = 0;
    }

    fn metadata_bytes(&self) -> usize {
        self.hb.metadata_bytes() + self.epochs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_detector;
    use clean_core::ThreadId;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn detects_waw_and_raw_not_war() {
        let mut d = CleanEngine::new(2);
        // WAR: read by t0 then write by t1 — not detected.
        let races = run_detector(
            &mut d,
            &[
                TraceEvent::Read {
                    tid: t(0),
                    addr: 0,
                    size: 4,
                },
                TraceEvent::Write {
                    tid: t(1),
                    addr: 0,
                    size: 4,
                },
            ],
        );
        assert!(races.is_empty(), "WAR must be missed by design");

        d.reset();
        // RAW: write by t0 then read by t1.
        let races = run_detector(
            &mut d,
            &[
                TraceEvent::Write {
                    tid: t(0),
                    addr: 8,
                    size: 4,
                },
                TraceEvent::Read {
                    tid: t(1),
                    addr: 8,
                    size: 4,
                },
            ],
        );
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, FullRaceKind::Raw);
        assert_eq!(races[0].previous, t(0));
    }

    #[test]
    fn lock_discipline_suppresses_races() {
        let mut d = CleanEngine::new(2);
        let races = run_detector(
            &mut d,
            &[
                TraceEvent::Acquire { tid: t(0), lock: 9 },
                TraceEvent::Write {
                    tid: t(0),
                    addr: 0,
                    size: 8,
                },
                TraceEvent::Release { tid: t(0), lock: 9 },
                TraceEvent::Acquire { tid: t(1), lock: 9 },
                TraceEvent::Read {
                    tid: t(1),
                    addr: 0,
                    size: 8,
                },
                TraceEvent::Write {
                    tid: t(1),
                    addr: 0,
                    size: 8,
                },
                TraceEvent::Release { tid: t(1), lock: 9 },
            ],
        );
        assert!(races.is_empty());
    }

    #[test]
    fn one_comparison_per_byte() {
        let mut d = CleanEngine::new(2);
        let _ = d.process(&TraceEvent::Write {
            tid: t(0),
            addr: 0,
            size: 8,
        });
        assert_eq!(d.comparisons(), 8);
        let _ = d.process(&TraceEvent::Read {
            tid: t(0),
            addr: 0,
            size: 8,
        });
        assert_eq!(d.comparisons(), 16);
    }

    #[test]
    fn metadata_is_four_bytes_per_touched_byte() {
        let mut d = CleanEngine::new(2);
        let base = d.metadata_bytes();
        let _ = d.process(&TraceEvent::Write {
            tid: t(0),
            addr: 100,
            size: 16,
        });
        assert_eq!(d.metadata_bytes() - base, 64);
    }
}
