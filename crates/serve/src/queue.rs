//! Bounded analysis job queue with admission control.
//!
//! ANALYZE requests that miss the verdict cache become *jobs*. The queue
//! enforces two admission bounds before accepting one:
//!
//! * a global cap on queued-but-not-started jobs — beyond it the client
//!   is shed with a retry-after hint instead of being buffered without
//!   bound, and
//! * a per-client in-flight cap, so one aggressive client cannot occupy
//!   the whole queue.
//!
//! Identical requests coalesce: if a `(digest, engine)` job is already
//! queued or running, a new request *attaches* to it rather than
//! enqueueing a duplicate — both clients observe the same job id and the
//! replay runs once. Worker threads block in [`JobQueue::next_job`];
//! completion wakes every attached waiter. Closing the queue stops
//! admission while letting workers drain what was already accepted —
//! the graceful-shutdown half of the protocol.

use crate::cache::{Verdict, VerdictKey};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};

/// Outcome of asking the queue to admit an ANALYZE request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: either newly enqueued or attached to an identical
    /// in-flight job.
    Admitted {
        /// The job handle to wait on or poll.
        job: u64,
        /// True if this admission created the job (as opposed to
        /// attaching to one already in flight). The creator's caller
        /// owns job-lifetime resources such as the store pin.
        new: bool,
    },
    /// Shed by admission control; retry after the given hint.
    Rejected {
        /// Suggested back-off in milliseconds.
        retry_millis: u64,
    },
    /// The queue is closed (server draining).
    Closed,
}

/// Observable state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is replaying the trace.
    Running,
    /// Finished successfully.
    Done(Verdict),
    /// Replay failed (I/O or decode error).
    Failed(String),
}

/// A claimed unit of work, handed to a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Job id.
    pub id: u64,
    /// What to replay.
    pub key: VerdictKey,
}

#[derive(Debug)]
struct JobRecord {
    key: VerdictKey,
    state: JobState,
    /// Clients attached to this job (deduplicated by identity).
    clients: Vec<String>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Ids of jobs waiting for a worker, FIFO.
    ready: VecDeque<u64>,
    /// Admitted jobs by id. Finished records are retained for late
    /// STATUS polls, but only the most recent `finished_cap` of them —
    /// a fleet node serving millions of requests must not grow its job
    /// map without bound.
    jobs: HashMap<u64, JobRecord>,
    /// Terminal job ids in completion order, oldest first — the
    /// retention ring for finished records.
    finished: VecDeque<u64>,
    /// `(digest, engine)` → id, for queued/running jobs only.
    in_flight: HashMap<VerdictKey, u64>,
    /// Per-client count of attached not-yet-finished jobs.
    per_client: HashMap<String, usize>,
    next_id: u64,
    closed: bool,
    completed: u64,
    rejected: u64,
    coalesced: u64,
}

/// The admission-controlled job queue.
#[derive(Debug)]
pub struct JobQueue {
    /// Max queued-not-running jobs before load shedding.
    queue_cap: usize,
    /// Max unfinished jobs a single client may be attached to.
    per_client_cap: usize,
    /// Retry hint handed out on rejection.
    retry_millis: u64,
    /// Max finished job records retained for late STATUS polls.
    finished_cap: usize,
    inner: Mutex<Inner>,
    /// Signaled when `ready` gains an entry or the queue closes.
    work: Condvar,
    /// Signaled when any job reaches a terminal state.
    done: Condvar,
}

impl JobQueue {
    /// Creates a queue admitting at most `queue_cap` waiting jobs and
    /// `per_client_cap` unfinished jobs per client, handing out
    /// `retry_millis` as the shed hint.
    pub fn new(queue_cap: usize, per_client_cap: usize, retry_millis: u64) -> Self {
        JobQueue {
            queue_cap,
            per_client_cap,
            retry_millis,
            finished_cap: 4096,
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Caps how many finished job records are retained for late STATUS
    /// polls (default 4096). Records pruned past the cap answer
    /// `UNKNOWN_JOB`, which clients already handle.
    pub fn finished_cap(mut self, cap: usize) -> Self {
        self.finished_cap = cap;
        self
    }

    /// Admits (or attaches, or sheds) an ANALYZE request from `client`.
    pub fn submit(&self, key: VerdictKey, client: &str) -> Admission {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Admission::Closed;
        }

        // Attach to an identical in-flight job: no new queue slot, but
        // the per-client cap still applies to the attachment.
        if let Some(&id) = inner.in_flight.get(&key) {
            let record = inner.jobs.get_mut(&id).expect("in-flight job exists");
            if record.clients.iter().any(|c| c == client) {
                inner.coalesced += 1;
                return Admission::Admitted {
                    job: id,
                    new: false,
                };
            }
            let count = inner.per_client.get(client).copied().unwrap_or(0);
            if count >= self.per_client_cap {
                inner.rejected += 1;
                return Admission::Rejected {
                    retry_millis: self.retry_millis,
                };
            }
            let record = inner.jobs.get_mut(&id).expect("in-flight job exists");
            record.clients.push(client.to_string());
            *inner.per_client.entry(client.to_string()).or_insert(0) += 1;
            inner.coalesced += 1;
            return Admission::Admitted {
                job: id,
                new: false,
            };
        }

        let queued = inner.ready.len();
        let count = inner.per_client.get(client).copied().unwrap_or(0);
        if queued >= self.queue_cap || count >= self.per_client_cap {
            inner.rejected += 1;
            return Admission::Rejected {
                retry_millis: self.retry_millis,
            };
        }

        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            JobRecord {
                key,
                state: JobState::Queued,
                clients: vec![client.to_string()],
            },
        );
        inner.in_flight.insert(key, id);
        inner.ready.push_back(id);
        *inner.per_client.entry(client.to_string()).or_insert(0) += 1;
        self.work.notify_one();
        Admission::Admitted { job: id, new: true }
    }

    /// Blocks until a job is ready and claims it, or returns `None` once
    /// the queue is closed *and* drained — the worker-thread exit signal.
    pub fn next_job(&self) -> Option<Job> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(id) = inner.ready.pop_front() {
                let record = inner.jobs.get_mut(&id).expect("ready job exists");
                record.state = JobState::Running;
                return Some(Job {
                    id,
                    key: record.key,
                });
            }
            if inner.closed {
                return None;
            }
            self.work.wait(&mut inner);
        }
    }

    /// Records a worker's result and wakes every attached waiter.
    pub fn complete(&self, id: u64, result: Result<Verdict, String>) {
        let mut inner = self.inner.lock();
        let Some(record) = inner.jobs.get_mut(&id) else {
            return;
        };
        record.state = match result {
            Ok(v) => JobState::Done(v),
            Err(e) => JobState::Failed(e),
        };
        let key = record.key;
        let clients = std::mem::take(&mut record.clients);
        inner.in_flight.remove(&key);
        for client in clients {
            if let Some(count) = inner.per_client.get_mut(&client) {
                *count -= 1;
                if *count == 0 {
                    inner.per_client.remove(&client);
                }
            }
        }
        inner.completed += 1;
        // Retention: keep only the newest `finished_cap` terminal
        // records. Waiters woken below re-check before the next
        // completion could prune this id, because pruning happens while
        // we still hold the lock only for *older* ids.
        inner.finished.push_back(id);
        while inner.finished.len() > self.finished_cap {
            if let Some(old) = inner.finished.pop_front() {
                inner.jobs.remove(&old);
            }
        }
        self.done.notify_all();
    }

    /// Blocks until job `id` reaches a terminal state; `None` for an
    /// unknown id.
    pub fn wait(&self, id: u64) -> Option<JobState> {
        let mut inner = self.inner.lock();
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(record) => match &record.state {
                    JobState::Done(_) | JobState::Failed(_) => {
                        return Some(record.state.clone());
                    }
                    _ => {}
                },
            }
            self.done.wait(&mut inner);
        }
    }

    /// Non-blocking state poll; `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobState> {
        self.inner.lock().jobs.get(&id).map(|r| r.state.clone())
    }

    /// The `(digest, engine)` key of job `id`; `None` for an unknown id.
    pub fn job_key(&self, id: u64) -> Option<VerdictKey> {
        self.inner.lock().jobs.get(&id).map(|r| r.key)
    }

    /// Stops admission (submissions return [`Admission::Closed`]) and
    /// wakes blocked workers so they can drain and exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        self.work.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// `(jobs_completed, jobs_rejected, jobs_coalesced)` counters. A
    /// coalesce is any admission that attached to an in-flight job
    /// instead of enqueueing a duplicate replay.
    pub fn counters(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.completed, inner.rejected, inner.coalesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_trace::{EngineKind, TraceDigest};
    use std::sync::Arc;

    fn key(n: u128) -> VerdictKey {
        VerdictKey {
            digest: TraceDigest(n),
            engine: EngineKind::Clean,
        }
    }

    fn done(events: u64) -> Result<Verdict, String> {
        Ok(Verdict {
            races: vec![],
            events,
        })
    }

    #[test]
    fn fifo_admit_run_complete() {
        let q = JobQueue::new(8, 8, 100);
        let Admission::Admitted { job: a, .. } = q.submit(key(1), "c1") else {
            panic!("admitted");
        };
        let Admission::Admitted { job: b, .. } = q.submit(key(2), "c1") else {
            panic!("admitted");
        };
        assert_eq!(q.status(a), Some(JobState::Queued));
        let first = q.next_job().unwrap();
        assert_eq!(first.id, a);
        assert_eq!(q.status(a), Some(JobState::Running));
        q.complete(a, done(10));
        assert_eq!(
            q.wait(a),
            Some(JobState::Done(Verdict {
                races: vec![],
                events: 10
            }))
        );
        let second = q.next_job().unwrap();
        assert_eq!(second.id, b);
        q.complete(b, Err("boom".into()));
        assert_eq!(q.wait(b), Some(JobState::Failed("boom".into())));
        assert_eq!(q.counters(), (2, 0, 0));
    }

    #[test]
    fn identical_requests_coalesce() {
        let q = JobQueue::new(8, 8, 100);
        let Admission::Admitted { job: a, .. } = q.submit(key(1), "c1") else {
            panic!("admitted");
        };
        let Admission::Admitted { job: b, .. } = q.submit(key(1), "c2") else {
            panic!("admitted");
        };
        assert_eq!(a, b, "same key attaches, not re-enqueues");
        assert!(q.next_job().is_some());
        assert!(
            matches!(
                q.submit(key(1), "c3"),
                Admission::Admitted { job, .. } if job == a
            ),
            "attach also works while running"
        );
        assert_eq!(q.counters().2, 2, "both attachments counted as coalesces");
        q.complete(a, done(1));
        // After completion the key is no longer in flight: a fresh
        // submission makes a new job.
        let Admission::Admitted { job: c, .. } = q.submit(key(1), "c1") else {
            panic!("admitted");
        };
        assert_ne!(c, a);
    }

    #[test]
    fn queue_cap_sheds_with_retry() {
        let q = JobQueue::new(1, 8, 250);
        assert!(matches!(q.submit(key(1), "c1"), Admission::Admitted { .. }));
        assert_eq!(
            q.submit(key(2), "c1"),
            Admission::Rejected { retry_millis: 250 }
        );
        // Zero-cap queue rejects everything deterministically.
        let q0 = JobQueue::new(0, 8, 99);
        assert_eq!(
            q0.submit(key(1), "c1"),
            Admission::Rejected { retry_millis: 99 }
        );
        assert_eq!(q0.counters().1, 1);
    }

    #[test]
    fn per_client_cap_counts_attachments() {
        let q = JobQueue::new(64, 2, 100);
        assert!(matches!(q.submit(key(1), "c1"), Admission::Admitted { .. }));
        assert!(matches!(q.submit(key(2), "c1"), Admission::Admitted { .. }));
        // Third distinct job: over the cap.
        assert!(matches!(q.submit(key(3), "c1"), Admission::Rejected { .. }));
        // Attaching to a job the client already holds is idempotent.
        assert!(matches!(q.submit(key(1), "c1"), Admission::Admitted { .. }));
        // A *new* attachment also counts against the cap.
        assert!(matches!(q.submit(key(1), "c2"), Admission::Admitted { .. }));
        assert!(matches!(q.submit(key(2), "c2"), Admission::Admitted { .. }));
        assert!(matches!(q.submit(key(3), "c2"), Admission::Rejected { .. }));
        // Completion releases the cap.
        let j = q.next_job().unwrap();
        q.complete(j.id, done(0));
        assert!(matches!(q.submit(key(4), "c1"), Admission::Admitted { .. }));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Arc::new(JobQueue::new(8, 8, 100));
        let Admission::Admitted { job, .. } = q.submit(key(1), "c1") else {
            panic!("admitted");
        };
        q.close();
        assert_eq!(q.submit(key(2), "c1"), Admission::Closed);
        // The already-admitted job still drains.
        let j = q.next_job().unwrap();
        assert_eq!(j.id, job);
        q.complete(j.id, done(5));
        // Queue empty + closed → workers see the exit signal.
        assert!(q.next_job().is_none());
    }

    #[test]
    fn finished_records_are_pruned_fifo() {
        let q = JobQueue::new(64, 64, 100).finished_cap(2);
        let mut ids = vec![];
        for n in 0..4u128 {
            let Admission::Admitted { job, .. } = q.submit(key(n), "c1") else {
                panic!("admitted");
            };
            ids.push(job);
            let j = q.next_job().unwrap();
            q.complete(j.id, done(n as u64));
        }
        // Only the two newest finished records survive.
        assert_eq!(q.status(ids[0]), None, "oldest record pruned");
        assert_eq!(q.status(ids[1]), None, "second-oldest record pruned");
        assert!(matches!(q.status(ids[2]), Some(JobState::Done(_))));
        assert!(matches!(q.status(ids[3]), Some(JobState::Done(_))));
        // wait() on a pruned id reports unknown rather than blocking.
        assert_eq!(q.wait(ids[0]), None);
        assert_eq!(q.job_key(ids[0]), None);
        // Queued/running jobs are never pruned, no matter how many
        // completions happen around them.
        let Admission::Admitted { job: live, .. } = q.submit(key(100), "c1") else {
            panic!("admitted");
        };
        for n in 200..204u128 {
            let Admission::Admitted { job, .. } = q.submit(key(n), "c2") else {
                panic!("admitted");
            };
            let j = q.next_job().unwrap();
            assert_eq!(j.id, if n == 200 { live } else { job });
            if j.id == live {
                // Claim `live` first (FIFO), then complete the rest.
                let j2 = q.next_job().unwrap();
                q.complete(j2.id, done(0));
            } else {
                q.complete(j.id, done(0));
            }
        }
        assert!(matches!(q.status(live), Some(JobState::Running)));
        q.complete(live, done(0));
        assert!(matches!(q.status(live), Some(JobState::Done(_))));
    }

    #[test]
    fn waiters_block_until_completion() {
        let q = Arc::new(JobQueue::new(8, 8, 100));
        let Admission::Admitted { job, .. } = q.submit(key(7), "c1") else {
            panic!("admitted");
        };
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.wait(job))
        };
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let j = q.next_job().unwrap();
                q.complete(j.id, done(42));
            })
        };
        worker.join().unwrap();
        match waiter.join().unwrap() {
            Some(JobState::Done(v)) => assert_eq!(v.events, 42),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
