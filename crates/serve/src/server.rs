//! The `clean-serve` daemon: a bounded-concurrency TCP server over the
//! [`crate::protocol`] frames, gluing together the trace store, verdict
//! cache, and job queue.
//!
//! Thread layout:
//!
//! * a bounded pool of **acceptor** threads, each looping
//!   accept-then-serve — concurrent connections are capped at the pool
//!   size and excess connections queue in the OS listen backlog instead
//!   of spawning unbounded threads,
//! * a pool of **worker** threads draining the job queue through the
//!   offline replay engines.
//!
//! Connections carry per-direction I/O timeouts: an idle connection
//! parked *at a frame boundary* is welcome to stay, but a peer that
//! stalls mid-frame (the slow-loris shape) gets a `BAD_FRAME` error and
//! a disconnect — one stuck sender cannot hold an acceptor hostage.
//!
//! SUBMIT bodies are *streamed* into the content-addressed store — the
//! bytes go straight from the socket to a staged temp file and are
//! digested from disk, so a 64 MiB upload never materializes in memory.
//!
//! A node configured with peers participates in fleet replication: an
//! ANALYZE naming a digest the local store lacks triggers a `FETCH`
//! round over the peers before giving up, and the fetched bytes are
//! verified against the requested digest on ingest (content addressing
//! makes the transfer self-verifying).
//!
//! A "client" for admission-control purposes is one connection (peer
//! address including port): per-client caps bound what a single
//! connection can hold in flight.
//!
//! Graceful shutdown (`SHUTDOWN` frame or [`ServerHandle::shutdown`])
//! closes the queue to new work but *drains* what was admitted: workers
//! finish every queued job (waiting clients get their verdicts), then
//! lingering connections are disconnected and all threads joined.

use crate::cache::{Verdict, VerdictCache, VerdictKey};
use crate::client::Client;
use crate::policy::{SuppressionPolicy, POLICY_FILE};
use crate::protocol::{
    error_code, read_frame_body, read_frame_header, Request, Response, StatsReply, WireRace,
    OP_SUBMIT,
};
use crate::queue::{Admission, JobQueue, JobState};
use crate::store::{StoreError, TraceStore};
use clean_obs::{Counter, Journal, Registry, Stage, StageSpans};
use clean_trace::{
    read_table, read_trace, replay_file_stealing, replay_sharded, scan_trace, EngineKind,
    TraceDigest,
};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// File name of the durable verdict log, under the store directory.
pub const VERDICT_LOG: &str = "verdicts.log";

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Directory for the content-addressed trace store.
    pub store_dir: PathBuf,
    /// Store byte bound (`u64::MAX` = unbounded).
    pub store_max_bytes: u64,
    /// Max queued-not-running jobs before load shedding.
    pub queue_cap: usize,
    /// Max unfinished jobs one connection may hold.
    pub per_client_cap: usize,
    /// Retry hint handed to shed clients, in milliseconds.
    pub retry_millis: u64,
    /// Worker threads replaying jobs.
    pub workers: usize,
    /// Shards for the replay engines.
    pub shards: usize,
    /// Traces at or above this many bytes replay via the streaming
    /// work-stealing engine instead of being read fully into memory.
    /// Only consulted for v1 traces — v2 traces carry their exact event
    /// count in the chunk table and use `stream_events` instead.
    pub stream_threshold: u64,
    /// Traces at or above this many *events* (read from the v2 chunk
    /// table in O(footer), no scan) replay via the streaming engine.
    pub stream_events: u64,
    /// Addresses of peer `clean-serve` nodes to FETCH missing digests
    /// from before failing an ANALYZE. Empty = standalone node.
    pub peers: Vec<String>,
    /// Acceptor-pool size: the cap on concurrently served connections.
    /// Excess connections wait in the OS listen backlog.
    pub acceptors: usize,
    /// Per-connection read/write timeout in milliseconds (0 = none).
    /// Only mid-frame stalls trip it; a connection idling *between*
    /// frames is left alone.
    pub io_timeout_millis: u64,
    /// Persist the verdict cache to `verdicts.log` beside the store and
    /// reload it on startup, so warm restarts serve without replaying.
    pub persist_verdicts: bool,
    /// Path of the `CSUP` suppression policy file. `None` uses
    /// `policy.csup` under the store directory. The file is loaded at
    /// startup (missing = empty policy) and rewritten atomically when a
    /// `POLICY` frame installs new rules, so suppression survives
    /// restarts.
    pub policy_path: Option<PathBuf>,
    /// Record per-stage timing spans (decode / check / verdict /
    /// store-insert / peer-fetch) into the metrics registry. Off means
    /// the span bundle is never constructed — every call site pays one
    /// `Option` branch and nothing else, the `write_filter` knob idiom.
    /// Counters and the journal stay on either way (relaxed atomics at
    /// request granularity).
    pub obs_spans: bool,
}

impl ServerConfig {
    /// Defaults: loopback ephemeral port, 1 GiB store, 64-job queue,
    /// 8 jobs per client, 100 ms retry hint, workers/shards from
    /// available parallelism, 8 MiB streaming threshold, no peers,
    /// 32 acceptors, 30 s I/O timeout, durable verdicts.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            store_max_bytes: 1 << 30,
            queue_cap: 64,
            per_client_cap: 8,
            retry_millis: 100,
            workers: cores.clamp(1, 8),
            shards: cores.clamp(1, 8),
            stream_threshold: 8 << 20,
            stream_events: 2_000_000,
            peers: Vec::new(),
            acceptors: 32,
            io_timeout_millis: 30_000,
            persist_verdicts: true,
            policy_path: None,
            obs_spans: true,
        }
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the store byte bound.
    pub fn store_max_bytes(mut self, bytes: u64) -> Self {
        self.store_max_bytes = bytes;
        self
    }

    /// Sets the queue cap.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the per-client in-flight cap.
    pub fn per_client_cap(mut self, cap: usize) -> Self {
        self.per_client_cap = cap;
        self
    }

    /// Sets the retry hint.
    pub fn retry_millis(mut self, millis: u64) -> Self {
        self.retry_millis = millis;
        self
    }

    /// Sets the worker-pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the replay shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the event-count streaming threshold (v2 traces).
    pub fn stream_events(mut self, events: u64) -> Self {
        self.stream_events = events;
        self
    }

    /// Sets the peer list for fleet replication.
    pub fn peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Adds one peer address.
    pub fn peer(mut self, addr: impl Into<String>) -> Self {
        self.peers.push(addr.into());
        self
    }

    /// Sets the acceptor-pool size.
    pub fn acceptors(mut self, acceptors: usize) -> Self {
        self.acceptors = acceptors.max(1);
        self
    }

    /// Sets the per-connection I/O timeout (0 disables it).
    pub fn io_timeout_millis(mut self, millis: u64) -> Self {
        self.io_timeout_millis = millis;
        self
    }

    /// Enables or disables the durable verdict log.
    pub fn persist_verdicts(mut self, persist: bool) -> Self {
        self.persist_verdicts = persist;
        self
    }

    /// Sets the suppression-policy file path (default: `policy.csup`
    /// under the store directory).
    pub fn policy_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.policy_path = Some(path.into());
        self
    }

    /// Enables or disables per-stage timing spans.
    pub fn obs_spans(mut self, on: bool) -> Self {
        self.obs_spans = on;
        self
    }
}

/// The live suppression policy plus its audit trail: one counter per
/// rule, credited at classification time and reset whenever a `POLICY`
/// set installs new rules. The counters feed the v4 POLICY reply and
/// let `suppress prune` drop rules that never fired.
#[derive(Debug)]
struct ActivePolicy {
    policy: SuppressionPolicy,
    hits: Vec<u64>,
}

impl ActivePolicy {
    fn new(policy: SuppressionPolicy) -> Self {
        let hits = vec![0; policy.len()];
        ActivePolicy { policy, hits }
    }
}

/// Counters that live outside store and queue, backed by the metrics
/// registry — the STATS wire reply and the METRICS exposition read the
/// same cells.
#[derive(Debug)]
struct ServiceCounters {
    submits: Counter,
    submit_dedup_hits: Counter,
    analyzes: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    fetches: Counter,
    suppressed_hits: Counter,
}

impl ServiceCounters {
    fn new(registry: &Registry) -> Self {
        ServiceCounters {
            submits: registry.counter("submits"),
            submit_dedup_hits: registry.counter("submit_dedup_hits"),
            analyzes: registry.counter("analyzes"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            fetches: registry.counter("fetches"),
            suppressed_hits: registry.counter("suppressed_hits"),
        }
    }
}

/// An observability bundle shared by the daemon and the router: the
/// metrics registry, the event journal, and (when the spans knob is on)
/// the per-stage timing histograms.
#[derive(Debug)]
pub(crate) struct Obs {
    pub(crate) registry: Registry,
    pub(crate) journal: Journal,
    pub(crate) spans: Option<StageSpans>,
}

impl Obs {
    pub(crate) fn new(spans_on: bool) -> Self {
        let registry = Registry::new();
        let spans = spans_on.then(|| StageSpans::new(&registry, "serve_stage_micros"));
        Obs {
            registry,
            journal: Journal::default(),
            spans,
        }
    }

    /// Counts one handled request and records its service latency,
    /// keyed by verb (and dedup outcome for submissions, so the soak
    /// harness can separate cold from duplicate submits server-side).
    pub(crate) fn record_request(&self, verb: &'static str, dedup: Option<bool>, micros: u64) {
        self.registry
            .counter_with("serve_requests_total", &[("verb", verb)])
            .inc();
        let hist = match dedup {
            Some(d) => self.registry.hist_with(
                "serve_latency_micros",
                &[("verb", verb), ("dedup", if d { "true" } else { "false" })],
            ),
            None => self
                .registry
                .hist_with("serve_latency_micros", &[("verb", verb)]),
        };
        hist.record(micros);
    }
}

/// State shared by every server thread.
#[derive(Debug)]
struct Shared {
    store: TraceStore,
    cache: VerdictCache,
    queue: JobQueue,
    counters: ServiceCounters,
    obs: Obs,
    /// The active suppression policy. Swapped whole on a `POLICY` set;
    /// verdict classification takes the lock only long enough to flag
    /// the races of one response.
    policy: Mutex<ActivePolicy>,
    /// Where the policy persists across restarts.
    policy_path: PathBuf,
    shards: usize,
    stream_threshold: u64,
    stream_events: u64,
    peers: Vec<String>,
    acceptors: usize,
    io_timeout: Option<Duration>,
    /// Set once shutdown begins; checked by acceptors before serving a
    /// fresh connection and by request handlers admitting new work.
    draining: AtomicBool,
    /// Condvar'd mirror of `draining` so a foreground daemon can block
    /// in [`ServerHandle::wait_until_draining`] instead of polling.
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
    addr: SocketAddr,
    /// Live connection sockets (clones keyed by connection id), so the
    /// drain can unblock parked readers. Entries are removed when their
    /// acceptor finishes the connection — a lingering clone would hold
    /// the TCP connection open after the server side is done with it.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn stats_reply(&self) -> StatsReply {
        let store = self.store.stats();
        let (jobs_completed, jobs_rejected, jobs_coalesced) = self.queue.counters();
        StatsReply {
            submits: self.counters.submits.value(),
            submit_dedup_hits: self.counters.submit_dedup_hits.value(),
            analyzes: self.counters.analyzes.value(),
            cache_hits: self.counters.cache_hits.value(),
            cache_misses: self.counters.cache_misses.value(),
            jobs_completed,
            jobs_rejected,
            jobs_coalesced,
            store_traces: store.traces,
            store_bytes: store.bytes,
            store_evictions: store.evictions,
            // A plain daemon forwards nothing; the router owns this one.
            forwards: 0,
            fetches: self.counters.fetches.value(),
            cache_persist_hits: self.cache.persist_hits(),
            suppressed_hits: self.counters.suppressed_hits.value(),
        }
    }

    /// Renders the `CMET v1` exposition: the registry snapshot, plus
    /// the store/queue/cache counters (which own their cells elsewhere)
    /// overlaid under their STATS names, plus the journal as comments.
    fn metrics_text(&self) -> String {
        let mut snap = self.obs.registry.snapshot();
        let store = self.store.stats();
        let (jobs_completed, jobs_rejected, jobs_coalesced) = self.queue.counters();
        snap.counters
            .insert("jobs_completed".into(), jobs_completed);
        snap.counters.insert("jobs_rejected".into(), jobs_rejected);
        snap.counters
            .insert("jobs_coalesced".into(), jobs_coalesced);
        snap.counters
            .insert("store_evictions".into(), store.evictions);
        snap.counters
            .insert("cache_persist_hits".into(), self.cache.persist_hits());
        snap.gauges.insert("store_traces".into(), store.traces);
        snap.gauges.insert("store_bytes".into(), store.bytes);
        snap.render(&self.obs.journal.render())
    }

    /// Replays `digest` under `engine` — the worker body.
    fn run_job(&self, digest: TraceDigest, engine: EngineKind) -> Result<Verdict, String> {
        let key = VerdictKey { digest, engine };
        // A verdict may have landed while this job sat queued (another
        // engine run, or an earlier identical job): never replay twice.
        if let Some(v) = self.cache.get(&key) {
            return Ok(v);
        }
        let Some(path) = self.store.path_of(digest) else {
            return Err(format!("trace {digest} no longer in store"));
        };
        let _check_span = self.obs.spans.as_ref().map(|s| s.start(Stage::Check));
        // v2 traces carry their exact event count in the chunk-table
        // footer (three small reads, no scan): split on events, the
        // quantity that actually drives replay cost. v1 traces — and a
        // trace whose table cannot be read — fall back to raw file size;
        // a genuinely corrupt table then fails cleanly inside the replay.
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let table = read_table(&path).ok().flatten();
        let stream = match &table {
            Some(table) => table.total_events >= self.stream_events,
            None => bytes >= self.stream_threshold,
        };
        let verdict = if stream {
            let workers = self.shards.clamp(1, 4);
            // Detector lanes must cover every thread in the trace. The
            // v2 trailer records the count directly; v1 pays one scan
            // pass before the replay.
            let slots = match &table {
                Some(table) => table.threads as usize,
                None => scan_trace(&path).map_err(|e| e.to_string())?.threads,
            }
            .max(1);
            let (races, stats) = replay_file_stealing(&path, engine, self.shards, workers, slots)
                .map_err(|e| e.to_string())?;
            Verdict {
                races,
                events: stats.events,
            }
        } else {
            let events = read_trace(&path).map_err(|e| e.to_string())?;
            let races = replay_sharded(&events, engine, self.shards);
            Verdict {
                races,
                events: events.len() as u64,
            }
        };
        self.cache.insert(key, verdict.clone());
        Ok(verdict)
    }
}

/// Handle to a running server: address, shutdown, join.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts a graceful drain, as if a `SHUTDOWN` frame arrived.
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until someone initiates shutdown (a `SHUTDOWN` frame or
    /// [`ServerHandle::shutdown`]) — the foreground daemon's park.
    pub fn wait_until_draining(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drain_cv.wait(&mut flag);
        }
    }

    /// Drains and joins every server thread. Idempotent with
    /// [`ServerHandle::shutdown`]; called from `Drop` as a safety net.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        begin_drain(&self.shared);
        // Workers exit once the queue is closed *and* drained — every
        // admitted job has completed by the time these joins return, so
        // clients blocked in an ANALYZE-wait get their verdicts before
        // their connections are cut below.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Unblock acceptors still parked inside a connection read.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // And acceptors parked in accept(): one wake-up poke each.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.shared.addr);
        }
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Flags the server as draining, closes the queue, and pokes every
/// acceptor awake with throwaway connections.
fn begin_drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    *shared.drain_flag.lock() = true;
    shared.drain_cv.notify_all();
    for _ in 0..shared.acceptors {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// The `clean-serve` service.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker pools, and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, store-open failures, or verdict-log
    /// failures.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener =
            TcpListener::bind(
                config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "bad bind address")
                })?,
            )?;
        let addr = listener.local_addr()?;
        let store = TraceStore::open(&config.store_dir, config.store_max_bytes)?;
        let cache = if config.persist_verdicts {
            VerdictCache::open(config.store_dir.join(VERDICT_LOG))?
        } else {
            VerdictCache::new()
        };
        let acceptor_count = config.acceptors.max(1);
        let policy_path = config
            .policy_path
            .clone()
            .unwrap_or_else(|| config.store_dir.join(POLICY_FILE));
        // A missing file is the empty policy; an unparseable one fails
        // startup loudly rather than silently un-suppressing races.
        let policy = SuppressionPolicy::load(&policy_path)?;
        let obs = Obs::new(config.obs_spans);
        let counters = ServiceCounters::new(&obs.registry);
        let shared = Arc::new(Shared {
            store,
            cache,
            policy: Mutex::new(ActivePolicy::new(policy)),
            policy_path,
            queue: JobQueue::new(config.queue_cap, config.per_client_cap, config.retry_millis),
            counters,
            obs,
            shards: config.shards,
            stream_threshold: config.stream_threshold,
            stream_events: config.stream_events,
            peers: config.peers.clone(),
            acceptors: acceptor_count,
            io_timeout: (config.io_timeout_millis > 0)
                .then(|| Duration::from_millis(config.io_timeout_millis)),
            draining: AtomicBool::new(false),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
            addr,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clean-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let listener = Arc::new(listener);
        let acceptors: Vec<JoinHandle<()>> = (0..acceptor_count)
            .map(|i| {
                let listener = Arc::clone(&listener);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clean-serve-accept-{i}"))
                    .spawn(move || acceptor_loop(&listener, &shared))
                    .expect("spawn acceptor thread")
            })
            .collect();

        Ok(ServerHandle {
            shared,
            acceptors,
            workers,
        })
    }
}

/// One acceptor: accept a connection, serve it to completion, repeat.
/// The pool size bounds concurrency; the OS backlog bounds admission.
fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Best effort: tell the late arrival we are going away.
            let mut w = BufWriter::new(&stream);
            let _ = Response::ShuttingDown.write(&mut w);
            break;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        serve_connection(stream, peer, shared);
        // Drop the drain clone too, or the TCP connection stays
        // half-open after this acceptor is done serving it.
        shared.conns.lock().remove(&conn_id);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.next_job() {
        let result = shared.run_job(job.key.digest, job.key.engine);
        shared.queue.complete(job.id, result);
        shared.store.unpin(job.key.digest);
    }
}

fn error_response(code: u8, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// Stable `verb` label value for a request (the `serve_requests_total`
/// key space).
pub(crate) fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Submit { .. } => "submit",
        Request::Analyze { .. } => "analyze",
        Request::Status { .. } => "status",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
        Request::Fetch { .. } => "fetch",
        Request::Policy { .. } => "policy",
        Request::Metrics => "metrics",
    }
}

/// Builds a VERDICT frame, classifying each race against the active
/// suppression policy. Classification happens here — at serve time, not
/// at cache-insert time — so the durable verdict cache stores raw replay
/// facts and a policy reload retroactively reclassifies every cached
/// verdict.
fn verdict_response(
    shared: &Shared,
    digest: TraceDigest,
    engine: EngineKind,
    cached: bool,
    v: &Verdict,
) -> Response {
    let flags = {
        let mut active = shared.policy.lock();
        let ActivePolicy { policy, hits } = &mut *active;
        policy.classify_with_hits(digest, &v.races, hits)
    };
    let _verdict_span = shared.obs.spans.as_ref().map(|s| s.start(Stage::Verdict));
    let suppressed = flags.iter().filter(|&&s| s).count() as u64;
    if suppressed > 0 {
        shared.counters.suppressed_hits.add(suppressed);
        shared
            .obs
            .journal
            .record("suppression", format!("digest={digest} races={suppressed}"));
    }
    let races = v
        .races
        .iter()
        .zip(&flags)
        .map(|(r, &s)| WireRace {
            suppressed: s,
            ..WireRace::from_found(r)
        })
        .collect();
    Response::Verdict {
        digest,
        engine,
        cached,
        races,
        events: v.events,
    }
}

fn serve_connection(stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let client = peer.to_string();
    if let Some(t) = shared.io_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let header = match read_frame_header(&mut reader) {
            Ok(Some(h)) => h,
            // Clean disconnect, or the drain shut the socket down.
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle at a frame boundary: welcome to keep waiting —
                // unless the server is draining, in which case the park
                // is over.
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol error (bad magic/version, or a mid-frame
                // stall): report and drop the connection — the stream
                // position is unreliable.
                shared.obs.journal.record("bad_frame", e.to_string());
                let _ = error_response(error_code::BAD_FRAME, e.to_string()).write(&mut writer);
                break;
            }
            Err(_) => break,
        };
        let started = Instant::now();
        // SUBMIT bodies stream straight into the store; every other
        // request body is small and buffered.
        if header.opcode == OP_SUBMIT {
            let (response, framing_intact) = handle_submit_stream(shared, &mut reader, header.len);
            let dedup = match &response {
                Response::Submitted { dedup, .. } => Some(*dedup),
                _ => None,
            };
            shared
                .obs
                .record_request("submit", dedup, started.elapsed().as_micros() as u64);
            if response.write(&mut writer).is_err() || !framing_intact {
                break;
            }
            continue;
        }
        let decode_span = shared.obs.spans.as_ref().map(|s| s.start(Stage::Decode));
        let body = match read_frame_body(&mut reader, header.len) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.obs.journal.record("bad_frame", e.to_string());
                let _ = error_response(error_code::BAD_FRAME, e.to_string()).write(&mut writer);
                break;
            }
            Err(_) => break,
        };
        let request = match Request::from_frame(header.opcode, &body) {
            Ok(req) => req,
            Err(e) => {
                shared.obs.journal.record("bad_frame", e.to_string());
                let _ = error_response(error_code::BAD_FRAME, e.to_string()).write(&mut writer);
                break;
            }
        };
        drop(decode_span);
        let verb = verb_of(&request);
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = handle_request(shared, &client, request);
        shared
            .obs
            .record_request(verb, None, started.elapsed().as_micros() as u64);
        let write_ok = response.write(&mut writer).is_ok();
        if is_shutdown {
            // Drain only after the reply is on the wire: `join()` closes
            // every registered connection, racing the write otherwise.
            begin_drain(shared);
            break;
        }
        if !write_ok {
            break;
        }
    }
}

/// Streams a SUBMIT body from the socket into the store. Returns the
/// response plus whether the connection's framing is still intact (a
/// body that was not fully consumed leaves the stream unusable).
fn handle_submit_stream(shared: &Shared, reader: &mut impl Read, len: usize) -> (Response, bool) {
    if shared.draining.load(Ordering::SeqCst) {
        // Consume the declared body so the refusal leaves the stream at
        // a frame boundary.
        let drained = io::copy(&mut (&mut *reader).take(len as u64), &mut io::sink());
        return (Response::ShuttingDown, drained.ok() == Some(len as u64));
    }
    let evictions_before = shared.store.stats().evictions;
    let insert_span = shared
        .obs
        .spans
        .as_ref()
        .map(|s| s.start(Stage::StoreInsert));
    let inserted = shared.store.insert_stream(reader, len as u64, None);
    drop(insert_span);
    match inserted {
        Ok(stored) => {
            shared.counters.submits.inc();
            if stored.dedup {
                shared.counters.submit_dedup_hits.inc();
            }
            let evicted = shared.store.stats().evictions - evictions_before;
            if evicted > 0 {
                shared.obs.journal.record(
                    "eviction",
                    format!("count={evicted} after digest={}", stored.digest),
                );
            }
            (
                Response::Submitted {
                    digest: stored.digest,
                    dedup: stored.dedup,
                    bytes: stored.bytes,
                },
                true,
            )
        }
        // The store consumed the full body before rejecting: the
        // connection is still usable.
        Err(e @ StoreError::BadTrace(_)) => (error_response(e.code(), e.to_string()), true),
        Err(StoreError::Io(e)) => {
            // The copy stopped early: stream position unknown, so the
            // connection must drop. A socket timeout here is the
            // slow-loris shape and reports as BAD_FRAME.
            let timed_out = matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            );
            let resp = if timed_out {
                error_response(error_code::BAD_FRAME, "timed out mid frame body")
            } else {
                error_response(error_code::INTERNAL, format!("store I/O error: {e}"))
            };
            (resp, false)
        }
    }
}

fn handle_request(shared: &Shared, client: &str, request: Request) -> Response {
    match request {
        Request::Submit { trace } => {
            // Unreachable from `serve_connection` (SUBMIT streams), but
            // kept for in-process callers of the request API.
            if shared.draining.load(Ordering::SeqCst) {
                return Response::ShuttingDown;
            }
            match shared.store.insert(&trace) {
                Ok(stored) => {
                    shared.counters.submits.inc();
                    if stored.dedup {
                        shared.counters.submit_dedup_hits.inc();
                    }
                    Response::Submitted {
                        digest: stored.digest,
                        dedup: stored.dedup,
                        bytes: stored.bytes,
                    }
                }
                Err(e) => error_response(e.code(), e.to_string()),
            }
        }
        Request::Analyze {
            digest,
            engine,
            wait,
        } => {
            shared.counters.analyzes.inc();
            analyze(shared, client, digest, engine, wait)
        }
        Request::Status { job } => match shared.queue.status(job) {
            None => error_response(error_code::UNKNOWN_JOB, format!("unknown job {job}")),
            Some(JobState::Queued | JobState::Running) => Response::Pending { job },
            Some(JobState::Done(v)) => verdict_response_for_job(shared, job, &v),
            Some(JobState::Failed(e)) => error_response(error_code::INTERNAL, e),
        },
        Request::Stats => Response::Stats(shared.stats_reply()),
        // The drain itself starts in `serve_connection` after the reply
        // is written out.
        Request::Shutdown => Response::ShuttingDown,
        Request::Fetch { digest } => {
            // Pin across the path lookup and the read so eviction cannot
            // delete the file from under the transfer.
            shared.store.pin(digest);
            let response = match shared.store.path_of(digest) {
                Some(path) => match std::fs::read(&path) {
                    Ok(trace) => Response::TraceData { digest, trace },
                    Err(e) => error_response(error_code::INTERNAL, e.to_string()),
                },
                None => error_response(
                    error_code::UNKNOWN_DIGEST,
                    format!("trace {digest} not in store"),
                ),
            };
            shared.store.unpin(digest);
            response
        }
        Request::Policy { set } => handle_policy(shared, set),
        Request::Metrics => Response::Metrics {
            text: shared.metrics_text(),
        },
    }
}

/// Reads or replaces the suppression policy. A set persists the new
/// rules (atomic tmp + rename) *before* swapping them live, so a reply
/// of success means a restart will come back with the same policy.
fn handle_policy(shared: &Shared, set: Option<String>) -> Response {
    match set {
        None => {
            let active = shared.policy.lock();
            Response::Policy {
                rules: active.policy.len() as u64,
                hits: active.hits.clone(),
                text: active.policy.text().to_string(),
            }
        }
        Some(text) => {
            let parsed = match SuppressionPolicy::parse(&text) {
                Ok(p) => p,
                Err(e) => return error_response(error_code::BAD_POLICY, e.to_string()),
            };
            if let Err(e) = parsed.save(&shared.policy_path) {
                return error_response(
                    error_code::INTERNAL,
                    format!("persisting policy failed: {e}"),
                );
            }
            let rules = parsed.len() as u64;
            let text = parsed.text().to_string();
            // New rules start with a fresh audit trail.
            let active = ActivePolicy::new(parsed);
            let hits = active.hits.clone();
            *shared.policy.lock() = active;
            Response::Policy { rules, hits, text }
        }
    }
}

/// Builds the VERDICT frame for a finished job id.
fn verdict_response_for_job(shared: &Shared, job: u64, v: &Verdict) -> Response {
    match shared.queue.job_key(job) {
        Some(key) => verdict_response(shared, key.digest, key.engine, false, v),
        None => error_response(error_code::UNKNOWN_JOB, format!("unknown job {job}")),
    }
}

/// Tries to pull `digest` from each configured peer in turn. The caller
/// holds a pin on `digest`, so a successful insert cannot be evicted
/// before the analysis that wanted it runs. Returns true once the trace
/// is resident locally.
fn fetch_from_peers(shared: &Shared, digest: TraceDigest) -> bool {
    let _fetch_span = shared.obs.spans.as_ref().map(|s| s.start(Stage::PeerFetch));
    for peer in &shared.peers {
        let Ok(mut client) = Client::connect(peer.as_str()) else {
            continue;
        };
        let Ok(Response::TraceData { digest: got, trace }) =
            client.call(&Request::Fetch { digest })
        else {
            continue;
        };
        if got != digest {
            continue;
        }
        // `expected` re-digests the bytes on ingest: a lying or corrupt
        // peer cannot poison the store.
        if shared
            .store
            .insert_stream(&mut &trace[..], trace.len() as u64, Some(digest))
            .is_ok()
        {
            shared.counters.fetches.inc();
            return true;
        }
    }
    false
}

fn analyze(
    shared: &Shared,
    client: &str,
    digest: TraceDigest,
    engine: EngineKind,
    wait: bool,
) -> Response {
    // Pin before the existence check: eviction between "is it there" and
    // the worker opening the file would turn a valid request into a
    // spurious failure. Pinning an absent digest is harmless — and for
    // the peer-fetch path below it is load-bearing, guaranteeing the
    // fetched bytes cannot be evicted before the replay runs.
    shared.store.pin(digest);
    // Verdicts are content-addressed, so a cache hit never needs the
    // trace bytes — not even when the digest was evicted (or would have
    // to be peer-fetched). Check the cache before touching the store.
    let key = VerdictKey { digest, engine };
    if let Some(v) = shared.cache.get(&key) {
        shared.counters.cache_hits.inc();
        shared.store.unpin(digest);
        return verdict_response(shared, digest, engine, true, &v);
    }
    if !shared.store.contains(digest)
        && (shared.peers.is_empty() || !fetch_from_peers(shared, digest))
    {
        shared.store.unpin(digest);
        return error_response(
            error_code::UNKNOWN_DIGEST,
            format!("trace {digest} not in store; SUBMIT it first"),
        );
    }
    shared.counters.cache_misses.inc();
    match shared.queue.submit(key, client) {
        Admission::Rejected { retry_millis } => {
            shared.store.unpin(digest);
            shared
                .obs
                .journal
                .record("retry_after", format!("client={client} digest={digest}"));
            Response::RetryAfter {
                millis: retry_millis,
            }
        }
        Admission::Closed => {
            shared.store.unpin(digest);
            Response::ShuttingDown
        }
        Admission::Admitted { job, new } => {
            // A newly created job inherits this thread's pin; the worker
            // releases it after completing. An attachment rides on the
            // creator's pin, so this thread's pin is surplus.
            if !new {
                shared.store.unpin(digest);
            }
            if !wait {
                return Response::Pending { job };
            }
            match shared.queue.wait(job) {
                Some(JobState::Done(v)) => verdict_response(shared, digest, engine, false, &v),
                Some(JobState::Failed(e)) => error_response(error_code::INTERNAL, e),
                _ => error_response(error_code::INTERNAL, "job vanished"),
            }
        }
    }
}
