//! The `clean-serve` daemon: a thread-per-connection TCP server over the
//! [`crate::protocol`] frames, gluing together the trace store, verdict
//! cache, and job queue.
//!
//! Thread layout:
//!
//! * one **accept** thread turning connections into connection threads,
//! * one **connection** thread per client, decoding request frames and
//!   answering synchronously,
//! * a pool of **worker** threads draining the job queue through the
//!   offline replay engines.
//!
//! A "client" for admission-control purposes is one connection (peer
//! address including port): per-client caps bound what a single
//! connection can hold in flight.
//!
//! Graceful shutdown (`SHUTDOWN` frame or [`ServerHandle::shutdown`])
//! closes the queue to new work but *drains* what was admitted: workers
//! finish every queued job (waiting clients get their verdicts), then
//! lingering connections are disconnected and all threads joined.

use crate::cache::{Verdict, VerdictCache, VerdictKey};
use crate::protocol::{error_code, Request, Response, StatsReply, WireRace};
use crate::queue::{Admission, JobQueue, JobState};
use crate::store::TraceStore;
use clean_trace::{read_trace, replay_file_stealing, replay_sharded, EngineKind, TraceDigest};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Directory for the content-addressed trace store.
    pub store_dir: PathBuf,
    /// Store byte bound (`u64::MAX` = unbounded).
    pub store_max_bytes: u64,
    /// Max queued-not-running jobs before load shedding.
    pub queue_cap: usize,
    /// Max unfinished jobs one connection may hold.
    pub per_client_cap: usize,
    /// Retry hint handed to shed clients, in milliseconds.
    pub retry_millis: u64,
    /// Worker threads replaying jobs.
    pub workers: usize,
    /// Shards for the replay engines.
    pub shards: usize,
    /// Traces at or above this many bytes replay via the streaming
    /// work-stealing engine instead of being read fully into memory.
    pub stream_threshold: u64,
}

impl ServerConfig {
    /// Defaults: loopback ephemeral port, 1 GiB store, 64-job queue,
    /// 8 jobs per client, 100 ms retry hint, workers/shards from
    /// available parallelism, 8 MiB streaming threshold.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            store_max_bytes: 1 << 30,
            queue_cap: 64,
            per_client_cap: 8,
            retry_millis: 100,
            workers: cores.clamp(1, 8),
            shards: cores.clamp(1, 8),
            stream_threshold: 8 << 20,
        }
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the store byte bound.
    pub fn store_max_bytes(mut self, bytes: u64) -> Self {
        self.store_max_bytes = bytes;
        self
    }

    /// Sets the queue cap.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the per-client in-flight cap.
    pub fn per_client_cap(mut self, cap: usize) -> Self {
        self.per_client_cap = cap;
        self
    }

    /// Sets the retry hint.
    pub fn retry_millis(mut self, millis: u64) -> Self {
        self.retry_millis = millis;
        self
    }

    /// Sets the worker-pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the replay shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Counters that live outside store and queue.
#[derive(Debug, Default)]
struct ServiceCounters {
    submits: AtomicU64,
    submit_dedup_hits: AtomicU64,
    analyzes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// State shared by every server thread.
#[derive(Debug)]
struct Shared {
    store: TraceStore,
    cache: VerdictCache,
    queue: JobQueue,
    counters: ServiceCounters,
    shards: usize,
    stream_threshold: u64,
    /// Set once shutdown begins; checked by the accept loop and by
    /// connection threads before admitting new work.
    draining: AtomicBool,
    /// Condvar'd mirror of `draining` so a foreground daemon can block
    /// in [`ServerHandle::wait_until_draining`] instead of polling.
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
    addr: SocketAddr,
    /// Live connection sockets (clones keyed by connection id), so the
    /// drain can unblock parked readers. Entries are removed when their
    /// connection thread exits — a lingering clone would hold the TCP
    /// connection open after the server side is done with it.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn stats_reply(&self) -> StatsReply {
        let store = self.store.stats();
        let (jobs_completed, jobs_rejected) = self.queue.counters();
        StatsReply {
            submits: self.counters.submits.load(Ordering::Relaxed),
            submit_dedup_hits: self.counters.submit_dedup_hits.load(Ordering::Relaxed),
            analyzes: self.counters.analyzes.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            jobs_completed,
            jobs_rejected,
            store_traces: store.traces,
            store_bytes: store.bytes,
            store_evictions: store.evictions,
        }
    }

    /// Replays `digest` under `engine` — the worker body.
    fn run_job(&self, digest: TraceDigest, engine: EngineKind) -> Result<Verdict, String> {
        let key = VerdictKey { digest, engine };
        // A verdict may have landed while this job sat queued (another
        // engine run, or an earlier identical job): never replay twice.
        if let Some(v) = self.cache.get(&key) {
            return Ok(v);
        }
        let Some(path) = self.store.path_of(digest) else {
            return Err(format!("trace {digest} no longer in store"));
        };
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let verdict = if bytes >= self.stream_threshold {
            let workers = self.shards.clamp(1, 4);
            let (races, stats) =
                replay_file_stealing(&path, engine, self.shards, workers, 2 * workers)
                    .map_err(|e| e.to_string())?;
            Verdict {
                races,
                events: stats.events,
            }
        } else {
            let events = read_trace(&path).map_err(|e| e.to_string())?;
            let races = replay_sharded(&events, engine, self.shards);
            Verdict {
                races,
                events: events.len() as u64,
            }
        };
        self.cache.insert(key, verdict.clone());
        Ok(verdict)
    }
}

/// Handle to a running server: address, shutdown, join.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts a graceful drain, as if a `SHUTDOWN` frame arrived.
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until someone initiates shutdown (a `SHUTDOWN` frame or
    /// [`ServerHandle::shutdown`]) — the foreground daemon's park.
    pub fn wait_until_draining(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drain_cv.wait(&mut flag);
        }
    }

    /// Drains and joins every server thread. Idempotent with
    /// [`ServerHandle::shutdown`]; called from `Drop` as a safety net.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        begin_drain(&self.shared);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Workers exit once the queue is closed *and* drained — every
        // admitted job has completed by the time these joins return.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Now unblock any connection thread still parked in a read and
        // join them all.
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        loop {
            let Some(h) = self.conn_threads.lock().pop() else {
                break;
            };
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Flags the server as draining, closes the queue, and pokes the accept
/// loop awake with a throwaway connection.
fn begin_drain(shared: &Shared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    *shared.drain_flag.lock() = true;
    shared.drain_cv.notify_all();
    let _ = TcpStream::connect(shared.addr);
}

/// The `clean-serve` service.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Bind/listen failures or store-open failures.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener =
            TcpListener::bind(
                config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "bad bind address")
                })?,
            )?;
        let addr = listener.local_addr()?;
        let store = TraceStore::open(&config.store_dir, config.store_max_bytes)?;
        let shared = Arc::new(Shared {
            store,
            cache: VerdictCache::new(),
            queue: JobQueue::new(config.queue_cap, config.per_client_cap, config.retry_millis),
            counters: ServiceCounters::default(),
            shards: config.shards,
            stream_threshold: config.stream_threshold,
            draining: AtomicBool::new(false),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
            addr,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clean-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("clean-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            conn_threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Best effort: tell the late arrival we are going away.
            let mut w = BufWriter::new(&stream);
            let _ = Response::ShuttingDown.write(&mut w);
            break;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("clean-serve-conn-{peer}"))
            .spawn(move || {
                connection_loop(stream, peer, &shared);
                // Drop the drain clone too, or the TCP connection stays
                // half-open after this thread is done serving it.
                shared.conns.lock().remove(&conn_id);
            })
            .expect("spawn connection thread");
        conn_threads.lock().push(handle);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.next_job() {
        let result = shared.run_job(job.key.digest, job.key.engine);
        shared.queue.complete(job.id, result);
        shared.store.unpin(job.key.digest);
    }
}

fn error_response(code: u8, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn verdict_response(
    digest: TraceDigest,
    engine: EngineKind,
    cached: bool,
    v: &Verdict,
) -> Response {
    Response::Verdict {
        digest,
        engine,
        cached,
        races: v.races.iter().map(WireRace::from_found).collect(),
        events: v.events,
    }
}

fn connection_loop(stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let client = peer.to_string();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::read(&mut reader) {
            Ok(Some(req)) => req,
            // Clean disconnect, or the drain shut the socket down.
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol error: report and drop the connection — after
                // a framing error the stream position is unreliable.
                let _ = error_response(error_code::BAD_FRAME, e.to_string()).write(&mut writer);
                break;
            }
            Err(_) => break,
        };
        let response = handle_request(shared, &client, request);
        if response.write(&mut writer).is_err() {
            break;
        }
    }
}

fn handle_request(shared: &Shared, client: &str, request: Request) -> Response {
    match request {
        Request::Submit { trace } => {
            if shared.draining.load(Ordering::SeqCst) {
                return Response::ShuttingDown;
            }
            match shared.store.insert(&trace) {
                Ok(stored) => {
                    shared.counters.submits.fetch_add(1, Ordering::Relaxed);
                    if stored.dedup {
                        shared
                            .counters
                            .submit_dedup_hits
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Submitted {
                        digest: stored.digest,
                        dedup: stored.dedup,
                        bytes: stored.bytes,
                    }
                }
                Err(e) => error_response(e.code(), e.to_string()),
            }
        }
        Request::Analyze {
            digest,
            engine,
            wait,
        } => {
            shared.counters.analyzes.fetch_add(1, Ordering::Relaxed);
            analyze(shared, client, digest, engine, wait)
        }
        Request::Status { job } => match shared.queue.status(job) {
            None => error_response(error_code::UNKNOWN_JOB, format!("unknown job {job}")),
            Some(JobState::Queued | JobState::Running) => Response::Pending { job },
            Some(JobState::Done(v)) => verdict_response_for_job(shared, job, &v),
            Some(JobState::Failed(e)) => error_response(error_code::INTERNAL, e),
        },
        Request::Stats => Response::Stats(shared.stats_reply()),
        Request::Shutdown => {
            begin_drain(shared);
            Response::ShuttingDown
        }
    }
}

/// Builds the VERDICT frame for a finished job id.
fn verdict_response_for_job(shared: &Shared, job: u64, v: &Verdict) -> Response {
    match shared.queue.job_key(job) {
        Some(key) => verdict_response(key.digest, key.engine, false, v),
        None => error_response(error_code::UNKNOWN_JOB, format!("unknown job {job}")),
    }
}

fn analyze(
    shared: &Shared,
    client: &str,
    digest: TraceDigest,
    engine: EngineKind,
    wait: bool,
) -> Response {
    // Pin before the existence check: eviction between "is it there" and
    // the worker opening the file would turn a valid request into a
    // spurious failure. Pinning an absent digest is harmless.
    shared.store.pin(digest);
    if !shared.store.contains(digest) {
        shared.store.unpin(digest);
        return error_response(
            error_code::UNKNOWN_DIGEST,
            format!("trace {digest} not in store; SUBMIT it first"),
        );
    }
    let key = VerdictKey { digest, engine };
    if let Some(v) = shared.cache.get(&key) {
        shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.store.unpin(digest);
        return verdict_response(digest, engine, true, &v);
    }
    shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    match shared.queue.submit(key, client) {
        Admission::Rejected { retry_millis } => {
            shared.store.unpin(digest);
            Response::RetryAfter {
                millis: retry_millis,
            }
        }
        Admission::Closed => {
            shared.store.unpin(digest);
            Response::ShuttingDown
        }
        Admission::Admitted { job, new } => {
            // A newly created job inherits this thread's pin; the worker
            // releases it after completing. An attachment rides on the
            // creator's pin, so this thread's pin is surplus.
            if !new {
                shared.store.unpin(digest);
            }
            if !wait {
                return Response::Pending { job };
            }
            match shared.queue.wait(job) {
                Some(JobState::Done(v)) => verdict_response(digest, engine, false, &v),
                Some(JobState::Failed(e)) => error_response(error_code::INTERNAL, e),
                _ => error_response(error_code::INTERNAL, "job vanished"),
            }
        }
    }
}
