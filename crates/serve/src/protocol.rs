//! The `CSRV` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame — request or response — is:
//!
//! ```text
//! [magic "CSRV" (4)] [version u8] [opcode u8] [body len u32 LE] [body]
//! ```
//!
//! Integers inside bodies are little-endian; trace digests travel as the
//! 16 big-endian bytes of [`TraceDigest::to_bytes`]. The protocol is
//! deliberately *synchronous*: one request frame in, one response frame
//! out, per round trip — connections are cheap (thread-per-connection,
//! no multiplexing) and clients can be written in a few dozen lines in
//! any language.
//!
//! Request opcodes sit below `0x80`, responses at or above it, so a
//! peer can spot a direction mix-up immediately.

use clean_baselines::{FoundRace, FullRaceKind};
use clean_core::ThreadId;
use clean_trace::{EngineKind, TraceDigest};
use std::io::{self, Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"CSRV";
/// Protocol version carried in every frame. Version 2 added the FETCH /
/// TRACE_DATA peer-replication frames and the fleet STATS counters;
/// version 3 added the POLICY suppression frames, the per-race
/// `suppressed` flag in VERDICT bodies, and the coalesce/suppression
/// STATS counters; version 4 added per-rule hit counters to the POLICY
/// reply (the audit trail behind `suppress prune`); version 5 added the
/// METRICS frames carrying the `CMET v1` text exposition.
pub const VERSION: u8 = 5;
/// Hard cap on a frame body (64 MiB) — submissions beyond this are
/// rejected before allocation, bounding per-connection memory.
pub const MAX_BODY: usize = 64 << 20;

/// Protocol error codes carried by [`Response::Error`].
pub mod error_code {
    /// Malformed or oversized frame.
    pub const BAD_FRAME: u8 = 1;
    /// A submitted byte stream was not a valid `CLTR` trace.
    pub const BAD_TRACE: u8 = 2;
    /// ANALYZE named a digest the store does not hold.
    pub const UNKNOWN_DIGEST: u8 = 3;
    /// STATUS named a job id the server does not know.
    pub const UNKNOWN_JOB: u8 = 4;
    /// Internal server failure (I/O, replay error).
    pub const INTERNAL: u8 = 5;
    /// A POLICY frame carried unparseable `CSUP` rules text.
    pub const BAD_POLICY: u8 = 6;
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a `CLTR` byte stream into the content-addressed store.
    Submit {
        /// The raw trace bytes (a complete `CLTR` stream).
        trace: Vec<u8>,
    },
    /// Request analysis of a stored trace under one engine.
    Analyze {
        /// Content address of the trace.
        digest: TraceDigest,
        /// Detector engine to replay through.
        engine: EngineKind,
        /// Block until the verdict is ready (otherwise a
        /// [`Response::Pending`] job handle comes back on a cache miss).
        wait: bool,
    },
    /// Poll a previously returned job handle.
    Status {
        /// Job id from [`Response::Pending`].
        job: u64,
    },
    /// Fetch the service counters.
    Stats,
    /// Begin graceful drain: finish queued jobs, then exit.
    Shutdown,
    /// Fetch the raw bytes of a stored trace — the peer-replication
    /// frame: a fleet node missing a digest pulls it from a peer, and
    /// content addressing makes the transfer self-verifying.
    Fetch {
        /// Content address of the wanted trace.
        digest: TraceDigest,
    },
    /// Read or replace the server's `CSUP` suppression policy.
    Policy {
        /// `None` reads the active policy; `Some(text)` parses the text,
        /// swaps it in, and persists it beside the store.
        set: Option<String>,
    },
    /// Fetch the full metrics exposition (`CMET v1` text). A router
    /// answers with its backends' expositions merged under `node`
    /// labels plus its own router-local metrics.
    Metrics,
}

/// One race in a verdict, in wire form (the lowest-address first race
/// per event index, as produced by `replay_sharded`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRace {
    /// Race kind.
    pub kind: FullRaceKind,
    /// Accessed address.
    pub addr: u64,
    /// Thread performing the racing access.
    pub current: u16,
    /// Thread that performed the earlier conflicting access.
    pub previous: u16,
    /// True if a `CSUP` suppression rule matched this race — it is
    /// served as a *warning* rather than a failure.
    pub suppressed: bool,
}

impl WireRace {
    /// Converts an engine-reported race to wire form (unsuppressed; the
    /// server flips [`WireRace::suppressed`] when a policy rule matches).
    pub fn from_found(r: &FoundRace) -> Self {
        WireRace {
            kind: r.kind,
            addr: r.addr as u64,
            current: r.current.raw(),
            previous: r.previous.raw(),
            suppressed: false,
        }
    }

    /// Converts back to the engine representation.
    pub fn to_found(self) -> FoundRace {
        FoundRace {
            kind: self.kind,
            addr: self.addr as usize,
            current: ThreadId::new(self.current),
            previous: ThreadId::new(self.previous),
        }
    }
}

/// The service counters reported by [`Response::Stats`], in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// SUBMIT requests accepted (valid traces, new or deduplicated).
    pub submits: u64,
    /// Submissions answered by an already-stored identical trace.
    pub submit_dedup_hits: u64,
    /// ANALYZE requests received.
    pub analyzes: u64,
    /// ANALYZE requests answered from the verdict cache.
    pub cache_hits: u64,
    /// ANALYZE requests that had to run (or join) a replay job.
    pub cache_misses: u64,
    /// Jobs completed by the worker pool.
    pub jobs_completed: u64,
    /// ANALYZE requests shed with retry-after (queue full or per-client
    /// cap exceeded).
    pub jobs_rejected: u64,
    /// ANALYZE requests that attached to an identical in-flight job
    /// instead of enqueueing a duplicate replay.
    pub jobs_coalesced: u64,
    /// Traces currently resident in the store.
    pub store_traces: u64,
    /// Bytes currently resident in the store.
    pub store_bytes: u64,
    /// Traces evicted by the LRU size bound since startup.
    pub store_evictions: u64,
    /// Frames forwarded to backends (router nodes only; zero on a
    /// plain `clean-serve` daemon).
    pub forwards: u64,
    /// Traces pulled from a peer via FETCH because a requested digest
    /// was missing locally.
    pub fetches: u64,
    /// Cache hits served by verdicts reloaded from the persisted
    /// verdict log (warm-restart hits).
    pub cache_persist_hits: u64,
    /// Races demoted to warnings by a matching `CSUP` suppression rule,
    /// counted once per race per served verdict.
    pub suppressed_hits: u64,
}

impl StatsReply {
    const COUNTERS: usize = 15;

    fn to_words(self) -> [u64; Self::COUNTERS] {
        [
            self.submits,
            self.submit_dedup_hits,
            self.analyzes,
            self.cache_hits,
            self.cache_misses,
            self.jobs_completed,
            self.jobs_rejected,
            self.jobs_coalesced,
            self.store_traces,
            self.store_bytes,
            self.store_evictions,
            self.forwards,
            self.fetches,
            self.cache_persist_hits,
            self.suppressed_hits,
        ]
    }

    fn from_words(w: [u64; Self::COUNTERS]) -> Self {
        StatsReply {
            submits: w[0],
            submit_dedup_hits: w[1],
            analyzes: w[2],
            cache_hits: w[3],
            cache_misses: w[4],
            jobs_completed: w[5],
            jobs_rejected: w[6],
            jobs_coalesced: w[7],
            store_traces: w[8],
            store_bytes: w[9],
            store_evictions: w[10],
            forwards: w[11],
            fetches: w[12],
            cache_persist_hits: w[13],
            suppressed_hits: w[14],
        }
    }

    /// Field-wise sum — how a router aggregates backend counters.
    pub fn merge(self, other: StatsReply) -> StatsReply {
        let a = self.to_words();
        let b = other.to_words();
        let mut out = [0u64; Self::COUNTERS];
        for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
            *o = x.wrapping_add(*y);
        }
        StatsReply::from_words(out)
    }
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The submitted trace is stored (or already was).
    Submitted {
        /// Content address of the trace.
        digest: TraceDigest,
        /// True if an identical trace was already stored.
        dedup: bool,
        /// Stored byte size.
        bytes: u64,
    },
    /// A finished verdict, fresh or cached.
    Verdict {
        /// Content address of the analyzed trace.
        digest: TraceDigest,
        /// Engine that produced the verdict.
        engine: EngineKind,
        /// True if served from the verdict cache without replaying.
        cached: bool,
        /// Races found (empty = clean).
        races: Vec<WireRace>,
        /// Events replayed.
        events: u64,
    },
    /// The analysis was queued; poll with [`Request::Status`].
    Pending {
        /// Job handle.
        job: u64,
    },
    /// Admission control shed the request; retry after the given delay.
    RetryAfter {
        /// Suggested back-off in milliseconds.
        millis: u64,
    },
    /// Service counters.
    Stats(StatsReply),
    /// The request failed.
    Error {
        /// One of [`error_code`].
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// The raw bytes of a stored trace, answering [`Request::Fetch`].
    /// The receiver re-digests the bytes before trusting them — the
    /// content address is the integrity check.
    TraceData {
        /// Content address the sender stored these bytes under.
        digest: TraceDigest,
        /// The complete `CLTR` byte stream.
        trace: Vec<u8>,
    },
    /// The metrics exposition, answering [`Request::Metrics`]: UTF-8
    /// `CMET v1` text (see `clean_obs::Snapshot`), including journal
    /// events as comment lines.
    Metrics {
        /// The exposition text, starting with the `# CMET v1` header.
        text: String,
    },
    /// The active suppression policy, answering [`Request::Policy`]
    /// (both the read and the set form — a set echoes what is now live).
    Policy {
        /// Number of parsed rules in the active policy.
        rules: u64,
        /// Races credited to each rule (first matching rule wins) since
        /// the policy was installed, parallel to its rules in file
        /// order. A POLICY set resets these to zero.
        hits: Vec<u64>,
        /// The policy source text (`CSUP v1` grammar).
        text: String,
    },
}

pub(crate) const OP_SUBMIT: u8 = 0x01;
const OP_ANALYZE: u8 = 0x02;
const OP_STATUS: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_FETCH: u8 = 0x06;
const OP_POLICY: u8 = 0x07;
const OP_METRICS: u8 = 0x08;

const OP_SUBMITTED: u8 = 0x81;
const OP_VERDICT: u8 = 0x82;
const OP_PENDING: u8 = 0x83;
const OP_RETRY_AFTER: u8 = 0x84;
const OP_STATS_REPLY: u8 = 0x85;
const OP_ERROR: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;
const OP_TRACE_DATA: u8 = 0x88;
const OP_POLICY_REPLY: u8 = 0x89;
const OP_METRICS_REPLY: u8 = 0x8A;

/// Engine wire codes (`EngineKind` ↔ u8).
pub fn engine_to_wire(kind: EngineKind) -> u8 {
    match kind {
        EngineKind::Clean => 0,
        EngineKind::FastTrack => 1,
        EngineKind::VcFull => 2,
        EngineKind::Tsan => 3,
    }
}

/// Inverse of [`engine_to_wire`].
pub fn engine_from_wire(code: u8) -> Option<EngineKind> {
    match code {
        0 => Some(EngineKind::Clean),
        1 => Some(EngineKind::FastTrack),
        2 => Some(EngineKind::VcFull),
        3 => Some(EngineKind::Tsan),
        _ => None,
    }
}

fn kind_to_wire(kind: FullRaceKind) -> u8 {
    match kind {
        FullRaceKind::Waw => 0,
        FullRaceKind::Raw => 1,
        FullRaceKind::War => 2,
    }
}

fn kind_from_wire(code: u8) -> Option<FullRaceKind> {
    match code {
        0 => Some(FullRaceKind::Waw),
        1 => Some(FullRaceKind::Raw),
        2 => Some(FullRaceKind::War),
        _ => None,
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame.
fn write_frame(w: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_BODY {
        return Err(bad(format!("frame body {} exceeds cap", body.len())));
    }
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION, opcode])?;
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A decoded frame header: what follows on the wire is `len` body bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame opcode.
    pub opcode: u8,
    /// Declared body length (already validated against [`MAX_BODY`]).
    pub len: usize,
}

/// Reads and validates one 10-byte frame header. `Ok(None)` on clean EOF
/// before the first byte (peer closed at a frame boundary). The body is
/// *not* consumed — large SUBMIT bodies can be streamed straight to disk
/// instead of being buffered.
///
/// # Errors
///
/// I/O errors, or `InvalidData` for bad magic/version/length. A timeout
/// (`WouldBlock`/`TimedOut`) with zero bytes read surfaces as the raw
/// I/O error so callers can treat an idle connection differently from a
/// mid-frame stall.
pub fn read_frame_header(r: &mut impl Read) -> io::Result<Option<FrameHeader>> {
    let mut header = [0u8; 10];
    let mut filled = 0;
    while filled < header.len() {
        let n = match r.read(&mut header[filled..]) {
            Ok(n) => n,
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(e);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(bad("timed out mid frame header"));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(bad("truncated frame header"));
        }
        filled += n;
    }
    if header[..4] != MAGIC {
        return Err(bad("bad frame magic"));
    }
    if header[4] != VERSION {
        return Err(bad(format!("unsupported protocol version {}", header[4])));
    }
    let opcode = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_BODY {
        return Err(bad(format!("frame body {len} exceeds cap")));
    }
    Ok(Some(FrameHeader { opcode, len }))
}

/// Reads the `len`-byte body following a [`FrameHeader`].
///
/// # Errors
///
/// I/O errors; a timeout mid-body becomes `InvalidData` (the stream
/// position is unrecoverable).
pub fn read_frame_body(r: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            bad("timed out mid frame body")
        } else {
            e
        }
    })?;
    Ok(body)
}

/// Reads one frame header + body. `Ok(None)` on clean EOF at a frame
/// boundary (peer closed the connection).
fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let Some(header) = read_frame_header(r)? else {
        return Ok(None);
    };
    let body = read_frame_body(r, header.len)?;
    Ok(Some((header.opcode, body)))
}

/// A little-endian body reader with length checking.
struct BodyReader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> BodyReader<'a> {
    fn new(body: &'a [u8]) -> Self {
        BodyReader { body, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or_else(|| bad("frame body too short"))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn digest(&mut self) -> io::Result<TraceDigest> {
        Ok(TraceDigest::from_bytes(
            self.bytes(16)?.try_into().expect("16"),
        ))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.body[self.at..];
        self.at = self.body.len();
        s
    }

    fn finish(self) -> io::Result<()> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame body"))
        }
    }
}

impl Request {
    /// Serializes the request as one frame.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying writer.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Request::Submit { trace } => write_frame(w, OP_SUBMIT, trace),
            Request::Analyze {
                digest,
                engine,
                wait,
            } => {
                let mut body = Vec::with_capacity(18);
                body.extend_from_slice(&digest.to_bytes());
                body.push(engine_to_wire(*engine));
                body.push(u8::from(*wait));
                write_frame(w, OP_ANALYZE, &body)
            }
            Request::Status { job } => write_frame(w, OP_STATUS, &job.to_le_bytes()),
            Request::Stats => write_frame(w, OP_STATS, &[]),
            Request::Shutdown => write_frame(w, OP_SHUTDOWN, &[]),
            Request::Fetch { digest } => write_frame(w, OP_FETCH, &digest.to_bytes()),
            Request::Policy { set } => {
                // Body: one mode byte (0 = read, 1 = set) + rules text.
                let mut body = Vec::with_capacity(1 + set.as_ref().map_or(0, String::len));
                match set {
                    None => body.push(0),
                    Some(text) => {
                        body.push(1);
                        body.extend_from_slice(text.as_bytes());
                    }
                }
                write_frame(w, OP_POLICY, &body)
            }
            Request::Metrics => write_frame(w, OP_METRICS, &[]),
        }
    }

    /// Decodes a request from an already-read frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for unknown opcodes or malformed bodies.
    pub fn from_frame(opcode: u8, body: &[u8]) -> io::Result<Request> {
        let mut b = BodyReader::new(body);
        let req = match opcode {
            OP_SUBMIT => Request::Submit {
                trace: b.rest().to_vec(),
            },
            OP_ANALYZE => {
                let digest = b.digest()?;
                let engine = engine_from_wire(b.u8()?).ok_or_else(|| bad("unknown engine"))?;
                let wait = b.u8()? != 0;
                Request::Analyze {
                    digest,
                    engine,
                    wait,
                }
            }
            OP_STATUS => Request::Status { job: b.u64()? },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_FETCH => Request::Fetch {
                digest: b.digest()?,
            },
            OP_POLICY => match b.u8()? {
                0 => {
                    if !b.rest().is_empty() {
                        return Err(bad("policy read carries no body"));
                    }
                    Request::Policy { set: None }
                }
                1 => Request::Policy {
                    set: Some(String::from_utf8_lossy(b.rest()).into_owned()),
                },
                other => return Err(bad(format!("unknown policy mode {other}"))),
            },
            OP_METRICS => Request::Metrics,
            other => return Err(bad(format!("unknown request opcode {other:#04x}"))),
        };
        b.finish()?;
        Ok(req)
    }

    /// Reads one request frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for malformed frames.
    pub fn read(r: &mut impl Read) -> io::Result<Option<Request>> {
        let Some((opcode, body)) = read_frame(r)? else {
            return Ok(None);
        };
        Ok(Some(Request::from_frame(opcode, &body)?))
    }
}

impl Response {
    /// Serializes the response as one frame.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying writer.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Response::Submitted {
                digest,
                dedup,
                bytes,
            } => {
                let mut body = Vec::with_capacity(25);
                body.extend_from_slice(&digest.to_bytes());
                body.push(u8::from(*dedup));
                body.extend_from_slice(&bytes.to_le_bytes());
                write_frame(w, OP_SUBMITTED, &body)
            }
            Response::Verdict {
                digest,
                engine,
                cached,
                races,
                events,
            } => {
                let mut body = Vec::with_capacity(30 + races.len() * 14);
                body.extend_from_slice(&digest.to_bytes());
                body.push(engine_to_wire(*engine));
                body.push(u8::from(*cached));
                body.extend_from_slice(&(races.len() as u32).to_le_bytes());
                for r in races {
                    body.push(kind_to_wire(r.kind));
                    body.extend_from_slice(&r.addr.to_le_bytes());
                    body.extend_from_slice(&r.current.to_le_bytes());
                    body.extend_from_slice(&r.previous.to_le_bytes());
                    body.push(u8::from(r.suppressed));
                }
                body.extend_from_slice(&events.to_le_bytes());
                write_frame(w, OP_VERDICT, &body)
            }
            Response::Pending { job } => write_frame(w, OP_PENDING, &job.to_le_bytes()),
            Response::RetryAfter { millis } => {
                write_frame(w, OP_RETRY_AFTER, &millis.to_le_bytes())
            }
            Response::Stats(stats) => {
                let mut body = Vec::with_capacity(8 * StatsReply::COUNTERS);
                for wd in stats.to_words() {
                    body.extend_from_slice(&wd.to_le_bytes());
                }
                write_frame(w, OP_STATS_REPLY, &body)
            }
            Response::Error { code, message } => {
                let mut body = Vec::with_capacity(1 + message.len());
                body.push(*code);
                body.extend_from_slice(message.as_bytes());
                write_frame(w, OP_ERROR, &body)
            }
            Response::ShuttingDown => write_frame(w, OP_SHUTTING_DOWN, &[]),
            Response::TraceData { digest, trace } => {
                let mut body = Vec::with_capacity(16 + trace.len());
                body.extend_from_slice(&digest.to_bytes());
                body.extend_from_slice(trace);
                write_frame(w, OP_TRACE_DATA, &body)
            }
            Response::Metrics { text } => write_frame(w, OP_METRICS_REPLY, text.as_bytes()),
            Response::Policy { rules, hits, text } => {
                if hits.len() as u64 != *rules {
                    return Err(bad("policy reply needs one hit counter per rule"));
                }
                let mut body = Vec::with_capacity(8 + 8 * hits.len() + text.len());
                body.extend_from_slice(&rules.to_le_bytes());
                for h in hits {
                    body.extend_from_slice(&h.to_le_bytes());
                }
                body.extend_from_slice(text.as_bytes());
                write_frame(w, OP_POLICY_REPLY, &body)
            }
        }
    }

    /// Reads one response frame; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for malformed frames.
    pub fn read(r: &mut impl Read) -> io::Result<Option<Response>> {
        let Some((opcode, body)) = read_frame(r)? else {
            return Ok(None);
        };
        let mut b = BodyReader::new(&body);
        let resp = match opcode {
            OP_SUBMITTED => Response::Submitted {
                digest: b.digest()?,
                dedup: b.u8()? != 0,
                bytes: b.u64()?,
            },
            OP_VERDICT => {
                let digest = b.digest()?;
                let engine = engine_from_wire(b.u8()?).ok_or_else(|| bad("unknown engine"))?;
                let cached = b.u8()? != 0;
                let count = b.u32()? as usize;
                // 14 bytes per race: reject counts the body cannot hold.
                if count > body.len() / 14 {
                    return Err(bad("race count exceeds frame body"));
                }
                let mut races = Vec::with_capacity(count);
                for _ in 0..count {
                    let kind = kind_from_wire(b.u8()?).ok_or_else(|| bad("unknown race kind"))?;
                    races.push(WireRace {
                        kind,
                        addr: b.u64()?,
                        current: b.u16()?,
                        previous: b.u16()?,
                        suppressed: b.u8()? != 0,
                    });
                }
                Response::Verdict {
                    digest,
                    engine,
                    cached,
                    races,
                    events: b.u64()?,
                }
            }
            OP_PENDING => Response::Pending { job: b.u64()? },
            OP_RETRY_AFTER => Response::RetryAfter { millis: b.u64()? },
            OP_STATS_REPLY => {
                let mut words = [0u64; StatsReply::COUNTERS];
                for wd in &mut words {
                    *wd = b.u64()?;
                }
                Response::Stats(StatsReply::from_words(words))
            }
            OP_ERROR => {
                let code = b.u8()?;
                let message = String::from_utf8_lossy(b.rest()).into_owned();
                Response::Error { code, message }
            }
            OP_SHUTTING_DOWN => Response::ShuttingDown,
            OP_TRACE_DATA => {
                let digest = b.digest()?;
                Response::TraceData {
                    digest,
                    trace: b.rest().to_vec(),
                }
            }
            OP_METRICS_REPLY => Response::Metrics {
                text: String::from_utf8_lossy(b.rest()).into_owned(),
            },
            OP_POLICY_REPLY => {
                let rules = b.u64()?;
                // 8 bytes per counter: reject counts the body cannot hold.
                if rules > (body.len() / 8) as u64 {
                    return Err(bad("policy rule count exceeds frame body"));
                }
                let mut hits = Vec::with_capacity(rules as usize);
                for _ in 0..rules {
                    hits.push(b.u64()?);
                }
                Response::Policy {
                    rules,
                    hits,
                    text: String::from_utf8_lossy(b.rest()).into_owned(),
                }
            }
            other => return Err(bad(format!("unknown response opcode {other:#04x}"))),
        };
        b.finish()?;
        Ok(Some(resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        let back = Request::read(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        let back = Response::read(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Submit {
            trace: vec![1, 2, 3, 4, 5],
        });
        roundtrip_request(Request::Submit { trace: vec![] });
        for engine in EngineKind::ALL {
            for wait in [false, true] {
                roundtrip_request(Request::Analyze {
                    digest: TraceDigest(0x0123_4567_89ab_cdef_0011_2233_4455_6677),
                    engine,
                    wait,
                });
            }
        }
        roundtrip_request(Request::Status { job: u64::MAX });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Fetch {
            digest: TraceDigest(0xffee_ddcc_bbaa_0099_8877_6655_4433_2211),
        });
        roundtrip_request(Request::Policy { set: None });
        roundtrip_request(Request::Policy {
            set: Some("CSUP v1\ndigest 000000000000000000000000000000ff\n".into()),
        });
        roundtrip_request(Request::Policy {
            set: Some(String::new()),
        });
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Submitted {
            digest: TraceDigest(42),
            dedup: true,
            bytes: 123_456,
        });
        roundtrip_response(Response::Verdict {
            digest: TraceDigest(7),
            engine: EngineKind::Clean,
            cached: true,
            races: vec![
                WireRace {
                    kind: FullRaceKind::Waw,
                    addr: 0xdead_beef,
                    current: 3,
                    previous: 1,
                    suppressed: false,
                },
                WireRace {
                    kind: FullRaceKind::War,
                    addr: 64,
                    current: 0,
                    previous: 2,
                    suppressed: true,
                },
            ],
            events: 1 << 40,
        });
        roundtrip_response(Response::Verdict {
            digest: TraceDigest(0),
            engine: EngineKind::Tsan,
            cached: false,
            races: vec![],
            events: 0,
        });
        roundtrip_response(Response::Pending { job: 9 });
        roundtrip_response(Response::RetryAfter { millis: 250 });
        roundtrip_response(Response::Stats(StatsReply {
            submits: 1,
            submit_dedup_hits: 2,
            analyzes: 3,
            cache_hits: 4,
            cache_misses: 5,
            jobs_completed: 6,
            jobs_rejected: 7,
            jobs_coalesced: 8,
            store_traces: 9,
            store_bytes: 10,
            store_evictions: 11,
            forwards: 12,
            fetches: 13,
            cache_persist_hits: 14,
            suppressed_hits: 15,
        }));
        roundtrip_response(Response::Error {
            code: error_code::BAD_TRACE,
            message: "not a trace".into(),
        });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::TraceData {
            digest: TraceDigest(77),
            trace: vec![0xCA, 0xFE, 0x00, 0x42],
        });
        roundtrip_response(Response::TraceData {
            digest: TraceDigest(0),
            trace: vec![],
        });
        roundtrip_response(Response::Policy {
            rules: 3,
            hits: vec![5, 0, 1 << 33],
            text: "CSUP v1\naddr 0..ff waw\n".into(),
        });
        roundtrip_response(Response::Policy {
            rules: 0,
            hits: vec![],
            text: String::new(),
        });
        roundtrip_response(Response::Metrics {
            text: "# CMET v1\ncounter serve_requests_total 9\n".into(),
        });
        roundtrip_response(Response::Metrics {
            text: String::new(),
        });
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let a = StatsReply {
            submits: 3,
            fetches: 1,
            forwards: 2,
            ..Default::default()
        };
        let b = StatsReply {
            submits: 4,
            cache_persist_hits: 5,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.submits, 7);
        assert_eq!(m.fetches, 1);
        assert_eq!(m.forwards, 2);
        assert_eq!(m.cache_persist_hits, 5);
        assert_eq!(m.analyzes, 0);
        let c = StatsReply {
            jobs_coalesced: 4,
            suppressed_hits: 6,
            ..Default::default()
        };
        let m2 = m.merge(c);
        assert_eq!(m2.jobs_coalesced, 4);
        assert_eq!(m2.suppressed_hits, 6);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(Request::read(&mut [].as_slice()).unwrap(), None);
        assert_eq!(Response::read(&mut [].as_slice()).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Wrong magic.
        let mut buf = Vec::new();
        Request::Stats.write(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Wrong version.
        let mut buf = Vec::new();
        Request::Stats.write(&mut buf).unwrap();
        buf[4] = 99;
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Truncated header.
        assert!(Request::read(&mut MAGIC.as_slice()).is_err());
        // Truncated body.
        let mut buf = Vec::new();
        Request::Status { job: 1 }.write(&mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Unknown opcode.
        let mut buf = Vec::new();
        Request::Stats.write(&mut buf).unwrap();
        buf[5] = 0x7f;
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Trailing garbage inside the declared body.
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_STATUS, &[0u8; 12]).unwrap();
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Oversized declared body length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(OP_SUBMIT);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Verdict whose race count cannot fit its body.
        let mut body = Vec::new();
        body.extend_from_slice(&TraceDigest(1).to_bytes());
        body.push(0); // engine
        body.push(0); // cached
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_VERDICT, &body).unwrap();
        assert!(Response::read(&mut buf.as_slice()).is_err());
        // Policy frame with an unknown mode byte.
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_POLICY, &[9]).unwrap();
        assert!(Request::read(&mut buf.as_slice()).is_err());
        // Policy read must not carry trailing text.
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_POLICY, b"\x00junk").unwrap();
        assert!(Request::read(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn engine_codes_roundtrip() {
        for engine in EngineKind::ALL {
            assert_eq!(engine_from_wire(engine_to_wire(engine)), Some(engine));
        }
        assert_eq!(engine_from_wire(200), None);
    }
}
