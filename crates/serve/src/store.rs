//! Content-addressed on-disk trace store with a size-bounded LRU.
//!
//! Each stored trace lives at `<root>/<digest:032x>.cltr`; the digest is
//! the chunk-size-independent [`clean_trace::digest_events`] identity, so
//! re-encodings of the same event sequence share one entry. A plain-text
//! index file (`<root>/index`) records recency:
//!
//! ```text
//! CSTORE v1
//! <digest hex> <bytes> <seq>
//! ...
//! ```
//!
//! `seq` is a monotonic access counter — the line with the smallest seq
//! is the least recently used entry and the first eviction victim when
//! the byte bound is exceeded. The index is rewritten atomically
//! (temp file + rename); recovery after a crash parses every valid line,
//! ignores a torn tail, and reconciles against the trace files actually
//! on disk, so a stale or truncated index can only cost recency
//! information, never stored traces.

use crate::protocol::error_code;
use clean_trace::{Digester, TraceDigest, TraceReader};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Index file name under the store root.
const INDEX_FILE: &str = "index";
/// Index header line.
const INDEX_HEADER: &str = "CSTORE v1";
/// Stored trace file extension.
const TRACE_EXT: &str = "cltr";

/// Why a submission was refused.
#[derive(Debug)]
pub enum StoreError {
    /// The submitted bytes are not a decodable `CLTR` trace.
    BadTrace(String),
    /// Filesystem failure.
    Io(io::Error),
}

impl StoreError {
    /// The protocol error code this maps to.
    pub fn code(&self) -> u8 {
        match self {
            StoreError::BadTrace(_) => error_code::BAD_TRACE,
            StoreError::Io(_) => error_code::INTERNAL,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadTrace(m) => write!(f, "invalid trace: {m}"),
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result of [`TraceStore::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredTrace {
    /// Content address of the trace.
    pub digest: TraceDigest,
    /// True if an identical trace was already resident.
    pub dedup: bool,
    /// Size of the resident encoding in bytes (the first-stored
    /// encoding wins under dedup).
    pub bytes: u64,
    /// Events in the trace.
    pub events: u64,
}

/// A point-in-time view of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Traces currently resident.
    pub traces: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// Evictions since the store was opened.
    pub evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: u64,
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<TraceDigest, Entry>,
    /// In-analysis digests that must not be evicted.
    pinned: HashMap<TraceDigest, usize>,
    next_seq: u64,
    evictions: u64,
}

impl Inner {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }
}

/// The digest-addressed trace store.
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    /// Byte bound the LRU enforces; `u64::MAX` disables eviction.
    max_bytes: u64,
    inner: Mutex<Inner>,
}

fn trace_file_name(digest: TraceDigest) -> String {
    format!("{digest}.{TRACE_EXT}")
}

/// Parses one `<hex> <bytes> <seq>` index line.
fn parse_index_line(line: &str) -> Option<(TraceDigest, Entry)> {
    let mut parts = line.split_ascii_whitespace();
    let digest: TraceDigest = parts.next()?.parse().ok()?;
    let bytes: u64 = parts.next()?.parse().ok()?;
    let seq: u64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((digest, Entry { bytes, seq }))
}

impl TraceStore {
    /// Opens (or creates) a store rooted at `root`, holding at most
    /// `max_bytes` of trace data (`u64::MAX` = unbounded). Recovers the
    /// LRU index from disk, reconciling it with the trace files present.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the root or scanning it.
    pub fn open(root: impl Into<PathBuf>, max_bytes: u64) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;

        // Index entries: best effort, a torn tail or missing file is fine.
        let mut entries = HashMap::new();
        let mut max_seq = 0u64;
        if let Ok(text) = fs::read_to_string(root.join(INDEX_FILE)) {
            let mut lines = text.lines();
            if lines.next() == Some(INDEX_HEADER) {
                for line in lines {
                    if let Some((digest, entry)) = parse_index_line(line) {
                        max_seq = max_seq.max(entry.seq);
                        entries.insert(digest, entry);
                    }
                }
            }
        }

        // Ground truth: the trace files on disk. Files missing from the
        // index get fresh recency; index lines without a file are dropped.
        let mut on_disk = HashSet::new();
        for dirent in fs::read_dir(&root)? {
            let dirent = dirent?;
            let path = dirent.path();
            // Staged ingests from a crashed process are garbage.
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                let _ = fs::remove_file(&path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(TRACE_EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(digest) = stem.parse::<TraceDigest>() else {
                continue;
            };
            let bytes = dirent.metadata()?.len();
            on_disk.insert(digest);
            match entries.get_mut(&digest) {
                // Trust the file size over a stale index line.
                Some(entry) => entry.bytes = bytes,
                None => {
                    max_seq += 1;
                    entries.insert(
                        digest,
                        Entry {
                            bytes,
                            seq: max_seq,
                        },
                    );
                }
            }
        }
        entries.retain(|digest, _| on_disk.contains(digest));

        let store = TraceStore {
            root,
            max_bytes,
            inner: Mutex::new(Inner {
                entries,
                pinned: HashMap::new(),
                next_seq: max_seq + 1,
                evictions: 0,
            }),
        };
        {
            let inner = store.inner.lock();
            store.write_index(&inner)?;
        }
        Ok(store)
    }

    /// Validates `trace` as a `CLTR` stream, computes its content
    /// digest, and stores it (deduplicating on digest). May evict
    /// least-recently-used unpinned entries to respect the byte bound.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadTrace`] if the bytes do not decode;
    /// [`StoreError::Io`] on filesystem failure.
    pub fn insert(&self, trace: &[u8]) -> Result<StoredTrace, StoreError> {
        self.insert_stream(&mut &trace[..], trace.len() as u64, None)
    }

    /// Streams exactly `len` bytes from `src` into the store: the bytes
    /// are copied to a uniquely named temp file as they arrive, decoded
    /// *from disk* through the incremental [`Digester`] (the submission
    /// is never buffered in memory), and renamed to their content
    /// address — so a 64 MiB upload costs one file write, not one file
    /// write plus a 64 MiB allocation.
    ///
    /// `expected` is the self-verification hook for peer replication: if
    /// the decoded content digests to anything else, the bytes are
    /// discarded and the insert fails — a peer cannot poison the store
    /// with mislabeled content.
    ///
    /// The full `len` bytes are always consumed from `src` (unless I/O
    /// fails), so a protocol framing layer above survives a rejected
    /// body.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadTrace`] if the bytes do not decode or miss
    /// `expected`; [`StoreError::Io`] on filesystem failure or a short
    /// read from `src`.
    pub fn insert_stream(
        &self,
        src: &mut impl Read,
        len: u64,
        expected: Option<TraceDigest>,
    ) -> Result<StoredTrace, StoreError> {
        static INGEST_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.root.join(format!(
            ".ingest-{}-{}.tmp",
            std::process::id(),
            INGEST_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cleanup = |e: StoreError| {
            let _ = fs::remove_file(&tmp);
            e
        };

        let copied = {
            let mut file = io::BufWriter::new(fs::File::create(&tmp)?);
            let copied = io::copy(&mut src.take(len), &mut file).map_err(StoreError::Io);
            match copied.and_then(|n| file.flush().map(|()| n).map_err(StoreError::Io)) {
                Ok(n) => n,
                Err(e) => return Err(cleanup(e)),
            }
        };
        if copied < len {
            return Err(cleanup(StoreError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("submission truncated at {copied} of {len} bytes"),
            ))));
        }

        // Decode from the temp file: the digest doubles as proof the
        // stream is intact (framing, CRCs, event payloads).
        let (digest, events) = match Self::digest_tmp(&tmp) {
            Ok(pair) => pair,
            Err(e) => return Err(cleanup(e)),
        };
        if let Some(want) = expected {
            if digest != want {
                return Err(cleanup(StoreError::BadTrace(format!(
                    "content digests to {digest}, expected {want}"
                ))));
            }
        }

        let mut inner = self.inner.lock();
        let next = inner.next_seq;
        if let Some(entry) = inner.entries.get_mut(&digest) {
            entry.seq = next;
            let bytes = entry.bytes;
            inner.next_seq += 1;
            let _ = fs::remove_file(&tmp);
            self.write_index(&inner)?;
            return Ok(StoredTrace {
                digest,
                dedup: true,
                bytes,
                events,
            });
        }

        fs::rename(&tmp, self.trace_path(digest))?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.insert(digest, Entry { bytes: len, seq });
        self.evict_locked(&mut inner)?;
        self.write_index(&inner)?;
        Ok(StoredTrace {
            digest,
            dedup: false,
            bytes: len,
            events,
        })
    }

    /// Decodes a staged temp file, returning its content digest and
    /// event count.
    fn digest_tmp(path: &Path) -> Result<(TraceDigest, u64), StoreError> {
        let reader = TraceReader::open(path).map_err(|e| StoreError::BadTrace(e.to_string()))?;
        let mut digester = Digester::new();
        let mut events = 0u64;
        for ev in reader {
            let ev = ev.map_err(|e| StoreError::BadTrace(e.to_string()))?;
            digester.update(&ev);
            events += 1;
        }
        Ok((digester.finish(), events))
    }

    /// Returns the on-disk path of `digest` and refreshes its recency,
    /// or `None` if the store does not hold it.
    pub fn path_of(&self, digest: TraceDigest) -> Option<PathBuf> {
        let mut inner = self.inner.lock();
        let next = inner.next_seq;
        let entry = inner.entries.get_mut(&digest)?;
        entry.seq = next;
        inner.next_seq += 1;
        // Recency refreshes are not durable until the next insert —
        // losing them in a crash only perturbs eviction order.
        Some(self.trace_path(digest))
    }

    /// Whether the store currently holds `digest`.
    pub fn contains(&self, digest: TraceDigest) -> bool {
        self.inner.lock().entries.contains_key(&digest)
    }

    /// Marks `digest` in-analysis: pinned entries are never evicted.
    pub fn pin(&self, digest: TraceDigest) {
        *self.inner.lock().pinned.entry(digest).or_insert(0) += 1;
    }

    /// Releases one [`TraceStore::pin`].
    pub fn unpin(&self, digest: TraceDigest) {
        let mut inner = self.inner.lock();
        if let Some(count) = inner.pinned.get_mut(&digest) {
            *count -= 1;
            if *count == 0 {
                inner.pinned.remove(&digest);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            traces: inner.entries.len() as u64,
            bytes: inner.total_bytes(),
            evictions: inner.evictions,
        }
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn trace_path(&self, digest: TraceDigest) -> PathBuf {
        self.root.join(trace_file_name(digest))
    }

    /// Evicts least-recently-used unpinned entries until the byte bound
    /// holds (or only pinned entries remain).
    fn evict_locked(&self, inner: &mut Inner) -> io::Result<()> {
        while inner.total_bytes() > self.max_bytes {
            let victim = inner
                .entries
                .iter()
                .filter(|(digest, _)| !inner.pinned.contains_key(digest))
                .min_by_key(|(_, entry)| entry.seq)
                .map(|(digest, _)| *digest);
            let Some(victim) = victim else {
                break; // everything left is pinned
            };
            inner.entries.remove(&victim);
            inner.evictions += 1;
            match fs::remove_file(self.trace_path(victim)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Rewrites the index atomically from the in-memory state.
    fn write_index(&self, inner: &Inner) -> io::Result<()> {
        let mut text = String::with_capacity(32 + inner.entries.len() * 64);
        text.push_str(INDEX_HEADER);
        text.push('\n');
        let mut lines: Vec<_> = inner.entries.iter().collect();
        lines.sort_by_key(|(_, entry)| entry.seq);
        for (digest, entry) in lines {
            text.push_str(&format!("{digest} {} {}\n", entry.bytes, entry.seq));
        }
        let tmp = self.root.join("index.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(INDEX_FILE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_core::{ThreadId, TraceEvent};
    use clean_trace::encode_trace;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clean-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_events(seed: u64) -> Vec<TraceEvent> {
        // Two threads write disjoint, seed-dependent addresses: distinct
        // seeds yield distinct digests.
        (0..16)
            .map(|i| TraceEvent::Write {
                tid: ThreadId::new((i % 2) as u16),
                addr: ((seed as usize) << 12) + 64 + 8 * (i as usize),
                size: 8,
            })
            .collect()
    }

    fn sample_trace(seed: u64) -> Vec<u8> {
        encode_trace(&sample_events(seed)).unwrap()
    }

    #[test]
    fn insert_then_dedup() {
        let root = temp_root("dedup");
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        let trace = sample_trace(1);
        let first = store.insert(&trace).unwrap();
        assert!(!first.dedup);
        let second = store.insert(&trace).unwrap();
        assert!(second.dedup);
        assert_eq!(second.digest, first.digest);
        assert_eq!(store.stats().traces, 1);
        assert!(store.path_of(first.digest).unwrap().is_file());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let root = temp_root("garbage");
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        assert!(matches!(
            store.insert(b"not a trace"),
            Err(StoreError::BadTrace(_))
        ));
        // A truncated valid prefix must also be rejected.
        let trace = sample_trace(2);
        assert!(matches!(
            store.insert(&trace[..trace.len() - 4]),
            Err(StoreError::BadTrace(_))
        ));
        assert_eq!(store.stats().traces, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lru_eviction_under_small_cap() {
        let root = temp_root("lru");
        let traces: Vec<Vec<u8>> = (0..4).map(sample_trace).collect();
        let cap = traces.iter().map(|t| t.len() as u64).max().unwrap() * 2;
        let store = TraceStore::open(&root, cap).unwrap();
        let digests: Vec<TraceDigest> = traces
            .iter()
            .map(|t| store.insert(t).unwrap().digest)
            .collect();
        let stats = store.stats();
        assert!(stats.bytes <= cap, "{} > {cap}", stats.bytes);
        assert!(stats.evictions >= 2);
        // The newest trace always survives.
        assert!(store.contains(digests[3]));
        // Evicted files are really gone from disk.
        assert!(!store.trace_path(digests[0]).exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let root = temp_root("pin");
        let traces: Vec<Vec<u8>> = (0..3).map(sample_trace).collect();
        let cap = traces.iter().map(|t| t.len() as u64).max().unwrap();
        let store = TraceStore::open(&root, cap).unwrap();
        let first = store.insert(&traces[0]).unwrap().digest;
        store.pin(first);
        store.insert(&traces[1]).unwrap();
        store.insert(&traces[2]).unwrap();
        // Over budget is allowed while pins force it; the pinned trace
        // must still be resident.
        assert!(store.contains(first));
        store.unpin(first);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn index_recovery_after_truncation() {
        let root = temp_root("recover");
        let digests: Vec<TraceDigest>;
        {
            let store = TraceStore::open(&root, u64::MAX).unwrap();
            digests = (0..3)
                .map(|i| store.insert(&sample_trace(i)).unwrap().digest)
                .collect();
        }
        // Tear the index mid-line.
        let index = root.join(INDEX_FILE);
        let text = fs::read_to_string(&index).unwrap();
        fs::write(&index, &text[..text.len() - 7]).unwrap();

        let store = TraceStore::open(&root, u64::MAX).unwrap();
        let stats = store.stats();
        assert_eq!(stats.traces, 3, "all traces recovered from disk scan");
        for d in &digests {
            assert!(store.contains(*d));
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn index_recovery_with_missing_index() {
        let root = temp_root("noindex");
        let digest;
        {
            let store = TraceStore::open(&root, u64::MAX).unwrap();
            digest = store.insert(&sample_trace(9)).unwrap().digest;
        }
        fs::remove_file(root.join(INDEX_FILE)).unwrap();
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        assert!(store.contains(digest));
        assert_eq!(store.stats().traces, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    /// No staged `.tmp` ingest files may outlive an insert, good or bad.
    fn assert_no_tmp_left(root: &Path) {
        for dirent in fs::read_dir(root).unwrap() {
            let path = dirent.unwrap().path();
            assert_ne!(
                path.extension().and_then(|e| e.to_str()),
                Some("tmp"),
                "leftover staged file {path:?}"
            );
        }
    }

    #[test]
    fn insert_stream_matches_buffered_insert() {
        let root = temp_root("stream");
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        let trace = sample_trace(21);
        let streamed = store
            .insert_stream(&mut &trace[..], trace.len() as u64, None)
            .unwrap();
        assert!(!streamed.dedup);
        assert_eq!(streamed.digest, digest_of(&trace));
        assert_eq!(streamed.bytes, trace.len() as u64);
        // The buffered path is the same path: it dedups.
        let buffered = store.insert(&trace).unwrap();
        assert!(buffered.dedup);
        assert_eq!(buffered.digest, streamed.digest);
        assert_no_tmp_left(&root);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn insert_stream_rejects_garbage_and_short_reads_without_litter() {
        let root = temp_root("streambad");
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        // Garbage bytes: BadTrace, temp file cleaned up.
        let garbage = b"definitely not CLTR".to_vec();
        assert!(matches!(
            store.insert_stream(&mut &garbage[..], garbage.len() as u64, None),
            Err(StoreError::BadTrace(_))
        ));
        // Source shorter than the declared length: Io, cleaned up.
        let trace = sample_trace(22);
        assert!(matches!(
            store.insert_stream(&mut &trace[..8], trace.len() as u64, None),
            Err(StoreError::Io(_))
        ));
        // Wrong expected digest (a lying peer): BadTrace, cleaned up.
        assert!(matches!(
            store.insert_stream(
                &mut &trace[..],
                trace.len() as u64,
                Some(TraceDigest(0x1234)),
            ),
            Err(StoreError::BadTrace(_))
        ));
        assert_eq!(store.stats().traces, 0);
        assert_no_tmp_left(&root);
        // The right expected digest passes.
        let stored = store
            .insert_stream(&mut &trace[..], trace.len() as u64, Some(digest_of(&trace)))
            .unwrap();
        assert_eq!(stored.digest, digest_of(&trace));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pin_of_absent_digest_protects_a_subsequent_insert() {
        // The peer-fetch ordering: pin first, then fetch + insert, so
        // the freshly fetched trace can never be evicted before the
        // analysis that wanted it runs.
        let root = temp_root("pinabsent");
        let traces: Vec<Vec<u8>> = (0..4).map(sample_trace).collect();
        let cap = traces.iter().map(|t| t.len() as u64).max().unwrap();
        let store = TraceStore::open(&root, cap).unwrap();
        let fetched = digest_of(&traces[0]);
        store.pin(fetched);
        store.insert(&traces[0]).unwrap();
        // Heavy churn: everything unpinned gets evicted, the pinned
        // fetch target survives.
        for t in &traces[1..] {
            store.insert(t).unwrap();
        }
        assert!(store.contains(fetched), "pinned fetch target evicted");
        store.unpin(fetched);
        // Once unpinned it is fair game again.
        store.insert(&traces[1]).unwrap();
        store.insert(&traces[2]).unwrap();
        assert!(!store.contains(fetched), "unpinned entry must be evictable");
        fs::remove_dir_all(&root).unwrap();
    }

    fn digest_of(trace: &[u8]) -> TraceDigest {
        let reader = TraceReader::new(trace).unwrap();
        let mut d = Digester::new();
        for ev in reader {
            d.update(&ev.unwrap());
        }
        d.finish()
    }

    #[test]
    fn digest_is_identical_to_offline_digest() {
        let root = temp_root("digestmatch");
        let store = TraceStore::open(&root, u64::MAX).unwrap();
        let events = sample_events(3);
        let stored = store.insert(&encode_trace(&events).unwrap()).unwrap();
        assert_eq!(stored.digest, clean_trace::digest_events(&events));
        assert_eq!(stored.events, events.len() as u64);
        fs::remove_dir_all(&root).unwrap();
    }
}
