//! # clean-serve
//!
//! A concurrent race-analysis *service* over the offline replay engines
//! of [`clean_trace`]: submit a recorded `CLTR` trace once, analyze it
//! under any detector engine from anywhere, and let the service dedupe
//! storage and memoize verdicts.
//!
//! The moving parts:
//!
//! * [`protocol`] — the `CSRV` length-prefixed binary frame protocol
//!   (SUBMIT / ANALYZE / STATUS / STATS / SHUTDOWN, plus the FETCH
//!   peer-replication frame),
//! * [`store`] — a digest-addressed on-disk trace store with a
//!   size-bounded LRU, crash-tolerant index, and streaming ingestion,
//! * [`cache`] — the sharded `(digest, engine)` → verdict memo table,
//!   optionally durable beside the store,
//! * [`queue`] — the bounded, admission-controlled job queue that
//!   coalesces identical requests and sheds load with retry-after,
//! * [`policy`] — the `CSUP v1` race-suppression rules applied at
//!   verdict-classification time, demoting known-benign races to
//!   warnings,
//! * [`server`] — the bounded-concurrency TCP daemon wiring the three
//!   together over a replay worker pool, with peer FETCH for fleets,
//! * [`router`] — the `clean-fleet` front that shards requests by
//!   digest prefix across N backends with replication and failover,
//! * [`client`] — a blocking client for the protocol.
//!
//! The design premise is the same one that justifies the trace store in
//! the first place: a trace digest names an *immutable* event sequence,
//! and every replay engine is a deterministic function of it — so
//! verdicts are facts to be cached, storage deduplicates for free, and
//! concurrent identical requests can share one replay.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use clean_serve::server::{Server, ServerConfig};
//! use clean_serve::client::Client;
//! use clean_serve::protocol::Response;
//! use clean_core::{ThreadId, TraceEvent};
//! use clean_trace::{encode_trace, EngineKind};
//!
//! let dir = std::env::temp_dir().join(format!("clean-serve-doc-{}", std::process::id()));
//! let server = Server::start(ServerConfig::new(&dir)).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! // Two unordered writes to the same address: a WAW race.
//! let events = [0u16, 1].map(|t| TraceEvent::Write {
//!     tid: ThreadId::new(t), addr: 64, size: 8,
//! });
//! let Response::Submitted { digest, .. } = client.submit(encode_trace(&events).unwrap()).unwrap()
//! else { panic!("submit failed") };
//! let Response::Verdict { races, .. } = client.analyze(digest, EngineKind::Clean, true).unwrap()
//! else { panic!("analyze failed") };
//! assert!(!races.is_empty(), "unordered same-address writes race");
//!
//! server.join();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod policy;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;
pub mod store;

pub use cache::{Verdict, VerdictCache, VerdictKey};
pub use client::Client;
pub use policy::{PolicyError, Rule, SuppressionPolicy};
pub use protocol::{Request, Response, StatsReply, WireRace};
pub use queue::{Admission, JobQueue, JobState};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{StoreStats, StoredTrace, TraceStore};
