//! Sharded verdict cache: memoizes `(digest, engine)` → replay verdict.
//!
//! Verdicts are immutable facts — a trace's digest pins its exact event
//! sequence, and every engine is a deterministic function of that
//! sequence — so entries never need invalidation and a repeat ANALYZE can
//! be answered without touching the replay engines at all. The map is
//! sharded by key hash so concurrent connection threads recording
//! verdicts for different traces do not serialize on one lock.

use clean_baselines::FoundRace;
use clean_trace::{EngineKind, TraceDigest};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: which trace, replayed through which engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// Content address of the trace.
    pub digest: TraceDigest,
    /// Detector engine.
    pub engine: EngineKind,
}

/// A finished analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Races found; empty means the trace is clean under this engine.
    pub races: Vec<FoundRace>,
    /// Events replayed.
    pub events: u64,
}

/// Fixed shard count; a small power of two is plenty for a
/// thread-per-connection server.
const SHARDS: usize = 16;

/// The sharded `(digest, engine)` → [`Verdict`] map.
#[derive(Debug)]
pub struct VerdictCache {
    shards: Vec<Mutex<HashMap<VerdictKey, Verdict>>>,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VerdictCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        VerdictCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &VerdictKey) -> &Mutex<HashMap<VerdictKey, Verdict>> {
        // The digest is already a high-quality 128-bit hash; fold in the
        // engine so the same trace under different engines spreads out.
        let h = (key.digest.0 as usize) ^ ((key.engine as usize) << 3);
        &self.shards[h % SHARDS]
    }

    /// Looks up a memoized verdict.
    pub fn get(&self, key: &VerdictKey) -> Option<Verdict> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Records a verdict.
    pub fn insert(&self, key: VerdictKey, verdict: Verdict) {
        self.shard(&key).lock().insert(key, verdict);
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_across_engines() {
        let cache = VerdictCache::new();
        let digest = TraceDigest(0xfeed_beef);
        for (i, engine) in EngineKind::ALL.into_iter().enumerate() {
            let key = VerdictKey { digest, engine };
            assert_eq!(cache.get(&key), None);
            let verdict = Verdict {
                races: vec![],
                events: i as u64,
            };
            cache.insert(key, verdict.clone());
            assert_eq!(cache.get(&key), Some(verdict));
        }
        assert_eq!(cache.len(), EngineKind::ALL.len());
    }

    #[test]
    fn distinct_digests_do_not_collide() {
        let cache = VerdictCache::new();
        for i in 0..100u64 {
            cache.insert(
                VerdictKey {
                    digest: TraceDigest(u128::from(i)),
                    engine: EngineKind::Clean,
                },
                Verdict {
                    races: vec![],
                    events: i,
                },
            );
        }
        assert_eq!(cache.len(), 100);
        for i in 0..100u64 {
            let got = cache
                .get(&VerdictKey {
                    digest: TraceDigest(u128::from(i)),
                    engine: EngineKind::Clean,
                })
                .unwrap();
            assert_eq!(got.events, i);
        }
    }
}
