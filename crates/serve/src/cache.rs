//! Sharded verdict cache: memoizes `(digest, engine)` → replay verdict,
//! optionally made durable beside the trace store.
//!
//! Verdicts are immutable facts — a trace's digest pins its exact event
//! sequence, and every engine is a deterministic function of that
//! sequence — so entries never need invalidation and a repeat ANALYZE can
//! be answered without touching the replay engines at all. The map is
//! sharded by key hash so concurrent connection threads recording
//! verdicts for different traces do not serialize on one lock.
//!
//! # Durability
//!
//! A cache opened with [`VerdictCache::open`] appends every verdict to a
//! plain-text log (`verdicts.log` beside the store) and reloads it on
//! startup, so a warm restart serves every previously computed verdict
//! without replaying anything. The log format is line-oriented:
//!
//! ```text
//! CVERD v1
//! <digest hex> <engine> <events> <race count> [kind,addr,cur,prev ...]
//! ```
//!
//! Appends are atomic enough for the purpose: the trailing newline is
//! the last byte of every append, so on reload any tail line missing its
//! newline is discarded as torn (losing one verdict, never corrupting —
//! or worse, misparsing — the rest), and the log is compacted —
//! duplicates dropped, torn lines removed — every time it is opened. Hits served by reloaded entries
//! are counted separately ([`VerdictCache::persist_hits`]) so the
//! warm-restart path is observable in STATS.

use clean_baselines::{FoundRace, FullRaceKind};
use clean_core::ThreadId;
use clean_trace::{EngineKind, TraceDigest};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Log header line.
const LOG_HEADER: &str = "CVERD v1";

/// Cache key: which trace, replayed through which engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// Content address of the trace.
    pub digest: TraceDigest,
    /// Detector engine.
    pub engine: EngineKind,
}

/// A finished analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Races found; empty means the trace is clean under this engine.
    pub races: Vec<FoundRace>,
    /// Events replayed.
    pub events: u64,
}

/// A cached verdict plus where it came from.
#[derive(Debug, Clone)]
struct CacheEntry {
    verdict: Verdict,
    /// True if this entry was reloaded from the persisted log rather
    /// than computed in this process lifetime.
    persisted: bool,
}

/// Fixed shard count; a small power of two is plenty for a
/// thread-per-connection server.
const SHARDS: usize = 16;

/// The sharded `(digest, engine)` → [`Verdict`] map.
#[derive(Debug)]
pub struct VerdictCache {
    shards: Vec<Mutex<HashMap<VerdictKey, CacheEntry>>>,
    /// Append handle for the durable log; `None` for a purely in-memory
    /// cache.
    log: Option<Mutex<fs::File>>,
    /// Hits served by entries reloaded from the persisted log.
    persist_hits: AtomicU64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

fn kind_tag(kind: FullRaceKind) -> &'static str {
    match kind {
        FullRaceKind::Waw => "waw",
        FullRaceKind::Raw => "raw",
        FullRaceKind::War => "war",
    }
}

fn kind_from_tag(tag: &str) -> Option<FullRaceKind> {
    match tag {
        "waw" => Some(FullRaceKind::Waw),
        "raw" => Some(FullRaceKind::Raw),
        "war" => Some(FullRaceKind::War),
        _ => None,
    }
}

/// Renders one log line (without the trailing newline).
fn log_line(key: &VerdictKey, verdict: &Verdict) -> String {
    let mut line = format!(
        "{} {} {} {}",
        key.digest,
        key.engine.name(),
        verdict.events,
        verdict.races.len()
    );
    for r in &verdict.races {
        line.push_str(&format!(
            " {},{:x},{},{}",
            kind_tag(r.kind),
            r.addr,
            r.current.raw(),
            r.previous.raw()
        ));
    }
    line
}

/// Parses one log line; `None` for torn or malformed lines.
fn parse_log_line(line: &str) -> Option<(VerdictKey, Verdict)> {
    let mut parts = line.split_ascii_whitespace();
    let digest: TraceDigest = parts.next()?.parse().ok()?;
    let engine = EngineKind::parse(parts.next()?)?;
    let events: u64 = parts.next()?.parse().ok()?;
    let count: usize = parts.next()?.parse().ok()?;
    let mut races = Vec::with_capacity(count);
    for _ in 0..count {
        let mut fields = parts.next()?.split(',');
        let kind = kind_from_tag(fields.next()?)?;
        let addr = usize::from_str_radix(fields.next()?, 16).ok()?;
        let current: u16 = fields.next()?.parse().ok()?;
        let previous: u16 = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        races.push(FoundRace {
            kind,
            addr,
            current: ThreadId::new(current),
            previous: ThreadId::new(previous),
        });
    }
    if parts.next().is_some() {
        return None;
    }
    Some((VerdictKey { digest, engine }, Verdict { races, events }))
}

impl VerdictCache {
    /// Creates an empty, purely in-memory cache.
    pub fn new() -> Self {
        VerdictCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            log: None,
            persist_hits: AtomicU64::new(0),
        }
    }

    /// Opens a durable cache backed by the append-only log at `path`:
    /// reloads every parseable entry (marking them persisted), compacts
    /// the log — duplicate keys and torn tail lines dropped — and keeps
    /// the file open for appends.
    ///
    /// # Errors
    ///
    /// Filesystem failures creating or rewriting the log. A missing or
    /// unparseable log is not an error — it is simply empty.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let cache = VerdictCache::new();
        let mut loaded: Vec<(VerdictKey, Verdict)> = Vec::new();
        if let Ok(text) = fs::read_to_string(&path) {
            // Only newline-terminated lines are trusted: the newline is
            // the last byte of each append, so its absence marks a torn
            // write. A tail torn mid-token could otherwise still parse —
            // to a *wrong* verdict (e.g. a thread id `10` torn to `1`).
            let mut lines = text
                .split_inclusive('\n')
                .filter(|l| l.ends_with('\n'))
                .map(|l| &l[..l.len() - 1]);
            if lines.next() == Some(LOG_HEADER) {
                for line in lines {
                    if let Some((key, verdict)) = parse_log_line(line) {
                        loaded.push((key, verdict));
                    }
                }
            }
        }

        // Compact: last write per key wins (they are identical facts
        // anyway), torn lines vanish. Atomic tmp+rename so a crash here
        // cannot lose the old log.
        let mut compacted: HashMap<VerdictKey, usize> = HashMap::new();
        for (i, (key, _)) in loaded.iter().enumerate() {
            compacted.insert(*key, i);
        }
        let mut text = String::with_capacity(32 + loaded.len() * 48);
        text.push_str(LOG_HEADER);
        text.push('\n');
        let mut keep: Vec<usize> = compacted.values().copied().collect();
        keep.sort_unstable();
        for &i in &keep {
            let (key, verdict) = &loaded[i];
            text.push_str(&log_line(key, verdict));
            text.push('\n');
        }
        let tmp = path.with_extension("log.tmp");
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, &path)?;

        for &i in &keep {
            let (key, verdict) = loaded[i].clone();
            cache.shard(&key).lock().insert(
                key,
                CacheEntry {
                    verdict,
                    persisted: true,
                },
            );
        }
        let log = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(VerdictCache {
            log: Some(Mutex::new(log)),
            ..cache
        })
    }

    fn shard(&self, key: &VerdictKey) -> &Mutex<HashMap<VerdictKey, CacheEntry>> {
        // The digest is already a high-quality 128-bit hash; fold in the
        // engine so the same trace under different engines spreads out.
        let h = (key.digest.0 as usize) ^ ((key.engine as usize) << 3);
        &self.shards[h % SHARDS]
    }

    /// Looks up a memoized verdict. A hit on an entry reloaded from the
    /// persisted log also bumps [`VerdictCache::persist_hits`].
    pub fn get(&self, key: &VerdictKey) -> Option<Verdict> {
        let entry = self.shard(key).lock().get(key).cloned()?;
        if entry.persisted {
            self.persist_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(entry.verdict)
    }

    /// Records a verdict, appending it to the durable log if there is
    /// one. Log append failures are swallowed: durability is an
    /// optimization, the in-memory entry is authoritative for this
    /// process lifetime.
    pub fn insert(&self, key: VerdictKey, verdict: Verdict) {
        let fresh = self
            .shard(&key)
            .lock()
            .insert(
                key,
                CacheEntry {
                    verdict: verdict.clone(),
                    persisted: false,
                },
            )
            .is_none();
        if fresh {
            if let Some(log) = &self.log {
                let mut line = log_line(&key, &verdict);
                line.push('\n');
                let mut f = log.lock();
                let _ = f.write_all(line.as_bytes());
                let _ = f.flush();
            }
        }
    }

    /// Hits served by entries reloaded from the persisted log.
    pub fn persist_hits(&self) -> u64 {
        self.persist_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_across_engines() {
        let cache = VerdictCache::new();
        let digest = TraceDigest(0xfeed_beef);
        for (i, engine) in EngineKind::ALL.into_iter().enumerate() {
            let key = VerdictKey { digest, engine };
            assert_eq!(cache.get(&key), None);
            let verdict = Verdict {
                races: vec![],
                events: i as u64,
            };
            cache.insert(key, verdict.clone());
            assert_eq!(cache.get(&key), Some(verdict));
        }
        assert_eq!(cache.len(), EngineKind::ALL.len());
        assert_eq!(cache.persist_hits(), 0, "nothing was reloaded");
    }

    #[test]
    fn distinct_digests_do_not_collide() {
        let cache = VerdictCache::new();
        for i in 0..100u64 {
            cache.insert(
                VerdictKey {
                    digest: TraceDigest(u128::from(i)),
                    engine: EngineKind::Clean,
                },
                Verdict {
                    races: vec![],
                    events: i,
                },
            );
        }
        assert_eq!(cache.len(), 100);
        for i in 0..100u64 {
            let got = cache
                .get(&VerdictKey {
                    digest: TraceDigest(u128::from(i)),
                    engine: EngineKind::Clean,
                })
                .unwrap();
            assert_eq!(got.events, i);
        }
    }

    fn sample_verdict(racy: bool) -> Verdict {
        Verdict {
            races: if racy {
                vec![
                    FoundRace {
                        kind: FullRaceKind::Waw,
                        addr: 0xdead_beef,
                        current: ThreadId::new(3),
                        previous: ThreadId::new(1),
                    },
                    FoundRace {
                        kind: FullRaceKind::War,
                        addr: 64,
                        current: ThreadId::new(0),
                        previous: ThreadId::new(2),
                    },
                ]
            } else {
                vec![]
            },
            events: 12_345,
        }
    }

    fn temp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "clean-serve-cache-{tag}-{}/verdicts.log",
            std::process::id()
        ))
    }

    #[test]
    fn log_lines_roundtrip() {
        for racy in [false, true] {
            for engine in EngineKind::ALL {
                let key = VerdictKey {
                    digest: TraceDigest(0x0123_4567_89ab_cdef),
                    engine,
                };
                let verdict = sample_verdict(racy);
                let (k2, v2) = parse_log_line(&log_line(&key, &verdict)).unwrap();
                assert_eq!(k2, key);
                assert_eq!(v2, verdict);
            }
        }
        assert!(parse_log_line("garbage").is_none());
        assert!(parse_log_line("").is_none());
    }

    #[test]
    fn durable_cache_survives_reopen_and_counts_persist_hits() {
        let path = temp_log("reopen");
        let _ = fs::remove_dir_all(path.parent().unwrap());
        let racy_key = VerdictKey {
            digest: TraceDigest(1),
            engine: EngineKind::Clean,
        };
        let clean_key = VerdictKey {
            digest: TraceDigest(2),
            engine: EngineKind::FastTrack,
        };
        {
            let cache = VerdictCache::open(&path).unwrap();
            cache.insert(racy_key, sample_verdict(true));
            cache.insert(clean_key, sample_verdict(false));
            // Fresh entries do not count as persisted hits.
            cache.get(&racy_key).unwrap();
            assert_eq!(cache.persist_hits(), 0);
        }
        let cache = VerdictCache::open(&path).unwrap();
        assert_eq!(cache.len(), 2, "both verdicts reloaded");
        assert_eq!(cache.get(&racy_key), Some(sample_verdict(true)));
        assert_eq!(cache.get(&clean_key), Some(sample_verdict(false)));
        assert_eq!(cache.persist_hits(), 2, "reloaded hits are counted");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_and_duplicates_are_compacted_away() {
        let path = temp_log("compact");
        let _ = fs::remove_dir_all(path.parent().unwrap());
        let key = VerdictKey {
            digest: TraceDigest(9),
            engine: EngineKind::Clean,
        };
        {
            let cache = VerdictCache::open(&path).unwrap();
            cache.insert(key, sample_verdict(true));
        }
        // Duplicate the entry line and tear the tail.
        let mut text = fs::read_to_string(&path).unwrap();
        let entry = text.lines().nth(1).unwrap().to_string();
        text.push_str(&entry);
        text.push('\n');
        text.push_str(&entry[..entry.len() / 2]);
        fs::write(&path, &text).unwrap();

        let cache = VerdictCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1, "duplicates collapse, torn tail dropped");
        assert_eq!(cache.get(&key), Some(sample_verdict(true)));
        // The compacted file on disk has exactly header + one line.
        let lines: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], LOG_HEADER);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_log_is_empty_not_an_error() {
        let path = temp_log("missing");
        let _ = fs::remove_dir_all(path.parent().unwrap());
        let cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
