//! The `clean-fleet` router: a thin CSRV front that shards requests by
//! digest prefix across N `clean-serve` backends.
//!
//! # Placement
//!
//! The first byte of a trace digest picks the **primary** backend
//! (`byte % N`); content addressing makes this stable across routers and
//! restarts. SUBMITs are written to the primary *and* its ring
//! predecessors up to the replication factor (default 2 copies), so
//! losing one node never loses a trace. Reads (ANALYZE / FETCH) try the
//! primary first and fail over around the ring **successors** — so when
//! a primary dies, the failover target is a node that does *not* hold
//! the replica, and it pulls the trace from the surviving replica via
//! the peer `FETCH` frame before replaying. One dead node therefore
//! exercises the whole replication path instead of hiding it.
//!
//! # Forwarding
//!
//! Frames are forwarded as-is — the router decodes a request only as far
//! as routing needs (the digest, or for SUBMIT the digest *computed from
//! the body*) and re-emits it verbatim on the chosen backend connection.
//! Backend connect failures are retried a configurable number of times;
//! `RETRY_AFTER` responses pass through untouched (the backend is alive,
//! just shedding — failing over would defeat its admission control).
//!
//! # Job ids
//!
//! A `PENDING` job id is only meaningful on the backend that issued it,
//! so the router tags the backend index into the top byte of the id
//! (`job | idx << 56`) before handing it to the client, and strips the
//! tag to route a later `STATUS` poll back to the right backend.
//!
//! `STATS` fans out to every backend, sums the counters field-wise
//! (skipping unreachable nodes), and adds the router's own `forwards`
//! count. `METRICS` fans out likewise, but merges the backends' `CMET`
//! expositions under `node="<idx>"` labels (the router's own metrics
//! carry `node="router"`). `SHUTDOWN` fans out to every backend and
//! then drains the router itself.
//!
//! # Connection pooling
//!
//! Forwarding used to dial a fresh TCP connection per frame, which
//! dominated hot-path fan-out cost. The router now keeps a small
//! per-backend pool of parked connections: a forward checks one out
//! (`router_pool_hits`), falls back to a fresh dial when the pool is
//! empty or the parked connection died (`router_pool_misses`), and
//! parks the connection back afterwards. Parked connections are reaped
//! after an idle period well below the backend's 30 s I/O timeout, so
//! a reused connection is rarely half-closed — and when it is, the
//! failed call simply falls through to the fresh-dial path.

use crate::client::Client;
use crate::protocol::{error_code, Request, Response, StatsReply};
use crate::server::{verb_of, Obs};
use clean_obs::{Snapshot, Stage};
use clean_trace::{Digester, TraceDigest, TraceReader};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Parked connections kept per backend. Small on purpose: each parked
/// connection occupies one acceptor on the backend until reaped.
const POOL_CAP: usize = 4;

/// Bit position of the backend tag in a router-issued job id.
const JOB_TAG_SHIFT: u32 = 56;
/// Mask selecting the untagged (backend-local) part of a job id.
const JOB_ID_MASK: u64 = (1 << JOB_TAG_SHIFT) - 1;

/// Tags a backend-local job id with the backend that issued it.
pub fn tag_job(job: u64, backend: usize) -> u64 {
    (job & JOB_ID_MASK) | ((backend as u64) << JOB_TAG_SHIFT)
}

/// Splits a router job id into `(backend index, backend-local id)`.
pub fn untag_job(job: u64) -> (usize, u64) {
    ((job >> JOB_TAG_SHIFT) as usize, job & JOB_ID_MASK)
}

/// The primary backend for a digest: its first (big-endian) byte mod the
/// fleet size. Stable across routers, restarts, and fleet rebuilds of
/// the same size.
pub fn primary_backend(digest: TraceDigest, backends: usize) -> usize {
    digest.to_bytes()[0] as usize % backends.max(1)
}

/// The backends a SUBMIT is replicated to: the primary plus its ring
/// *predecessors*, `replication` nodes in total (capped at fleet size).
pub fn submit_targets(digest: TraceDigest, backends: usize, replication: usize) -> Vec<usize> {
    let n = backends.max(1);
    let p = primary_backend(digest, n);
    (0..replication.clamp(1, n))
        .map(|k| (p + n - k) % n)
        .collect()
}

/// The failover order for reads: the primary, then ring *successors*.
pub fn read_targets(digest: TraceDigest, backends: usize) -> Vec<usize> {
    let n = backends.max(1);
    let p = primary_backend(digest, n);
    (0..n).map(|k| (p + k) % n).collect()
}

/// Tuning knobs for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Backend `clean-serve` addresses, in ring order.
    pub backends: Vec<String>,
    /// Copies of each submitted trace (primary + predecessors).
    pub replication: usize,
    /// Reconnect attempts per backend before failing over.
    pub connect_retries: usize,
    /// Delay between reconnect attempts, in milliseconds.
    pub retry_delay_millis: u64,
    /// Acceptor-pool size (concurrent client connections served).
    pub acceptors: usize,
    /// Per-client-connection I/O timeout in milliseconds (0 = none).
    pub io_timeout_millis: u64,
    /// How long a parked backend connection may idle before the pool
    /// reaps it, in milliseconds. 0 disables pooling (dial-per-forward,
    /// the pre-pool behavior). Keep this well under the backend I/O
    /// timeout so reuse rarely races the backend closing the socket.
    pub pool_idle_millis: u64,
}

impl RouterConfig {
    /// Defaults: loopback ephemeral port, replication 2, 3 connect
    /// retries 50 ms apart, 32 acceptors, 30 s I/O timeout, 10 s pool
    /// idle reap.
    pub fn new(backends: Vec<String>) -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends,
            replication: 2,
            connect_retries: 3,
            retry_delay_millis: 50,
            acceptors: 32,
            io_timeout_millis: 30_000,
            pool_idle_millis: 10_000,
        }
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the replication factor.
    pub fn replication(mut self, copies: usize) -> Self {
        self.replication = copies.max(1);
        self
    }

    /// Sets the reconnect budget per backend.
    pub fn connect_retries(mut self, retries: usize) -> Self {
        self.connect_retries = retries;
        self
    }

    /// Sets the reconnect delay.
    pub fn retry_delay_millis(mut self, millis: u64) -> Self {
        self.retry_delay_millis = millis;
        self
    }

    /// Sets the acceptor-pool size.
    pub fn acceptors(mut self, acceptors: usize) -> Self {
        self.acceptors = acceptors.max(1);
        self
    }

    /// Sets the per-connection I/O timeout (0 disables it).
    pub fn io_timeout_millis(mut self, millis: u64) -> Self {
        self.io_timeout_millis = millis;
        self
    }

    /// Sets the backend-pool idle reap period (0 disables pooling).
    pub fn pool_idle_millis(mut self, millis: u64) -> Self {
        self.pool_idle_millis = millis;
        self
    }
}

/// One parked backend connection.
#[derive(Debug)]
struct PooledConn {
    client: Client,
    parked_at: Instant,
}

#[derive(Debug)]
struct RouterShared {
    backends: Vec<String>,
    replication: usize,
    connect_retries: usize,
    retry_delay: Duration,
    acceptors: usize,
    io_timeout: Option<Duration>,
    /// Parked backend connections, one pool per backend. `None` when
    /// pooling is disabled.
    pools: Option<Vec<Mutex<Vec<PooledConn>>>>,
    pool_idle: Duration,
    /// Request frames forwarded to backends (registry-backed).
    forwards: clean_obs::Counter,
    /// Forwards served by a parked connection.
    pool_hits: clean_obs::Counter,
    /// Forwards that had to dial a fresh connection.
    pool_misses: clean_obs::Counter,
    obs: Obs,
    draining: AtomicBool,
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
    addr: SocketAddr,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl RouterShared {
    /// Pops a live parked connection for backend `idx`, reaping any
    /// that idled past the reap period (a long-parked connection is
    /// likely half-closed by the backend's I/O timeout anyway).
    fn checkout(&self, idx: usize) -> Option<Client> {
        let pools = self.pools.as_ref()?;
        let mut pool = pools[idx].lock();
        while let Some(parked) = pool.pop() {
            if parked.parked_at.elapsed() < self.pool_idle {
                return Some(parked.client);
            }
        }
        None
    }

    /// Parks a connection for reuse (dropped if the pool is full).
    fn park(&self, idx: usize, client: Client) {
        let Some(pools) = self.pools.as_ref() else {
            return;
        };
        let mut pool = pools[idx].lock();
        pool.retain(|p| p.parked_at.elapsed() < self.pool_idle);
        if pool.len() < POOL_CAP {
            pool.push(PooledConn {
                client,
                parked_at: Instant::now(),
            });
        }
    }

    /// Runs one request round trip against backend `idx`: a parked
    /// connection when one is live, otherwise a fresh dial with connect
    /// retries. `None` means the backend is unreachable or died
    /// mid-call. Connections never park after a SHUTDOWN forward — the
    /// backend is about to close them.
    fn forward(&self, idx: usize, request: &Request) -> Option<Response> {
        let poolable = !matches!(request, Request::Shutdown);
        if let Some(mut client) = self.checkout(idx) {
            // A parked connection the backend closed fails the call
            // cleanly; fall through to the fresh-dial path below.
            if let Ok(response) = client.call(request) {
                self.pool_hits.inc();
                self.forwards.inc();
                if poolable {
                    self.park(idx, client);
                }
                return Some(response);
            }
        }
        self.pool_misses.inc();
        let addr = &self.backends[idx];
        let mut attempts = 0;
        loop {
            match Client::connect(addr.as_str()) {
                Ok(mut client) => {
                    let response = client.call(request).ok()?;
                    self.forwards.inc();
                    if poolable {
                        self.park(idx, client);
                    }
                    return Some(response);
                }
                Err(_) if attempts < self.connect_retries => {
                    attempts += 1;
                    std::thread::sleep(self.retry_delay);
                }
                Err(_) => return None,
            }
        }
    }

    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit { trace } => self.route_submit(trace),
            Request::Analyze { digest, .. } | Request::Fetch { digest } => {
                self.route_read(digest, request)
            }
            Request::Status { job } => self.route_status(job),
            Request::Stats => Response::Stats(self.aggregate_stats()),
            Request::Metrics => self.aggregate_metrics(),
            Request::Policy { set } => self.route_policy(set),
            Request::Shutdown => {
                // Fan the drain out to every backend. The router's own
                // drain starts in `serve_connection` AFTER the reply is
                // written: `join()` closes every registered connection,
                // so draining here would race the ShuttingDown frame.
                for idx in 0..self.backends.len() {
                    let _ = self.forward(idx, &Request::Shutdown);
                }
                Response::ShuttingDown
            }
        }
    }

    /// Digests the submitted bytes locally (routing needs the content
    /// address before any backend sees the frame), then writes the trace
    /// to the primary and its replica predecessors.
    fn route_submit(&self, trace: Vec<u8>) -> Response {
        // Digest-based backend selection is the router's "shard" stage.
        let shard_span = self.obs.spans.as_ref().map(|s| s.start(Stage::Shard));
        let digest = digest_of(&trace);
        drop(shard_span);
        let digest = match digest {
            Some(d) => d,
            None => {
                return Response::Error {
                    code: error_code::BAD_TRACE,
                    message: "invalid trace: undecodable CLTR stream".into(),
                }
            }
        };
        let request = Request::Submit { trace };
        let mut first_ok: Option<Response> = None;
        let mut last_refusal: Option<Response> = None;
        for idx in submit_targets(digest, self.backends.len(), self.replication) {
            match self.forward(idx, &request) {
                Some(resp @ Response::Submitted { .. }) if first_ok.is_none() => {
                    first_ok = Some(resp);
                }
                Some(Response::Submitted { .. }) => {}
                Some(resp) => last_refusal = Some(resp),
                None => {}
            }
        }
        // One durable copy is enough to answer; zero is a failure.
        first_ok.or(last_refusal).unwrap_or(Response::Error {
            code: error_code::INTERNAL,
            message: "no backend accepted the submission".into(),
        })
    }

    /// Forwards a digest-addressed read (ANALYZE / FETCH), failing over
    /// around the ring when a backend is unreachable or draining.
    fn route_read(&self, digest: TraceDigest, request: Request) -> Response {
        let mut last: Option<Response> = None;
        for idx in read_targets(digest, self.backends.len()) {
            match self.forward(idx, &request) {
                // Draining backends refuse new work; the ring has more.
                Some(Response::ShuttingDown) => {
                    last = Some(Response::ShuttingDown);
                }
                Some(Response::Pending { job }) => {
                    return Response::Pending {
                        job: tag_job(job, idx),
                    };
                }
                // Anything else — verdict, retry-after, trace data,
                // error — is the backend's answer and passes through.
                Some(resp) => return resp,
                None => {
                    self.obs
                        .journal
                        .record("failover", format!("backend={idx} digest={digest}"));
                }
            }
        }
        last.unwrap_or(Response::Error {
            code: error_code::INTERNAL,
            message: "no backend reachable for digest".into(),
        })
    }

    /// Routes a POLICY frame. A *set* must land on every backend —
    /// suppression is a fleet-wide classification fact, and a node that
    /// missed the update would serve races its siblings demote — so any
    /// backend that refuses or is unreachable fails the whole set. A
    /// *read* takes the first reachable backend's answer (sets keep the
    /// fleet uniform, so any node's copy is authoritative).
    fn route_policy(&self, set: Option<String>) -> Response {
        let request = Request::Policy { set: set.clone() };
        if set.is_some() {
            let mut last_ok = None;
            for idx in 0..self.backends.len() {
                match self.forward(idx, &request) {
                    Some(resp @ Response::Policy { .. }) => last_ok = Some(resp),
                    Some(Response::Error { code, message }) => {
                        return Response::Error { code, message }
                    }
                    Some(other) => {
                        return Response::Error {
                            code: error_code::INTERNAL,
                            message: format!("backend {idx} refused the policy: {other:?}"),
                        }
                    }
                    None => {
                        return Response::Error {
                            code: error_code::INTERNAL,
                            message: format!("backend {idx} unreachable; policy not fleet-wide"),
                        }
                    }
                }
            }
            return last_ok.unwrap_or(Response::Error {
                code: error_code::INTERNAL,
                message: "no backends".into(),
            });
        }
        for idx in 0..self.backends.len() {
            if let Some(resp) = self.forward(idx, &request) {
                return resp;
            }
        }
        Response::Error {
            code: error_code::INTERNAL,
            message: "no backend reachable for policy read".into(),
        }
    }

    fn route_status(&self, job: u64) -> Response {
        let (idx, raw) = untag_job(job);
        if idx >= self.backends.len() {
            return Response::Error {
                code: error_code::UNKNOWN_JOB,
                message: format!(
                    "job {job} names backend {idx} of a {}-node fleet",
                    self.backends.len()
                ),
            };
        }
        match self.forward(idx, &Request::Status { job: raw }) {
            Some(Response::Pending { job }) => Response::Pending {
                job: tag_job(job, idx),
            },
            Some(resp) => resp,
            None => Response::Error {
                code: error_code::INTERNAL,
                message: format!("backend {idx} unreachable"),
            },
        }
    }

    /// Field-wise sum of every reachable backend's counters plus the
    /// router's own forward count.
    fn aggregate_stats(&self) -> StatsReply {
        let mut merged = StatsReply {
            forwards: self.forwards.value(),
            ..StatsReply::default()
        };
        for idx in 0..self.backends.len() {
            if let Some(Response::Stats(s)) = self.forward(idx, &Request::Stats) {
                merged = merged.merge(s);
            }
        }
        merged
    }

    /// Fans METRICS out to every backend and merges the expositions:
    /// each backend's metrics are stamped `node="<idx>"`, the router's
    /// own metrics `node="router"`, and counters/gauges/histograms fold
    /// by their labeled keys — so per-node values stay separable while
    /// one exposition answers for the whole fleet. Backend journal
    /// events ride along as `node=<idx>`-prefixed comment lines.
    fn aggregate_metrics(&self) -> Response {
        let mut merged = self.obs.registry.snapshot().with_label("node", "router");
        let mut comments = self.obs.journal.render();
        for idx in 0..self.backends.len() {
            let node = idx.to_string();
            let Some(Response::Metrics { text }) = self.forward(idx, &Request::Metrics) else {
                comments.push(format!("node {idx} unreachable for metrics"));
                continue;
            };
            for line in text.lines() {
                if let Some(event) = line.strip_prefix("# event ") {
                    comments.push(format!("event node={idx} {event}"));
                }
            }
            match Snapshot::parse(&text) {
                Ok(snap) => merged.merge(&snap.with_label("node", &node)),
                Err(e) => comments.push(format!("node {idx} exposition unparseable: {e}")),
            }
        }
        Response::Metrics {
            text: merged.render(&comments),
        }
    }
}

/// Decodes a submission just far enough to learn its content address.
fn digest_of(trace: &[u8]) -> Option<TraceDigest> {
    let reader = TraceReader::new(trace).ok()?;
    let mut digester = Digester::new();
    for event in reader {
        digester.update(&event.ok()?);
    }
    Some(digester.finish())
}

fn begin_drain(shared: &RouterShared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    *shared.drain_flag.lock() = true;
    shared.drain_cv.notify_all();
    for _ in 0..shared.acceptors {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Handle to a running router: address, shutdown, join.
#[derive(Debug)]
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    acceptors: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Starts the router's drain (backends are left running; a client
    /// `SHUTDOWN` frame is what fans out to them).
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until someone initiates shutdown.
    pub fn wait_until_draining(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drain_cv.wait(&mut flag);
        }
    }

    /// Drains and joins every router thread.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        begin_drain(&self.shared);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.shared.addr);
        }
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// The `clean-fleet` router service.
#[derive(Debug)]
pub struct Router;

impl Router {
    /// Binds and spawns the acceptor pool.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, or an empty backend list.
    pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener =
            TcpListener::bind(
                config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "bad bind address")
                })?,
            )?;
        let addr = listener.local_addr()?;
        let acceptor_count = config.acceptors.max(1);
        let obs = Obs::new(true);
        let forwards = obs.registry.counter("forwards");
        let pool_hits = obs.registry.counter("router_pool_hits");
        let pool_misses = obs.registry.counter("router_pool_misses");
        let shared = Arc::new(RouterShared {
            replication: config.replication.max(1),
            connect_retries: config.connect_retries,
            retry_delay: Duration::from_millis(config.retry_delay_millis),
            acceptors: acceptor_count,
            io_timeout: (config.io_timeout_millis > 0)
                .then(|| Duration::from_millis(config.io_timeout_millis)),
            pools: (config.pool_idle_millis > 0).then(|| {
                (0..config.backends.len())
                    .map(|_| Mutex::new(Vec::new()))
                    .collect()
            }),
            pool_idle: Duration::from_millis(config.pool_idle_millis),
            backends: config.backends.clone(),
            forwards,
            pool_hits,
            pool_misses,
            obs,
            draining: AtomicBool::new(false),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
            addr,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let listener = Arc::new(listener);
        let acceptors: Vec<JoinHandle<()>> = (0..acceptor_count)
            .map(|i| {
                let listener = Arc::clone(&listener);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clean-fleet-accept-{i}"))
                    .spawn(move || acceptor_loop(&listener, &shared))
                    .expect("spawn router acceptor")
            })
            .collect();
        Ok(RouterHandle { shared, acceptors })
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            let mut w = BufWriter::new(&stream);
            let _ = Response::ShuttingDown.write(&mut w);
            break;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        serve_connection(stream, shared);
        shared.conns.lock().remove(&conn_id);
    }
}

fn serve_connection(stream: TcpStream, shared: &RouterShared) {
    if let Some(t) = shared.io_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::read(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle at a frame boundary is fine; draining ends it.
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = Response::Error {
                    code: error_code::BAD_FRAME,
                    message: e.to_string(),
                }
                .write(&mut writer);
                break;
            }
            Err(_) => break,
        };
        if shared.draining.load(Ordering::SeqCst) {
            let _ = Response::ShuttingDown.write(&mut writer);
            break;
        }
        let started = Instant::now();
        let verb = verb_of(&request);
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = shared.handle(request);
        shared
            .obs
            .record_request(verb, None, started.elapsed().as_micros() as u64);
        let write_ok = response.write(&mut writer).is_ok();
        if is_shutdown {
            begin_drain(shared);
            break;
        }
        if !write_ok {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_tags_roundtrip() {
        for (job, idx) in [(0u64, 0usize), (1, 2), (JOB_ID_MASK, 255), (12345, 7)] {
            let tagged = tag_job(job, idx);
            assert_eq!(untag_job(tagged), (idx, job));
        }
    }

    #[test]
    fn placement_is_primary_plus_predecessors() {
        // A digest whose first byte is 0x05: primary = 5 % 3 = 2.
        let d = TraceDigest(0x05 << 120);
        assert_eq!(primary_backend(d, 3), 2);
        assert_eq!(submit_targets(d, 3, 2), vec![2, 1]);
        assert_eq!(
            submit_targets(d, 3, 5),
            vec![2, 1, 0],
            "capped at fleet size"
        );
        assert_eq!(
            read_targets(d, 3),
            vec![2, 0, 1],
            "failover walks successors"
        );
        // Single-node fleet degenerates sanely.
        assert_eq!(submit_targets(d, 1, 2), vec![0]);
        assert_eq!(read_targets(d, 1), vec![0]);
    }

    #[test]
    fn kill_primary_forces_peer_fetch_shape() {
        // The property the fleet smoke test relies on: with replication
        // 2 and 3 nodes, the first read-failover target after the
        // primary never holds the replica (which sits at the
        // predecessor), for every possible primary.
        for first_byte in 0..=255u8 {
            let d = TraceDigest((first_byte as u128) << 120);
            let stored = submit_targets(d, 3, 2);
            let reads = read_targets(d, 3);
            assert_eq!(reads[0], stored[0], "primary serves reads first");
            assert!(
                !stored.contains(&reads[1]),
                "first failover target must miss the trace so FETCH runs"
            );
        }
    }
}
