//! Blocking client for the `CSRV` protocol.
//!
//! One [`Client`] wraps one TCP connection; the protocol is strictly
//! request/response, so a call writes one frame and reads one frame.
//! Admission control is surfaced rather than hidden: `analyze` returns
//! the raw [`Response`] (which may be `RetryAfter`), and
//! [`Client::analyze_with_retry`] layers the obvious sleep-and-retry
//! loop on top for callers that just want a verdict.

use crate::protocol::{Request, Response, StatsReply};
use clean_trace::{EngineKind, TraceDigest};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected `clean-serve` client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn unexpected_eof() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection mid-request",
    )
}

impl Client {
    /// Connects to a `clean-serve` daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// I/O failures, malformed response frames, or the server closing
    /// the connection before replying.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        request.write(&mut self.writer)?;
        Response::read(&mut self.reader)?.ok_or_else(unexpected_eof)
    }

    /// Submits raw `CLTR` trace bytes into the store.
    ///
    /// # Errors
    ///
    /// Transport failures (server-side rejections come back as
    /// [`Response::Error`]).
    pub fn submit(&mut self, trace: Vec<u8>) -> io::Result<Response> {
        self.call(&Request::Submit { trace })
    }

    /// Requests analysis of a stored trace.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn analyze(
        &mut self,
        digest: TraceDigest,
        engine: EngineKind,
        wait: bool,
    ) -> io::Result<Response> {
        self.call(&Request::Analyze {
            digest,
            engine,
            wait,
        })
    }

    /// Like [`Client::analyze`] with `wait = true`, but obeys
    /// `RetryAfter` responses by sleeping and retrying, up to
    /// `max_retries` times.
    ///
    /// # Errors
    ///
    /// Transport failures, or `TimedOut` once the retry budget is spent.
    pub fn analyze_with_retry(
        &mut self,
        digest: TraceDigest,
        engine: EngineKind,
        max_retries: usize,
    ) -> io::Result<Response> {
        let mut attempts = 0;
        loop {
            match self.analyze(digest, engine, true)? {
                Response::RetryAfter { millis } if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(millis.min(1_000)));
                }
                other => return Ok(other),
            }
        }
    }

    /// Fetches the raw bytes of a stored trace — the peer-replication
    /// primitive. The caller should re-digest the returned bytes before
    /// trusting them (the server-side store does this automatically via
    /// `insert_stream` with an expected digest).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn fetch(&mut self, digest: TraceDigest) -> io::Result<Response> {
        self.call(&Request::Fetch { digest })
    }

    /// Polls a job handle.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn status(&mut self, job: u64) -> io::Result<Response> {
        self.call(&Request::Status { job })
    }

    /// Reads the server's active `CSUP` suppression policy.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn policy(&mut self) -> io::Result<Response> {
        self.call(&Request::Policy { set: None })
    }

    /// Replaces the server's suppression policy with `text` (full `CSUP
    /// v1` rules text). The server persists the new rules before
    /// answering, so a success reply survives restarts.
    ///
    /// # Errors
    ///
    /// Transport failures (a rejected policy comes back as
    /// [`Response::Error`] with `BAD_POLICY`).
    pub fn set_policy(&mut self, text: impl Into<String>) -> io::Result<Response> {
        self.call(&Request::Policy {
            set: Some(text.into()),
        })
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-STATS reply.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS reply, got {other:?}"),
            )),
        }
    }

    /// Fetches the `CMET v1` metrics exposition. Against a router this
    /// is the fleet-wide merge with `node` labels.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-METRICS reply.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected METRICS reply, got {other:?}"),
            )),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
