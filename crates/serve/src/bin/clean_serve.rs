//! `clean-serve` — run or talk to the concurrent race-analysis service.
//!
//! ```text
//! clean-serve serve   --store <dir> [--addr HOST:PORT] [--max-bytes N]
//!                     [--queue-cap N] [--per-client-cap N] [--workers N] [--shards N]
//!                     [--peer HOST:PORT]... [--acceptors N] [--io-timeout-millis N]
//!                     [--policy <file>]
//! clean-serve submit  <addr> <trace.cltr>
//! clean-serve analyze <addr> <digest> [--engine clean|fasttrack|vcfull|tsan]
//!                     [--no-wait] [--retries N]
//! clean-serve status  <addr> <job>
//! clean-serve stats   <addr>
//! clean-serve metrics <addr>
//! clean-serve suppress list <addr>
//! clean-serve suppress add <addr> <rule...>
//! clean-serve suppress check <addr> <digest> [--engine E] [--retries N]
//! clean-serve suppress prune <addr>
//! clean-serve shutdown <addr>
//! ```
//!
//! Exit codes match `clean-analyze`: 0 = success / trace clean (or every
//! race suppressed to a warning), 10 = analysis found unsuppressed
//! race(s), 1 = any other failure.

use clean_serve::client::Client;
use clean_serve::policy::SuppressionPolicy;
use clean_serve::protocol::{Response, StatsReply};
use clean_serve::server::{Server, ServerConfig};
use clean_trace::{EngineKind, TraceDigest};
use std::process::ExitCode;

/// `analyze`/`status` returned a verdict with at least one unsuppressed
/// race (races demoted to warnings by a `CSUP` rule do not count).
const EXIT_RACE: u8 = 10;

const USAGE: &str = "\
clean-serve — concurrent race-analysis service for CLEAN traces

USAGE:
  clean-serve serve --store <dir> [--addr HOST:PORT] [--max-bytes N]
                    [--queue-cap N] [--per-client-cap N] [--workers N] [--shards N]
                    [--peer HOST:PORT]... [--acceptors N] [--io-timeout-millis N]
                    [--no-persist-verdicts] [--policy <file>]
      Run the daemon in the foreground. Prints the bound address
      (`listening on HOST:PORT`) once ready; exits after a graceful
      drain when a SHUTDOWN frame arrives. Each --peer names another
      clean-serve node to FETCH missing digests from (fleet mode).
      --policy names a CSUP v1 suppression-rules file (default:
      policy.csup under the store directory; missing = no suppression).
  clean-serve submit <addr> <trace.cltr>
      Upload a recorded trace; prints its content digest.
  clean-serve analyze <addr> <digest> [--engine clean|fasttrack|vcfull|tsan]
                      [--no-wait] [--retries N]
      Analyze a stored trace. Blocks for the verdict unless --no-wait
      (which prints a job id to poll with `status`). Retries load-shed
      requests up to --retries times (default 10).
  clean-serve status <addr> <job>
      Poll a job id from a --no-wait analyze.
  clean-serve stats <addr>
      Print the service counters.
  clean-serve metrics <addr>
      Print the `CMET v1` metrics exposition: counters, gauges,
      latency histograms, and the recent-event journal. Against a
      fleet router this is the node-labeled fleet-wide merge.
  clean-serve suppress list <addr>
      Print the active CSUP suppression policy, with the number of
      races each rule has suppressed since it was installed.
  clean-serve suppress add <addr> <rule...>
      Append one rule (e.g. `digest <hex>`, `prefix <hex>`,
      `addr lo..hi [waw|raw|war]`, each optionally with a trailing
      `expires=<unix-secs>` deadline) to the policy and push it live.
      Against a fleet router the new policy lands on every backend.
  clean-serve suppress check <addr> <digest> [--engine E] [--retries N]
      Analyze a digest and report how the active policy classifies it:
      races matched by a rule print as warnings and do not fail.
  clean-serve suppress prune <addr>
      Drop every rule with zero hits, plus every rule whose expires=
      deadline has passed (hits do not keep an aged-out rule alive), and
      push the pruned policy live (resetting the hit counters). Against
      a fleet router the pruned policy lands on every backend.
  clean-serve shutdown <addr>
      Ask the daemon to drain queued jobs and exit.

EXIT CODES:
  0   success; for analyze/status/check: clean, or warnings only
  10  analyze/status/check returned unsuppressed race(s)
  1   any other error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("suppress") => cmd_suppress(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// Pulls every occurrence of `--flag value` out of `args`.
fn take_values(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut values = Vec::new();
    while let Some(v) = take_value(args, flag)? {
        values.push(v);
    }
    Ok(values)
}

/// Removes `--flag` from `args` if present, returning whether it was.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad {what}: {value:?}"))
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let store = take_value(&mut args, "--store")?.ok_or("serve needs --store <dir>")?;
    let mut config = ServerConfig::new(&store);
    if let Some(addr) = take_value(&mut args, "--addr")? {
        config = config.addr(addr);
    }
    if let Some(v) = take_value(&mut args, "--max-bytes")? {
        config = config.store_max_bytes(parse_num(&v, "--max-bytes")?);
    }
    if let Some(v) = take_value(&mut args, "--queue-cap")? {
        config = config.queue_cap(parse_num(&v, "--queue-cap")?);
    }
    if let Some(v) = take_value(&mut args, "--per-client-cap")? {
        config = config.per_client_cap(parse_num(&v, "--per-client-cap")?);
    }
    if let Some(v) = take_value(&mut args, "--workers")? {
        config = config.workers(parse_num(&v, "--workers")?);
    }
    if let Some(v) = take_value(&mut args, "--shards")? {
        config = config.shards(parse_num(&v, "--shards")?);
    }
    let peers = take_values(&mut args, "--peer")?;
    if !peers.is_empty() {
        config = config.peers(peers);
    }
    if let Some(v) = take_value(&mut args, "--acceptors")? {
        config = config.acceptors(parse_num(&v, "--acceptors")?);
    }
    if let Some(v) = take_value(&mut args, "--io-timeout-millis")? {
        config = config.io_timeout_millis(parse_num(&v, "--io-timeout-millis")?);
    }
    if take_flag(&mut args, "--no-persist-verdicts") {
        config = config.persist_verdicts(false);
    }
    if let Some(v) = take_value(&mut args, "--policy")? {
        config = config.policy_path(v);
    }
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let handle = Server::start(config).map_err(|e| format!("start failed: {e}"))?;
    println!("listening on {}", handle.addr());
    handle.wait_until_draining();
    eprintln!("draining...");
    handle.join();
    eprintln!("shutdown complete");
    Ok(ExitCode::SUCCESS)
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr).map_err(|e| format!("connect to {addr} failed: {e}"))
}

fn rpc_err(e: std::io::Error) -> String {
    format!("request failed: {e}")
}

/// Prints a verdict and picks the exit code; errors on non-verdict frames.
fn report_verdict(response: Response) -> Result<ExitCode, String> {
    match response {
        Response::Verdict {
            digest,
            engine,
            cached,
            races,
            events,
        } => {
            let source = if cached { "cache" } else { "replay" };
            let suppressed = races.iter().filter(|r| r.suppressed).count();
            println!(
                "{digest} engine={} events={events} races={} suppressed={suppressed} ({source})",
                engine.name(),
                races.len()
            );
            for race in &races {
                let r = race.to_found();
                let tag = if race.suppressed { "warning: " } else { "" };
                println!(
                    "  {tag}{} at {:#x}: t{} after t{}",
                    r.kind,
                    r.addr,
                    r.current.raw(),
                    r.previous.raw()
                );
            }
            Ok(if races.len() == suppressed {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_RACE)
            })
        }
        Response::Pending { job } => {
            println!("pending job={job}");
            Ok(ExitCode::SUCCESS)
        }
        Response::RetryAfter { millis } => Err(format!("server busy, retry after {millis} ms")),
        Response::ShuttingDown => Err("server is shutting down".into()),
        Response::Error { code, message } => Err(format!("server error {code}: {message}")),
        other => Err(format!("unexpected reply: {other:?}")),
    }
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let [addr, path] = args else {
        return Err("usage: clean-serve submit <addr> <trace.cltr>".into());
    };
    let trace = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut client = connect(addr)?;
    match client.submit(trace).map_err(rpc_err)? {
        Response::Submitted {
            digest,
            dedup,
            bytes,
        } => {
            println!(
                "{digest} bytes={bytes}{}",
                if dedup { " (deduplicated)" } else { "" }
            );
            Ok(ExitCode::SUCCESS)
        }
        Response::ShuttingDown => Err("server is shutting down".into()),
        Response::Error { code, message } => Err(format!("server error {code}: {message}")),
        other => Err(format!("unexpected reply: {other:?}")),
    }
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let engine = match take_value(&mut args, "--engine")? {
        Some(name) => EngineKind::parse(&name).ok_or(format!("unknown engine {name:?}"))?,
        None => EngineKind::Clean,
    };
    let no_wait = take_flag(&mut args, "--no-wait");
    let retries: usize = match take_value(&mut args, "--retries")? {
        Some(v) => parse_num(&v, "--retries")?,
        None => 10,
    };
    let [addr, digest] = &args[..] else {
        return Err("usage: clean-serve analyze <addr> <digest> [--engine E] [--no-wait]".into());
    };
    let digest: TraceDigest = digest
        .parse()
        .map_err(|e| format!("bad digest {digest:?}: {e}"))?;
    let mut client = connect(addr)?;
    let response = if no_wait {
        client.analyze(digest, engine, false).map_err(rpc_err)?
    } else {
        client
            .analyze_with_retry(digest, engine, retries)
            .map_err(rpc_err)?
    };
    report_verdict(response)
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let [addr, job] = args else {
        return Err("usage: clean-serve status <addr> <job>".into());
    };
    let job: u64 = parse_num(job, "job id")?;
    let mut client = connect(addr)?;
    report_verdict(client.status(job).map_err(rpc_err)?)
}

fn print_stats(s: &StatsReply) {
    println!("submits            {}", s.submits);
    println!("submit_dedup_hits  {}", s.submit_dedup_hits);
    println!("analyzes           {}", s.analyzes);
    println!("cache_hits         {}", s.cache_hits);
    println!("cache_misses       {}", s.cache_misses);
    println!("jobs_completed     {}", s.jobs_completed);
    println!("jobs_rejected      {}", s.jobs_rejected);
    println!("jobs_coalesced     {}", s.jobs_coalesced);
    println!("store_traces       {}", s.store_traces);
    println!("store_bytes        {}", s.store_bytes);
    println!("store_evictions    {}", s.store_evictions);
    println!("forwards           {}", s.forwards);
    println!("fetches            {}", s.fetches);
    println!("cache_persist_hits {}", s.cache_persist_hits);
    println!("suppressed_hits    {}", s.suppressed_hits);
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err("usage: clean-serve stats <addr>".into());
    };
    let mut client = connect(addr)?;
    let stats = client.stats().map_err(rpc_err)?;
    print_stats(&stats);
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err("usage: clean-serve metrics <addr>".into());
    };
    let mut client = connect(addr)?;
    let text = client.metrics().map_err(rpc_err)?;
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_suppress(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let [_, addr] = args else {
                return Err("usage: clean-serve suppress list <addr>".into());
            };
            let mut client = connect(addr)?;
            match client.policy().map_err(rpc_err)? {
                Response::Policy { rules, hits, text } => {
                    println!("rules={rules}");
                    if !text.is_empty() {
                        print!("{text}");
                        if !text.ends_with('\n') {
                            println!();
                        }
                    }
                    // The audit trail: races credited to each rule since
                    // it was installed (first matching rule wins).
                    if let Ok(policy) = SuppressionPolicy::parse(&text) {
                        for (rule, hit) in policy.rules().iter().zip(&hits) {
                            println!("hits={hit}  {}", rule.render());
                        }
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Response::Error { code, message } => Err(format!("server error {code}: {message}")),
                other => Err(format!("unexpected reply: {other:?}")),
            }
        }
        Some("add") => {
            let [_, addr, rule @ ..] = args else {
                unreachable!("first() was Some");
            };
            if rule.is_empty() {
                return Err("usage: clean-serve suppress add <addr> <rule...>".into());
            }
            let mut client = connect(addr)?;
            // Read-modify-write: fetch the live text, append one rule
            // line, push the whole policy back (the server validates and
            // persists it atomically before answering).
            let Response::Policy { text, .. } = client.policy().map_err(rpc_err)? else {
                return Err("unexpected reply to policy read".into());
            };
            let line = rule.join(" ");
            let mut next = if text.trim().is_empty() {
                "CSUP v1\n".to_string()
            } else {
                let mut t = text;
                if !t.ends_with('\n') {
                    t.push('\n');
                }
                t
            };
            next.push_str(&line);
            next.push('\n');
            match client.set_policy(next).map_err(rpc_err)? {
                Response::Policy { rules, .. } => {
                    println!("rules={rules}");
                    Ok(ExitCode::SUCCESS)
                }
                Response::Error { code, message } => Err(format!("server error {code}: {message}")),
                other => Err(format!("unexpected reply: {other:?}")),
            }
        }
        Some("prune") => {
            let [_, addr] = args else {
                return Err("usage: clean-serve suppress prune <addr>".into());
            };
            let mut client = connect(addr)?;
            // Read-modify-write like `add`: fetch the live policy and its
            // hit counters, drop every rule that never fired, push the
            // survivors back. The set resets the counters, so a pruned
            // policy starts a fresh audit window.
            let Response::Policy { hits, text, .. } = client.policy().map_err(rpc_err)? else {
                return Err("unexpected reply to policy read".into());
            };
            let policy = SuppressionPolicy::parse(&text)
                .map_err(|e| format!("server sent an unparseable policy: {e}"))?;
            let pruned = policy.prune(&hits);
            let dropped = policy.rules().len() - pruned.rules().len();
            if dropped == 0 {
                println!(
                    "rules={} dropped=0 (every rule has hits)",
                    policy.rules().len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            match client
                .set_policy(pruned.text().to_string())
                .map_err(rpc_err)?
            {
                Response::Policy { rules, .. } => {
                    println!("rules={rules} dropped={dropped}");
                    Ok(ExitCode::SUCCESS)
                }
                Response::Error { code, message } => Err(format!("server error {code}: {message}")),
                other => Err(format!("unexpected reply: {other:?}")),
            }
        }
        Some("check") => cmd_analyze(&args[1..]),
        _ => Err("usage: clean-serve suppress <list|add|check|prune> ...".into()),
    }
}

fn cmd_shutdown(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err("usage: clean-serve shutdown <addr>".into());
    };
    let mut client = connect(addr)?;
    match client.shutdown().map_err(rpc_err)? {
        Response::ShuttingDown => {
            println!("server draining");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unexpected reply: {other:?}")),
    }
}
