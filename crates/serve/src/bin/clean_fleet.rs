//! `clean-fleet` — run a digest-sharded fleet of `clean-serve` nodes
//! behind a CSRV router.
//!
//! ```text
//! clean-fleet route  --backend HOST:PORT [--backend HOST:PORT]...
//!                    [--addr HOST:PORT] [--replication N]
//!                    [--connect-retries N] [--retry-delay-millis N]
//!                    [--acceptors N] [--io-timeout-millis N]
//! clean-fleet spawn  --nodes N --store-root <dir> [--addr HOST:PORT]
//!                    [--base-port P] [--serve-bin PATH] [--max-bytes N]
//!                    [--replication N]
//! clean-fleet status <addr>
//! clean-fleet metrics <addr>
//! ```
//!
//! `route` fronts already-running backends; `spawn` launches N
//! `clean-serve` child processes on consecutive loopback ports — each
//! configured with every sibling as a FETCH peer — and then routes to
//! them. A SHUTDOWN frame sent to the router drains the whole fleet.

use clean_serve::client::Client;
use clean_serve::protocol::StatsReply;
use clean_serve::router::{Router, RouterConfig};
use std::net::TcpStream;
use std::process::{Child, Command, ExitCode};
use std::time::{Duration, Instant};

const USAGE: &str = "\
clean-fleet — digest-sharded multi-process serving for CLEAN traces

USAGE:
  clean-fleet route --backend HOST:PORT [--backend HOST:PORT]...
                    [--addr HOST:PORT] [--replication N]
                    [--connect-retries N] [--retry-delay-millis N]
                    [--acceptors N] [--io-timeout-millis N]
      Route CSRV requests across already-running clean-serve backends.
      Prints the bound address (`fleet listening on HOST:PORT`).
  clean-fleet spawn --nodes N --store-root <dir> [--addr HOST:PORT]
                    [--base-port P] [--serve-bin PATH] [--max-bytes N]
                    [--replication N]
      Launch N clean-serve children on ports P..P+N (default base 7601),
      each with store <dir>/node-<i> and every sibling as a FETCH peer,
      then route to them. A SHUTDOWN frame drains the whole fleet.
  clean-fleet status <addr>
      Print aggregated fleet counters from a router address.
  clean-fleet metrics <addr>
      Print the fleet-wide `CMET v1` metrics merge from a router
      address: every backend's counters, gauges, and histograms under
      `node=\"<i>\"` labels, plus the router's own under
      `node=\"router\"`, plus each node's recent-event journal.

EXIT CODES:
  0  success
  1  any error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("route") => cmd_route(&args[1..]),
        Some("spawn") => cmd_spawn(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

/// Pulls every occurrence of `--flag value` out of `args`.
fn take_values(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut values = Vec::new();
    while let Some(v) = take_value(args, flag)? {
        values.push(v);
    }
    Ok(values)
}

fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad {what}: {value:?}"))
}

/// Applies the router flags shared by `route` and `spawn`.
fn router_flags(config: RouterConfig, args: &mut Vec<String>) -> Result<RouterConfig, String> {
    let mut config = config;
    if let Some(addr) = take_value(args, "--addr")? {
        config = config.addr(addr);
    }
    if let Some(v) = take_value(args, "--replication")? {
        config = config.replication(parse_num(&v, "--replication")?);
    }
    if let Some(v) = take_value(args, "--connect-retries")? {
        config = config.connect_retries(parse_num(&v, "--connect-retries")?);
    }
    if let Some(v) = take_value(args, "--retry-delay-millis")? {
        config = config.retry_delay_millis(parse_num(&v, "--retry-delay-millis")?);
    }
    if let Some(v) = take_value(args, "--acceptors")? {
        config = config.acceptors(parse_num(&v, "--acceptors")?);
    }
    if let Some(v) = take_value(args, "--io-timeout-millis")? {
        config = config.io_timeout_millis(parse_num(&v, "--io-timeout-millis")?);
    }
    Ok(config)
}

/// Runs a started router in the foreground until it drains.
fn run_router(config: RouterConfig) -> Result<ExitCode, String> {
    let handle = Router::start(config).map_err(|e| format!("router start failed: {e}"))?;
    println!("fleet listening on {}", handle.addr());
    handle.wait_until_draining();
    eprintln!("router draining...");
    handle.join();
    eprintln!("router shutdown complete");
    Ok(ExitCode::SUCCESS)
}

fn cmd_route(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let backends = take_values(&mut args, "--backend")?;
    if backends.is_empty() {
        return Err("route needs at least one --backend HOST:PORT".into());
    }
    let config = router_flags(RouterConfig::new(backends), &mut args)?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    run_router(config)
}

/// Blocks until `addr` accepts a TCP connection or the deadline passes.
fn wait_for_bind(addr: &str, deadline: Duration) -> Result<(), String> {
    let start = Instant::now();
    loop {
        if TcpStream::connect(addr).is_ok() {
            return Ok(());
        }
        if start.elapsed() > deadline {
            return Err(format!("backend {addr} did not come up"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cmd_spawn(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let nodes: usize = match take_value(&mut args, "--nodes")? {
        Some(v) => parse_num(&v, "--nodes")?,
        None => return Err("spawn needs --nodes N".into()),
    };
    if nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    let store_root =
        take_value(&mut args, "--store-root")?.ok_or("spawn needs --store-root <dir>")?;
    let base_port: u16 = match take_value(&mut args, "--base-port")? {
        Some(v) => parse_num(&v, "--base-port")?,
        None => 7601,
    };
    let serve_bin = match take_value(&mut args, "--serve-bin")? {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            // Default: the clean-serve binary installed beside us.
            let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            me.with_file_name("clean-serve")
        }
    };
    let max_bytes = take_value(&mut args, "--max-bytes")?;

    let addrs: Vec<String> = (0..nodes)
        .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
        .collect();
    let mut children: Vec<Child> = Vec::with_capacity(nodes);
    for (i, addr) in addrs.iter().enumerate() {
        let mut cmd = Command::new(&serve_bin);
        cmd.arg("serve")
            .arg("--store")
            .arg(format!("{store_root}/node-{i}"))
            .arg("--addr")
            .arg(addr);
        for (j, peer) in addrs.iter().enumerate() {
            if j != i {
                cmd.arg("--peer").arg(peer);
            }
        }
        if let Some(v) = &max_bytes {
            cmd.arg("--max-bytes").arg(v);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", serve_bin.display()))?;
        children.push(child);
    }
    for addr in &addrs {
        if let Err(e) = wait_for_bind(addr, Duration::from_secs(10)) {
            for mut child in children {
                let _ = child.kill();
            }
            return Err(e);
        }
    }
    eprintln!("spawned {nodes} clean-serve nodes on ports {base_port}..");

    let config = router_flags(RouterConfig::new(addrs), &mut args)?;
    if !args.is_empty() {
        for mut child in children {
            let _ = child.kill();
        }
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let result = run_router(config);
    // The SHUTDOWN fan-out already told every backend to drain; reap.
    for mut child in children {
        let _ = child.wait();
    }
    result
}

fn print_stats(s: &StatsReply) {
    println!("submits            {}", s.submits);
    println!("submit_dedup_hits  {}", s.submit_dedup_hits);
    println!("analyzes           {}", s.analyzes);
    println!("cache_hits         {}", s.cache_hits);
    println!("cache_misses       {}", s.cache_misses);
    println!("jobs_completed     {}", s.jobs_completed);
    println!("jobs_rejected      {}", s.jobs_rejected);
    println!("jobs_coalesced     {}", s.jobs_coalesced);
    println!("store_traces       {}", s.store_traces);
    println!("store_bytes        {}", s.store_bytes);
    println!("store_evictions    {}", s.store_evictions);
    println!("forwards           {}", s.forwards);
    println!("fetches            {}", s.fetches);
    println!("cache_persist_hits {}", s.cache_persist_hits);
    println!("suppressed_hits    {}", s.suppressed_hits);
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err("usage: clean-fleet status <addr>".into());
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let stats = client.stats().map_err(|e| format!("request failed: {e}"))?;
    print_stats(&stats);
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err("usage: clean-fleet metrics <addr>".into());
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let text = client
        .metrics()
        .map_err(|e| format!("request failed: {e}"))?;
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    Ok(ExitCode::SUCCESS)
}
