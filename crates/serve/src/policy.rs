//! `CSUP v1` race-suppression policy: demote known-benign races to
//! warnings at verdict-classification time.
//!
//! Real users of a race-analysis service ask for this first: some races
//! are intentional (lock-free steal retries, seeded probe loops, TSan
//! suppression files in the wild), and re-reporting them on every
//! analysis buries the signal. A policy is a small, versioned,
//! line-oriented rules file:
//!
//! ```text
//! CSUP v1
//! # comments run to end of line
//! digest 00112233445566778899aabbccddeeff   # exact trace digest
//! prefix 0011aa                             # digest hex-prefix
//! addr 1000..1fff waw                       # address range + race kind
//! addr 2000..2fff                           # address range, any kind
//! ```
//!
//! Rules match *races inside verdicts*, never the verdicts themselves:
//! the durable verdict cache keeps raw replay facts, and suppression is
//! re-applied every time a verdict is served. Editing the policy (or
//! reloading it over the wire with a `POLICY` frame) therefore
//! retroactively reclassifies every cached verdict — no invalidation,
//! no replay.
//!
//! `digest` rules suppress every race in a named trace; `prefix` rules
//! generalize that to a digest family (useful when a workload's traces
//! share a seeded prefix corpus); `addr` rules suppress races on an
//! inclusive address range, optionally narrowed to one race kind
//! (`waw` / `raw` / `war`).
//!
//! Any rule may carry a trailing `expires=<unix-secs>` token — an
//! absolute deadline after which the rule stops matching (suppressions
//! should be revisited, not immortal). Aged-out rules are skipped at
//! classification time and dropped by `suppress prune` regardless of
//! their hit counts:
//!
//! ```text
//! addr 1000..1fff waw expires=1790000000   # re-triage after the fix ships
//! ```

use clean_baselines::{FoundRace, FullRaceKind};
use clean_trace::TraceDigest;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// First line of every policy file.
pub const POLICY_HEADER: &str = "CSUP v1";

/// Default policy file name, under the server's store directory.
pub const POLICY_FILE: &str = "policy.csup";

/// One suppression rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Suppress every race in the trace with this exact digest.
    Digest(TraceDigest),
    /// Suppress every race in any trace whose digest hex starts with
    /// this prefix (1..=32 lowercase hex nibbles).
    Prefix(String),
    /// Suppress races on an inclusive address range, optionally limited
    /// to one race kind.
    Addr {
        /// Low end of the address range (inclusive).
        lo: u64,
        /// High end of the address range (inclusive).
        hi: u64,
        /// Restrict to this race kind; `None` matches any kind.
        kind: Option<FullRaceKind>,
    },
}

fn kind_tag(kind: FullRaceKind) -> &'static str {
    match kind {
        FullRaceKind::Waw => "waw",
        FullRaceKind::Raw => "raw",
        FullRaceKind::War => "war",
    }
}

fn kind_from_tag(tag: &str) -> Option<FullRaceKind> {
    match tag {
        "waw" => Some(FullRaceKind::Waw),
        "raw" => Some(FullRaceKind::Raw),
        "war" => Some(FullRaceKind::War),
        _ => None,
    }
}

impl Rule {
    /// Whether this rule suppresses `race` found in trace `digest`.
    pub fn matches(&self, digest: TraceDigest, race: &FoundRace) -> bool {
        match self {
            Rule::Digest(d) => *d == digest,
            Rule::Prefix(p) => format!("{digest}").starts_with(p.as_str()),
            Rule::Addr { lo, hi, kind } => {
                let addr = race.addr as u64;
                addr >= *lo && addr <= *hi && kind.is_none_or(|k| k == race.kind)
            }
        }
    }

    /// Canonical single-line rendering (no comment, no newline).
    pub fn render(&self) -> String {
        match self {
            Rule::Digest(d) => format!("digest {d}"),
            Rule::Prefix(p) => format!("prefix {p}"),
            Rule::Addr { lo, hi, kind } => match kind {
                Some(k) => format!("addr {lo:x}..{hi:x} {}", kind_tag(*k)),
                None => format!("addr {lo:x}..{hi:x}"),
            },
        }
    }
}

/// A policy parse error: which line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

fn err(line: usize, message: impl Into<String>) -> PolicyError {
    PolicyError {
        line,
        message: message.into(),
    }
}

fn parse_hex_addr(s: &str, line: usize, what: &str) -> Result<u64, PolicyError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(s, 16).map_err(|_| err(line, format!("bad {what} address {s:?}")))
}

/// Seconds since the Unix epoch — the clock `expires=` deadlines are
/// measured against.
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Splits a trailing `expires=<unix-secs>` token off a rule's tokens.
fn split_expiry<'a>(
    tokens: &'a [&'a str],
    line: usize,
) -> Result<(&'a [&'a str], Option<u64>), PolicyError> {
    match tokens.split_last() {
        Some((last, rest)) if last.starts_with("expires=") => {
            let v = &last["expires=".len()..];
            let secs = v.parse().map_err(|_| {
                err(
                    line,
                    format!("bad expires deadline {v:?} (want unix seconds)"),
                )
            })?;
            Ok((rest, Some(secs)))
        }
        _ => Ok((tokens, None)),
    }
}

fn parse_rule(tokens: &[&str], line: usize) -> Result<Rule, PolicyError> {
    match tokens {
        ["digest", hex] => {
            let digest: TraceDigest = hex
                .parse()
                .map_err(|e| err(line, format!("bad digest {hex:?}: {e}")))?;
            Ok(Rule::Digest(digest))
        }
        ["prefix", hex] => {
            if hex.is_empty() || hex.len() > 32 {
                return Err(err(
                    line,
                    format!("prefix must be 1..=32 hex chars, got {hex:?}"),
                ));
            }
            if !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(err(line, format!("prefix has non-hex chars: {hex:?}")));
            }
            Ok(Rule::Prefix(hex.to_ascii_lowercase()))
        }
        ["addr", range, rest @ ..] => {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| err(line, format!("addr range must be lo..hi, got {range:?}")))?;
            let lo = parse_hex_addr(lo, line, "low")?;
            let hi = parse_hex_addr(hi, line, "high")?;
            if lo > hi {
                return Err(err(line, format!("empty addr range {lo:x}..{hi:x}")));
            }
            let kind = match rest {
                [] => None,
                [tag] => Some(
                    kind_from_tag(tag)
                        .ok_or_else(|| err(line, format!("unknown race kind {tag:?}")))?,
                ),
                _ => return Err(err(line, "addr takes at most one race kind")),
            };
            Ok(Rule::Addr { lo, hi, kind })
        }
        [verb, ..] => Err(err(line, format!("unknown rule {verb:?}"))),
        [] => unreachable!("blank lines are skipped before parse_rule"),
    }
}

/// A parsed, applicable suppression policy.
///
/// The original source text (header and comments included) is retained
/// verbatim so a round trip through the wire or the disk file preserves
/// the operator's annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionPolicy {
    text: String,
    rules: Vec<Rule>,
    /// 1-based source line of each rule, parallel to `rules` — the
    /// anchor that lets [`SuppressionPolicy::prune`] drop a rule's line
    /// while keeping the header and standalone comments.
    lines: Vec<usize>,
    /// Absolute `expires=` deadline of each rule (unix seconds),
    /// parallel to `rules`; `None` never ages out.
    expires: Vec<Option<u64>>,
}

impl Default for SuppressionPolicy {
    fn default() -> Self {
        Self::empty()
    }
}

impl SuppressionPolicy {
    /// The empty policy: suppresses nothing.
    pub fn empty() -> Self {
        SuppressionPolicy {
            text: format!("{POLICY_HEADER}\n"),
            rules: Vec::new(),
            lines: Vec::new(),
            expires: Vec::new(),
        }
    }

    /// Parses policy text. Whitespace-only input is the empty policy;
    /// anything else must start with the `CSUP v1` header line.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] naming the first offending line.
    pub fn parse(text: &str) -> Result<Self, PolicyError> {
        if text.trim().is_empty() {
            return Ok(Self::empty());
        }
        let mut rules = Vec::new();
        let mut lines = Vec::new();
        let mut expires = Vec::new();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if !saw_header {
                if line != POLICY_HEADER {
                    return Err(err(
                        line_no,
                        format!("expected {POLICY_HEADER:?} header, got {line:?}"),
                    ));
                }
                saw_header = true;
                continue;
            }
            let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
            let (tokens, deadline) = split_expiry(&tokens, line_no)?;
            rules.push(parse_rule(tokens, line_no)?);
            lines.push(line_no);
            expires.push(deadline);
        }
        let mut text = text.to_string();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        Ok(SuppressionPolicy {
            text,
            rules,
            lines,
            expires,
        })
    }

    /// Loads a policy file; a missing file is the empty policy.
    ///
    /// # Errors
    ///
    /// I/O failures other than not-found, or `InvalidData` wrapping a
    /// [`PolicyError`] for unparseable content.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        match fs::read_to_string(path.as_ref()) {
            Ok(text) => Self::parse(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e),
        }
    }

    /// Atomically writes the policy text to `path` (tmp + rename), so a
    /// crash mid-save cannot leave a half-written policy behind.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("csup.tmp");
        fs::write(&tmp, self.text.as_bytes())?;
        fs::rename(&tmp, path)
    }

    /// The source text, header and comments included.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed rules, in file order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the policy holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Each rule's `expires=` deadline (unix seconds), parallel to
    /// [`SuppressionPolicy::rules`]; `None` never ages out.
    pub fn expiries(&self) -> &[Option<u64>] {
        &self.expires
    }

    /// Whether rule `i` is still live at time `now` (unix seconds).
    fn live(&self, i: usize, now: u64) -> bool {
        self.expires
            .get(i)
            .copied()
            .flatten()
            .is_none_or(|d| now < d)
    }

    /// Whether any live rule suppresses `race` found in trace `digest`.
    pub fn suppresses(&self, digest: TraceDigest, race: &FoundRace) -> bool {
        self.suppresses_at(digest, race, unix_now())
    }

    /// [`SuppressionPolicy::suppresses`] at an explicit time (unix
    /// seconds) — aged-out rules never match.
    pub fn suppresses_at(&self, digest: TraceDigest, race: &FoundRace, now: u64) -> bool {
        self.rules
            .iter()
            .enumerate()
            .any(|(i, r)| self.live(i, now) && r.matches(digest, race))
    }

    /// Per-race suppression flags for a whole verdict, in order.
    pub fn classify(&self, digest: TraceDigest, races: &[FoundRace]) -> Vec<bool> {
        self.classify_at(digest, races, unix_now())
    }

    /// [`SuppressionPolicy::classify`] at an explicit time.
    pub fn classify_at(&self, digest: TraceDigest, races: &[FoundRace], now: u64) -> Vec<bool> {
        if self.rules.is_empty() {
            return vec![false; races.len()];
        }
        races
            .iter()
            .map(|r| self.suppresses_at(digest, r, now))
            .collect()
    }

    /// Like [`SuppressionPolicy::classify`], additionally crediting each
    /// suppressed race to the *first* live rule that matched it by
    /// bumping that rule's slot in `hits` (which must have one slot per
    /// rule). First-match credit means a rule whose every match is
    /// already covered by an earlier rule collects no hits — exactly the
    /// redundancy [`SuppressionPolicy::prune`] exists to drop.
    pub fn classify_with_hits(
        &self,
        digest: TraceDigest,
        races: &[FoundRace],
        hits: &mut [u64],
    ) -> Vec<bool> {
        self.classify_with_hits_at(digest, races, hits, unix_now())
    }

    /// [`SuppressionPolicy::classify_with_hits`] at an explicit time —
    /// aged-out rules neither match nor collect hits.
    pub fn classify_with_hits_at(
        &self,
        digest: TraceDigest,
        races: &[FoundRace],
        hits: &mut [u64],
        now: u64,
    ) -> Vec<bool> {
        debug_assert_eq!(hits.len(), self.rules.len());
        races
            .iter()
            .map(|race| {
                let hit = self
                    .rules
                    .iter()
                    .enumerate()
                    .find(|(i, r)| self.live(*i, now) && r.matches(digest, race));
                match hit {
                    Some((i, _)) => {
                        if let Some(h) = hits.get_mut(i) {
                            *h += 1;
                        }
                        true
                    }
                    None => false,
                }
            })
            .collect()
    }

    /// Returns a new policy with every zero-hit rule's source line
    /// removed (`hits` is parallel to [`SuppressionPolicy::rules`]; a
    /// missing slot counts as zero), along with every rule whose
    /// `expires=` deadline has passed — hits do not keep an aged-out
    /// rule alive. The header and standalone comment lines survive; a
    /// comment trailing a pruned rule goes with it.
    pub fn prune(&self, hits: &[u64]) -> Self {
        self.prune_at(hits, unix_now())
    }

    /// [`SuppressionPolicy::prune`] at an explicit time (unix seconds).
    pub fn prune_at(&self, hits: &[u64], now: u64) -> Self {
        let dead: Vec<usize> = self
            .lines
            .iter()
            .enumerate()
            .filter(|&(i, _)| hits.get(i).copied().unwrap_or(0) == 0 || !self.live(i, now))
            .map(|(_, &line)| line)
            .collect();
        if dead.is_empty() {
            return self.clone();
        }
        let mut text = String::with_capacity(self.text.len());
        for (i, raw) in self.text.lines().enumerate() {
            if !dead.contains(&(i + 1)) {
                text.push_str(raw);
                text.push('\n');
            }
        }
        Self::parse(&text).expect("removing whole rule lines keeps the policy parseable")
    }

    /// Returns a new policy with `rule_line` appended (one rule in the
    /// file grammar, without a newline) — the `suppress add` primitive.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] if the appended line does not parse.
    pub fn with_rule_line(&self, rule_line: &str) -> Result<Self, PolicyError> {
        let mut text = self.text.clone();
        text.push_str(rule_line.trim());
        text.push('\n');
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_core::ThreadId;

    fn race(kind: FullRaceKind, addr: usize) -> FoundRace {
        FoundRace {
            kind,
            addr,
            current: ThreadId::new(1),
            previous: ThreadId::new(0),
        }
    }

    #[test]
    fn empty_and_whitespace_parse_to_empty_policy() {
        for text in ["", "   \n\t\n", "CSUP v1\n", "CSUP v1\n# nothing\n"] {
            let p = SuppressionPolicy::parse(text).unwrap();
            assert!(p.is_empty(), "{text:?}");
            assert!(!p.suppresses(TraceDigest(1), &race(FullRaceKind::Waw, 64)));
        }
    }

    #[test]
    fn header_is_required() {
        let e = SuppressionPolicy::parse("digest 0011\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("header"), "{e}");
    }

    #[test]
    fn digest_rule_is_exact() {
        let d = TraceDigest(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let text = format!("{POLICY_HEADER}\ndigest {d}\n");
        let p = SuppressionPolicy::parse(&text).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.suppresses(d, &race(FullRaceKind::Waw, 64)));
        assert!(p.suppresses(d, &race(FullRaceKind::War, 0xdead)));
        assert!(!p.suppresses(TraceDigest(d.0 ^ 1), &race(FullRaceKind::Waw, 64)));
    }

    #[test]
    fn prefix_rule_matches_digest_families() {
        let d = TraceDigest(0xab00_0000_0000_0000_0000_0000_0000_0001);
        let p = SuppressionPolicy::parse("CSUP v1\nprefix ab\n").unwrap();
        assert!(p.suppresses(d, &race(FullRaceKind::Raw, 8)));
        assert!(!p.suppresses(TraceDigest(0x0c << 120), &race(FullRaceKind::Raw, 8)));
        // Prefix comparison is on the full 32-char zero-padded hex form.
        let small = TraceDigest(0xab);
        assert!(
            !p.suppresses(small, &race(FullRaceKind::Raw, 8)),
            "0xab renders as 000...0ab and must not match prefix ab"
        );
        assert!(SuppressionPolicy::parse("CSUP v1\nprefix\n").is_err());
        assert!(SuppressionPolicy::parse("CSUP v1\nprefix xyz\n").is_err());
        assert!(
            SuppressionPolicy::parse(&format!("CSUP v1\nprefix {}\n", "0".repeat(33))).is_err()
        );
    }

    #[test]
    fn addr_rule_respects_range_and_kind() {
        let d = TraceDigest(5);
        let p = SuppressionPolicy::parse("CSUP v1\naddr 1000..1fff waw\naddr 0x3000..0x3fff\n")
            .unwrap();
        assert!(p.suppresses(d, &race(FullRaceKind::Waw, 0x1000)));
        assert!(p.suppresses(d, &race(FullRaceKind::Waw, 0x1fff)));
        assert!(
            !p.suppresses(d, &race(FullRaceKind::Waw, 0x2000)),
            "past hi"
        );
        assert!(
            !p.suppresses(d, &race(FullRaceKind::Raw, 0x1500)),
            "kind-narrowed"
        );
        // The second rule has no kind filter.
        assert!(p.suppresses(d, &race(FullRaceKind::Raw, 0x3080)));
        assert!(p.suppresses(d, &race(FullRaceKind::War, 0x3fff)));
    }

    #[test]
    fn bad_rules_name_their_line() {
        for (text, line) in [
            ("CSUP v1\nbogus stuff\n", 2),
            ("CSUP v1\n\naddr 10\n", 3),
            ("CSUP v1\naddr 20..10\n", 2),
            ("CSUP v1\naddr 10..20 waw raw\n", 2),
            ("CSUP v1\ndigest nothex\n", 2),
        ] {
            let e = SuppressionPolicy::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} → {e}");
        }
    }

    #[test]
    fn comments_and_text_survive_round_trips() {
        let text = "CSUP v1\n# steal retries are intentional\naddr 40..7f raw # probe\n";
        let p = SuppressionPolicy::parse(text).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.text(), text);
        let again = SuppressionPolicy::parse(p.text()).unwrap();
        assert_eq!(again, p);
    }

    #[test]
    fn with_rule_line_appends_and_validates() {
        let p = SuppressionPolicy::empty();
        let p2 = p.with_rule_line("addr 0..ff war").unwrap();
        assert_eq!(p2.len(), 1);
        assert!(p2.suppresses(TraceDigest(1), &race(FullRaceKind::War, 0x40)));
        assert!(p.with_rule_line("addr backwards").is_err());
    }

    #[test]
    fn classify_flags_line_up_with_races() {
        let d = TraceDigest(7);
        let p = SuppressionPolicy::parse("CSUP v1\naddr 100..1ff\n").unwrap();
        let races = [
            race(FullRaceKind::Waw, 0x50),
            race(FullRaceKind::Raw, 0x150),
            race(FullRaceKind::War, 0x250),
        ];
        assert_eq!(p.classify(d, &races), vec![false, true, false]);
        assert_eq!(
            SuppressionPolicy::empty().classify(d, &races),
            vec![false; 3]
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("clean-csup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join(POLICY_FILE);
        assert!(
            SuppressionPolicy::load(&path).unwrap().is_empty(),
            "missing = empty"
        );
        let p = SuppressionPolicy::parse("CSUP v1\nprefix 00ff\n").unwrap();
        p.save(&path).unwrap();
        assert_eq!(SuppressionPolicy::load(&path).unwrap(), p);
        fs::write(&path, "not a policy\n").unwrap();
        assert!(SuppressionPolicy::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn classify_with_hits_credits_the_first_matching_rule() {
        let d = TraceDigest(9);
        // Rule 2 is fully shadowed by rule 1; rule 3 stands alone.
        let p =
            SuppressionPolicy::parse("CSUP v1\naddr 100..2ff\naddr 100..1ff waw\naddr 400..4ff\n")
                .unwrap();
        let mut hits = vec![0u64; p.len()];
        let flags = p.classify_with_hits(
            d,
            &[
                race(FullRaceKind::Waw, 0x150), // rule 1 (shadows rule 2)
                race(FullRaceKind::Raw, 0x250), // rule 1
                race(FullRaceKind::War, 0x450), // rule 3
                race(FullRaceKind::Waw, 0x800), // no rule
            ],
            &mut hits,
        );
        assert_eq!(flags, vec![true, true, true, false]);
        assert_eq!(hits, vec![2, 0, 1]);
    }

    #[test]
    fn prune_drops_only_zero_hit_rule_lines() {
        let text =
            "CSUP v1\n# keep this note\naddr 100..2ff\naddr 100..1ff waw # shadowed\nprefix ab\n";
        let p = SuppressionPolicy::parse(text).unwrap();
        assert_eq!(p.len(), 3);
        let pruned = p.prune(&[5, 0, 2]);
        assert_eq!(pruned.len(), 2);
        assert_eq!(
            pruned.text(),
            "CSUP v1\n# keep this note\naddr 100..2ff\nprefix ab\n"
        );
        // All-zero hits empty the rule set but keep the header.
        let emptied = p.prune(&[0, 0, 0]);
        assert!(emptied.is_empty());
        assert!(emptied.text().contains(POLICY_HEADER));
        // Nothing to drop: the policy comes back unchanged.
        assert_eq!(p.prune(&[1, 1, 1]), p);
    }

    #[test]
    fn expired_rules_stop_matching_but_text_survives() {
        let d = TraceDigest(3);
        let text = "CSUP v1\naddr 100..1ff expires=1000\naddr 300..3ff\n";
        let p = SuppressionPolicy::parse(text).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.expiries(), &[Some(1000), None]);
        assert_eq!(p.text(), text, "expires token survives the round trip");
        let r = race(FullRaceKind::Waw, 0x150);
        assert!(p.suppresses_at(d, &r, 999), "live before the deadline");
        assert!(!p.suppresses_at(d, &r, 1000), "deadline itself is expired");
        assert!(!p.suppresses_at(d, &r, 5000));
        // The unexpired rule keeps working at any time.
        assert!(p.suppresses_at(d, &race(FullRaceKind::Raw, 0x350), 5000));
    }

    #[test]
    fn expiry_applies_to_every_rule_kind_and_rejects_bad_deadlines() {
        let d = TraceDigest(0xab << 120);
        let text =
            format!("CSUP v1\ndigest {d}\nprefix ab expires=50\naddr 0..ff waw expires=60\n");
        let p = SuppressionPolicy::parse(&text).unwrap();
        assert_eq!(p.expiries(), &[None, Some(50), Some(60)]);
        assert!(SuppressionPolicy::parse("CSUP v1\nprefix ab expires=soon\n").is_err());
        assert!(SuppressionPolicy::parse("CSUP v1\naddr 0..ff expires=-3\n").is_err());
    }

    #[test]
    fn classify_with_hits_skips_expired_rules_and_credits_the_next_live_match() {
        let d = TraceDigest(11);
        // Rule 1 expired; rule 2 covers the same range and must both
        // suppress and collect the credit rule 1 no longer can.
        let p = SuppressionPolicy::parse(
            "CSUP v1\naddr 100..1ff expires=10\naddr 100..1ff\naddr 400..4ff expires=10\n",
        )
        .unwrap();
        let mut hits = vec![0u64; p.len()];
        let flags = p.classify_with_hits_at(
            d,
            &[
                race(FullRaceKind::Waw, 0x150), // rule 1 dead → rule 2
                race(FullRaceKind::War, 0x450), // rule 3 dead, nothing else
            ],
            &mut hits,
            100,
        );
        assert_eq!(flags, vec![true, false]);
        assert_eq!(hits, vec![0, 1, 0]);
    }

    #[test]
    fn prune_drops_aged_out_rules_regardless_of_hits() {
        let text = "CSUP v1\naddr 100..1ff expires=10 # old\naddr 300..3ff\n";
        let p = SuppressionPolicy::parse(text).unwrap();
        // Rule 1 collected hits before it aged out; prune drops it anyway.
        let pruned = p.prune_at(&[7, 3], 100);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned.text(), "CSUP v1\naddr 300..3ff\n");
        // Before the deadline the same hits keep both rules.
        assert_eq!(p.prune_at(&[7, 3], 5), p);
    }

    #[test]
    fn rules_render_back_to_parseable_lines() {
        let rules = [
            Rule::Digest(TraceDigest(42)),
            Rule::Prefix("abcd".into()),
            Rule::Addr {
                lo: 0x10,
                hi: 0x20,
                kind: Some(FullRaceKind::Raw),
            },
            Rule::Addr {
                lo: 0,
                hi: u64::MAX,
                kind: None,
            },
        ];
        for rule in rules {
            let text = format!("{POLICY_HEADER}\n{}\n", rule.render());
            let p = SuppressionPolicy::parse(&text).unwrap();
            assert_eq!(p.rules(), std::slice::from_ref(&rule), "{text:?}");
        }
    }
}
