//! Property-driven fuzzing of the CSRV frame layer against a live
//! server socket: random tags, lying length prefixes, truncated bodies,
//! and mid-frame hangups. The invariants under test:
//!
//! * a malformed frame is answered with a `BAD_FRAME` error and then the
//!   connection is dropped — never silently swallowed;
//! * *any* byte soup either gets a well-formed response frame or a clean
//!   disconnect — the server never panics, never wedges a connection
//!   past its read timeout, and stays healthy for the next client.
//!
//! One server instance is shared across all cases (each case costs only
//! a connect), with a short io timeout so stalls resolve quickly.

use clean_serve::client::Client;
use clean_serve::protocol::{error_code, Response, MAGIC, VERSION};
use clean_serve::server::{Server, ServerConfig};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

/// Starts the shared fuzz target once; the handle is intentionally
/// leaked so the server outlives every proptest case in the binary.
fn target() -> std::net::SocketAddr {
    static ADDR: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("clean-wire-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::start(ServerConfig::new(&dir).io_timeout_millis(200))
            .expect("fuzz server must start");
        let addr = server.addr();
        std::mem::forget(server);
        addr
    })
}

/// What one connection experienced after the fuzz bytes went out.
#[derive(Debug)]
enum Outcome {
    /// A well-formed response frame (the only kind the server emits).
    Reply(Response),
    /// Clean EOF or reset — the server dropped the connection.
    Gone,
}

/// Sends `bytes`, optionally half-closing the write side (mid-frame
/// EOF), and reads one response. Panics if the connection wedges past
/// the deadline or the server emits an unparseable frame.
fn exchange(bytes: &[u8], eof_after: bool) -> Outcome {
    let mut sock = TcpStream::connect(target()).expect("connect to fuzz server");
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A write can legitimately fail if the server already rejected the
    // prefix and closed on us — that counts as a disconnect, not a bug.
    if sock.write_all(bytes).is_err() {
        return Outcome::Gone;
    }
    if eof_after {
        let _ = sock.shutdown(std::net::Shutdown::Write);
    }
    match Response::read(&mut sock) {
        Ok(Some(reply)) => Outcome::Reply(reply),
        Ok(None) => Outcome::Gone,
        Err(e) => match e.kind() {
            std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe => Outcome::Gone,
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                panic!("server wedged: no reply and no disconnect for {bytes:02x?}")
            }
            _ => panic!("server sent an unparseable reply for {bytes:02x?}: {e}"),
        },
    }
}

/// After a `BAD_FRAME`, the server must hang up: nothing but EOF (or a
/// reset racing the close) may follow on the wire.
fn assert_disconnected(sock: &mut TcpStream, ctx: &str) {
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rest = Vec::new();
    match sock.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "{ctx}: trailing bytes {rest:02x?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{ctx}"),
    }
}

/// Builds a frame header + body with every field attacker-controlled.
fn frame(magic: [u8; 4], version: u8, opcode: u8, declared: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + body.len());
    out.extend_from_slice(&magic);
    out.push(version);
    out.push(opcode);
    out.extend_from_slice(&declared.to_le_bytes());
    out.extend_from_slice(body);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frames whose *header* is definitely malformed — wrong magic,
    /// wrong version, or an absurd declared length — get `BAD_FRAME`
    /// and then the disconnect, whatever the rest of the bytes say.
    #[test]
    fn corrupt_headers_get_bad_frame_then_disconnect(
        kind in 0u8..3,
        corrupt_byte in 0u8..=255,
        opcode in 0u8..=255,
        body in prop::collection::vec(0u8..=255u8, 0usize..32),
    ) {
        let mut magic = MAGIC;
        let mut version = VERSION;
        let mut declared = body.len() as u32;
        match kind {
            0 => magic[(corrupt_byte % 4) as usize] ^= 1 | (corrupt_byte & 0x7e),
            1 => version = VERSION ^ corrupt_byte.max(1),
            _ => declared = u32::MAX - u32::from(corrupt_byte),
        }
        let bytes = frame(magic, version, opcode, declared, &body);

        let mut sock = TcpStream::connect(target()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The server may close mid-write once the header is judged;
        // rejection without a readable reply is still a reject.
        if sock.write_all(&bytes).is_ok() {
            match Response::read(&mut sock) {
                Ok(Some(Response::Error { code, .. })) => {
                    prop_assert_eq!(code, error_code::BAD_FRAME, "frame {:02x?}", bytes);
                    assert_disconnected(&mut sock, "after BAD_FRAME");
                }
                Ok(Some(other)) => prop_assert!(false, "{:02x?} accepted: {:?}", bytes, other),
                Ok(None) => {}
                Err(e) => prop_assert!(
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                    ),
                    "server wedged or corrupted its reply: {}",
                    e
                ),
            }
        }
    }

    /// A frame that declares more body than it sends — whether the
    /// client then half-closes (mid-frame EOF) or just stalls — must
    /// resolve to an error or a disconnect before the deadline. The
    /// stall path exercises the per-connection read timeout.
    #[test]
    fn truncated_bodies_never_wedge(
        opcode in 0u8..=255,
        body in prop::collection::vec(0u8..=255u8, 0usize..24),
        extra in 1u32..64,
        eof in proptest::bool::ANY,
    ) {
        let declared = body.len() as u32 + extra;
        let bytes = frame(MAGIC, VERSION, opcode, declared, &body);
        match exchange(&bytes, eof) {
            Outcome::Reply(Response::Error { code, .. }) => {
                prop_assert_eq!(code, error_code::BAD_FRAME, "frame {:02x?}", bytes);
            }
            Outcome::Reply(other) => {
                prop_assert!(false, "truncated frame {:02x?} accepted: {:?}", bytes, other)
            }
            Outcome::Gone => {}
        }
    }

    /// Arbitrary well-framed bytes — random opcode, random body, honest
    /// length — get *some* well-formed reply or a clean disconnect.
    /// Unknown opcodes and garbage bodies must surface as protocol
    /// errors, never as hangs, panics, or corrupt reply frames.
    #[test]
    fn random_frames_get_a_well_formed_reply_or_eof(
        opcode in 0u8..=255,
        body in prop::collection::vec(0u8..=255u8, 0usize..48),
    ) {
        // Opcode 0x05 is SHUTDOWN — a *valid* frame that would drain the
        // shared target mid-run, so the fuzzer steers around it.
        let opcode = if opcode == 0x05 { 0x15 } else { opcode };
        let bytes = frame(MAGIC, VERSION, opcode, body.len() as u32, &body);
        // exchange() panics on wedge or unparseable reply; any reply
        // variant is acceptable — random bodies can spell valid
        // requests (e.g. opcode 0x04 STATS with an empty body).
        let _ = exchange(&bytes, false);
    }

    /// Sending a random prefix of a valid frame and hanging up must
    /// leave the server healthy for the next client.
    #[test]
    fn mid_frame_hangup_leaves_the_server_healthy(
        cut in 0usize..10,
        opcode in 0u8..=255,
    ) {
        let bytes = frame(MAGIC, VERSION, opcode, 0, &[]);
        {
            let mut sock = TcpStream::connect(target()).unwrap();
            let _ = sock.write_all(&bytes[..cut.min(bytes.len())]);
            // Drop: mid-header (or mid-frame) EOF.
        }
        let mut client = Client::connect(target()).expect("server must accept new clients");
        let stats = client.stats().expect("server must still answer STATS");
        prop_assert!(stats.submits == 0, "the fuzzer never submits a valid trace");
    }
}

/// Not a property: one final health check that runs after `cargo test`
/// interleaves all the fuzz cases — the shared server must still serve
/// a typed round trip.
#[test]
fn zz_fuzz_target_survives_the_whole_session() {
    let mut client = Client::connect(target()).expect("connect after fuzzing");
    let stats = client.stats().expect("STATS after fuzzing");
    // No fuzz case ever spells a valid SUBMIT (they would need a real
    // trace body); a responsive, zero-submit server is a healthy one.
    assert_eq!(stats.submits, 0);
}
