//! Suppression-policy integration: a race matched by a `CSUP` rule must
//! be served demoted (`suppressed = true`) with the `suppressed_hits`
//! counter advancing — live after a POLICY set, retroactively for
//! already-cached verdicts, and again after a warm restart that reloads
//! the persisted rules. A POLICY set through the fleet router must land
//! on every backend or fail loudly.

use clean_core::{ThreadId, TraceEvent};
use clean_serve::client::Client;
use clean_serve::protocol::{error_code, Response};
use clean_serve::router::{Router, RouterConfig};
use clean_serve::server::{Server, ServerConfig};
use clean_trace::{encode_trace, EngineKind, TraceDigest};
use std::net::TcpListener;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-policy-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two unordered same-address writes: a guaranteed WAW race at 0x40.
fn racy_trace() -> Vec<u8> {
    let events = [0u16, 1].map(|t| TraceEvent::Write {
        tid: ThreadId::new(t),
        addr: 0x40,
        size: 8,
    });
    encode_trace(&events).unwrap()
}

fn submit(client: &mut Client, trace: Vec<u8>) -> TraceDigest {
    match client.submit(trace).unwrap() {
        Response::Submitted { digest, .. } => digest,
        other => panic!("submit failed: {other:?}"),
    }
}

/// Analyzes and returns `(cached, per-race suppressed flags)`.
fn verdict_flags(client: &mut Client, digest: TraceDigest) -> (bool, Vec<bool>) {
    match client
        .analyze_with_retry(digest, EngineKind::Clean, 50)
        .unwrap()
    {
        Response::Verdict { cached, races, .. } => {
            assert!(!races.is_empty(), "the WAW trace must report races");
            (cached, races.iter().map(|r| r.suppressed).collect())
        }
        other => panic!("analyze failed: {other:?}"),
    }
}

#[test]
fn suppression_demotes_matched_races_live_and_after_warm_restart() {
    let dir = scratch("restart");

    // Phase 1: no policy — the race is served at full severity.
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = submit(&mut client, racy_trace());
    let (cached, flags) = verdict_flags(&mut client, digest);
    assert!(!cached, "first analyze must replay");
    assert!(
        flags.iter().all(|&s| !s),
        "no rule loaded, nothing may be suppressed"
    );
    assert_eq!(client.stats().unwrap().suppressed_hits, 0);

    // Phase 2: push a rule covering the racy address. The verdict is
    // already cached — suppression must reclassify it at serve time.
    match client.set_policy("CSUP v1\naddr 0x40..0x47 waw\n").unwrap() {
        Response::Policy { rules, .. } => assert_eq!(rules, 1),
        other => panic!("set_policy failed: {other:?}"),
    }
    let (cached, flags) = verdict_flags(&mut client, digest);
    assert!(cached, "second analyze must hit the verdict cache");
    assert!(
        flags.iter().all(|&s| s),
        "every WAW at 0x40 must be demoted to a warning"
    );
    let hits = client.stats().unwrap().suppressed_hits;
    assert!(hits >= 1, "suppressed_hits must advance, got {hits}");

    // The set must have persisted beside the store.
    let persisted = std::fs::read_to_string(dir.join("policy.csup")).unwrap();
    assert!(persisted.contains("addr 0x40..0x47 waw"));

    server.shutdown();
    server.join();

    // Phase 3: warm restart — the reloaded policy must demote the
    // persisted-cache verdict exactly as before.
    let warm = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(warm.addr()).unwrap();
    let (cached, flags) = verdict_flags(&mut client, digest);
    assert!(cached, "warm restart must serve from the persisted cache");
    assert!(
        flags.iter().all(|&s| s),
        "suppression must survive the restart"
    );
    assert!(client.stats().unwrap().suppressed_hits >= 1);
    match client.policy().unwrap() {
        Response::Policy { rules, text, .. } => {
            assert_eq!(rules, 1);
            assert!(text.contains("addr 0x40..0x47 waw"));
        }
        other => panic!("policy read failed: {other:?}"),
    }
    warm.shutdown();
    warm.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_policy_is_rejected_and_leaves_the_active_policy_unchanged() {
    let dir = scratch("reject");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    match client.set_policy("CSUP v1\nprefix feedface\n").unwrap() {
        Response::Policy { rules, .. } => assert_eq!(rules, 1),
        Response::Error { code, message } => panic!("valid policy rejected: {code} {message}"),
        other => panic!("unexpected: {other:?}"),
    }

    // Each malformed shape must come back BAD_POLICY...
    for bad in [
        "not a policy",
        "CSUP v2\n",
        "CSUP v1\ndigest zz\n",
        "CSUP v1\naddr 10..5\n",
        "CSUP v1\nfrobnicate everything\n",
    ] {
        match client.set_policy(bad).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, error_code::BAD_POLICY, "{bad:?}"),
            other => panic!("{bad:?} accepted: {other:?}"),
        }
    }
    // ...without clobbering the last good policy, in memory or on disk.
    match client.policy().unwrap() {
        Response::Policy { text, .. } => assert!(text.contains("prefix feedface")),
        other => panic!("policy read failed: {other:?}"),
    }
    assert!(std::fs::read_to_string(dir.join("policy.csup"))
        .unwrap()
        .contains("prefix feedface"));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn policy_set_through_the_router_lands_on_every_backend() {
    let dir = scratch("fanout");
    let listeners: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    drop(listeners);
    let nodes: Vec<_> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            Server::start(ServerConfig::new(dir.join(format!("node-{i}"))).addr(addr.clone()))
                .unwrap()
        })
        .collect();
    let router = Router::start(RouterConfig::new(addrs.clone())).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let digest = submit(&mut client, racy_trace());
    match client.set_policy("CSUP v1\naddr 0x40..0x47\n").unwrap() {
        Response::Policy { rules, .. } => assert_eq!(rules, 1),
        other => panic!("fleet set_policy failed: {other:?}"),
    }
    // Every backend — not just the digest's primary — holds the rules.
    for addr in &addrs {
        let mut direct = Client::connect(addr.as_str()).unwrap();
        match direct.policy().unwrap() {
            Response::Policy { rules, text, .. } => {
                assert_eq!(rules, 1, "backend {addr} missed the policy");
                assert!(text.contains("addr 0x40..0x47"));
            }
            other => panic!("backend {addr} policy read failed: {other:?}"),
        }
    }
    // And verdicts routed anywhere come back demoted.
    let (_, flags) = verdict_flags(&mut client, digest);
    assert!(flags.iter().all(|&s| s));

    match client.shutdown().unwrap() {
        Response::ShuttingDown => {}
        other => panic!("fleet shutdown failed: {other:?}"),
    }
    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rule_hits_advance_and_prune_drops_the_dead_rule() {
    let dir = scratch("prune");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = submit(&mut client, racy_trace());

    // Rule 1 covers the racy address; rule 2 can never fire.
    let text = "CSUP v1\naddr 0x40..0x47\naddr 0xdead00..0xdeadff\n";
    match client.set_policy(text).unwrap() {
        Response::Policy { rules, hits, .. } => {
            assert_eq!(rules, 2);
            assert_eq!(hits, vec![0, 0], "a fresh policy starts at zero");
        }
        other => panic!("set_policy failed: {other:?}"),
    }
    let (_, flags) = verdict_flags(&mut client, digest);
    let suppressed = flags.iter().filter(|&&s| s).count() as u64;
    assert!(suppressed >= 1);

    // The read reports per-rule credit: all of it on rule 1.
    let (hits, live_text) = match client.policy().unwrap() {
        Response::Policy { hits, text, .. } => (hits, text),
        other => panic!("policy read failed: {other:?}"),
    };
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0], suppressed);
    assert_eq!(hits[1], 0);

    // Prune client-side exactly as the CLI does: drop zero-hit rules,
    // push the survivors. The set resets the audit window.
    let policy = clean_serve::policy::SuppressionPolicy::parse(&live_text).unwrap();
    let pruned = policy.prune(&hits);
    assert_eq!(pruned.rules().len(), 1);
    match client.set_policy(pruned.text()).unwrap() {
        Response::Policy { rules, hits, text } => {
            assert_eq!(rules, 1);
            assert_eq!(hits, vec![0]);
            assert!(text.contains("addr 0x40..0x47"));
            assert!(!text.contains("0xdead00"), "dead rule must be gone");
        }
        other => panic!("prune set failed: {other:?}"),
    }
    // The surviving rule still classifies the cached verdict.
    let (cached, flags) = verdict_flags(&mut client, digest);
    assert!(cached);
    assert!(flags.iter().all(|&s| s));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unparseable_policy_file_fails_startup_loudly() {
    let dir = scratch("startup");
    std::fs::write(dir.join("policy.csup"), "CSUP v1\nnonsense rule\n").unwrap();
    let err = Server::start(ServerConfig::new(&dir)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("line 2"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
