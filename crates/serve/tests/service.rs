//! End-to-end service tests over real TCP connections: admission
//! control, verdict caching, digest dedup, graceful drain, and —
//! the acceptance bar — 16 concurrent clients whose served verdicts
//! all equal a direct `replay_sharded` run.

use clean_serve::client::Client;
use clean_serve::protocol::{error_code, Response};
use clean_serve::server::{Server, ServerConfig};
use clean_trace::{
    digest_events, read_trace, record_kernel_trace, replay_sharded, EngineKind, RecordOptions,
    TraceDigest,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Per-test scratch dir, wiped on creation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records a workload kernel trace and returns its encoded bytes.
fn record(dir: &std::path::Path, name: &str, racy: bool, seed: u64) -> Vec<u8> {
    let path = dir.join(format!("{name}-{racy}-{seed}.cltr"));
    record_kernel_trace(
        name,
        &path,
        &RecordOptions {
            threads: 4,
            racy,
            seed,
        },
    )
    .unwrap();
    std::fs::read(&path).unwrap()
}

fn submit(client: &mut Client, trace: &[u8]) -> (TraceDigest, bool) {
    match client.submit(trace.to_vec()).unwrap() {
        Response::Submitted { digest, dedup, .. } => (digest, dedup),
        other => panic!("submit failed: {other:?}"),
    }
}

#[test]
fn submit_analyze_matches_direct_replay() {
    let dir = scratch("direct");
    let server = Server::start(ServerConfig::new(dir.join("store"))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for (name, racy) in [("dedup", true), ("dedup", false), ("streamcluster", true)] {
        let trace = record(&dir, name, racy, 7);
        let (digest, _) = submit(&mut client, &trace);
        let Response::Verdict {
            digest: vdigest,
            races,
            events,
            ..
        } = client.analyze(digest, EngineKind::Clean, true).unwrap()
        else {
            panic!("expected verdict");
        };
        assert_eq!(vdigest, digest);

        // Ground truth: decode the same bytes and replay directly.
        let path = dir.join("roundtrip.cltr");
        std::fs::write(&path, &trace).unwrap();
        let direct_events = read_trace(&path).unwrap();
        assert_eq!(digest_events(&direct_events), digest);
        assert_eq!(events, direct_events.len() as u64);
        let direct: HashSet<_> = replay_sharded(&direct_events, EngineKind::Clean, 4)
            .into_iter()
            .collect();
        let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
        assert_eq!(served, direct, "served verdict must equal direct replay");
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resubmit_dedups_and_repeat_analyze_hits_cache() {
    let dir = scratch("dedup");
    let server = Server::start(ServerConfig::new(dir.join("store"))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let trace = record(&dir, "dedup", true, 3);
    let (digest, dedup) = submit(&mut client, &trace);
    assert!(!dedup, "first submit is new");
    let (digest2, dedup2) = submit(&mut client, &trace);
    assert_eq!(digest2, digest);
    assert!(dedup2, "identical resubmit dedups on digest");

    // First analyze: replay. Second: cache, with no new replay work.
    let Response::Verdict { cached, races, .. } =
        client.analyze(digest, EngineKind::Clean, true).unwrap()
    else {
        panic!("expected verdict");
    };
    assert!(!cached);
    let stats_before = client.stats().unwrap();
    let Response::Verdict {
        cached: cached2,
        races: races2,
        ..
    } = client.analyze(digest, EngineKind::Clean, true).unwrap()
    else {
        panic!("expected verdict");
    };
    assert!(cached2, "repeat ANALYZE is served from the verdict cache");
    assert_eq!(races2, races);
    let stats_after = client.stats().unwrap();
    assert_eq!(stats_after.cache_hits, stats_before.cache_hits + 1);
    assert_eq!(
        stats_after.jobs_completed, stats_before.jobs_completed,
        "a cache hit must not run a replay job"
    );
    assert_eq!(stats_after.submit_dedup_hits, 1);
    assert_eq!(stats_after.submits, 2);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sixteen_concurrent_clients_get_direct_replay_verdicts() {
    let dir = scratch("concurrent");
    let server = Server::start(
        ServerConfig::new(dir.join("store"))
            .queue_cap(64)
            .per_client_cap(8),
    )
    .unwrap();
    let addr = server.addr();

    // Four distinct traces; ground-truth verdicts computed directly.
    let corpus: Vec<Vec<u8>> = vec![
        record(&dir, "dedup", true, 1),
        record(&dir, "dedup", false, 1),
        record(&dir, "streamcluster", true, 2),
        record(&dir, "streamcluster", false, 2),
    ];
    let truth: Vec<(TraceDigest, HashSet<_>)> = corpus
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let path = dir.join(format!("truth-{i}.cltr"));
            std::fs::write(&path, trace).unwrap();
            let events = read_trace(&path).unwrap();
            (
                digest_events(&events),
                replay_sharded(&events, EngineKind::Clean, 4)
                    .into_iter()
                    .collect(),
            )
        })
        .collect();
    let corpus = Arc::new(corpus);
    let truth = Arc::new(truth);
    // All clients submit before any analyzes, so every digest resolves.
    let barrier = Arc::new(std::sync::Barrier::new(16));

    let handles: Vec<_> = (0..16)
        .map(|i| {
            let corpus = Arc::clone(&corpus);
            let truth = Arc::clone(&truth);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Each client submits one trace and analyzes all four —
                // plenty of digest-level contention and coalescing.
                let mine = i % corpus.len();
                let (digest, _) = submit(&mut client, &corpus[mine]);
                assert_eq!(digest, truth[mine].0);
                barrier.wait();
                for pass in 0..2 {
                    for (expect_digest, expect_races) in truth.iter() {
                        let Response::Verdict { digest, races, .. } = client
                            .analyze_with_retry(*expect_digest, EngineKind::Clean, 50)
                            .unwrap()
                        else {
                            panic!("pass {pass}: expected a verdict");
                        };
                        assert_eq!(digest, *expect_digest);
                        let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
                        assert_eq!(served, *expect_races);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.store_traces, 4, "4 distinct digests stored");
    assert_eq!(stats.submit_dedup_hits, 12, "16 submits, 4 unique");
    assert_eq!(stats.analyzes, 16 * 8, "two passes of four per client");
    // Every key needs at least one replay job; coalescing and the
    // cache keep the rest cheap. Each client's second pass re-analyzes
    // keys whose verdicts it already waited for, so at least those four
    // per client are guaranteed cache hits.
    assert!(stats.jobs_completed >= 4, "jobs: {}", stats.jobs_completed);
    assert!(stats.cache_hits >= 16 * 4, "hits: {}", stats.cache_hits);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_capacity_queue_sheds_with_retry_after() {
    let dir = scratch("shed");
    let server = Server::start(
        ServerConfig::new(dir.join("store"))
            .queue_cap(0)
            .retry_millis(123),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let trace = record(&dir, "dedup", true, 5);
    let (digest, _) = submit(&mut client, &trace);
    match client.analyze(digest, EngineKind::Clean, true).unwrap() {
        Response::RetryAfter { millis } => assert_eq!(millis, 123),
        other => panic!("expected RetryAfter, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_rejected, 1);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_client_cap_sheds_nowait_flood() {
    let dir = scratch("cap");
    let server = Server::start(
        ServerConfig::new(dir.join("store"))
            .queue_cap(1024)
            .per_client_cap(2)
            .workers(1),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A large synthetic trace keeps the single worker busy for far
    // longer than the client's sub-millisecond round trips, so the
    // later no-wait requests deterministically pile up behind it.
    let big: Vec<clean_core::TraceEvent> = (0..2_000_000u64)
        .map(|i| clean_core::TraceEvent::Write {
            tid: clean_core::ThreadId::new((i % 4) as u16),
            addr: 64 + 8 * ((i / 4) % 4096) as usize,
            size: 8,
        })
        .collect();
    let (big_digest, _) = submit(&mut client, &clean_trace::encode_trace(&big).unwrap());
    let small: Vec<TraceDigest> = (0..3)
        .map(|seed| {
            let trace = record(&dir, "streamcluster", true, 100 + seed);
            submit(&mut client, &trace).0
        })
        .collect();

    // Occupy the worker, then flood: big job runs, one small job queues
    // (cap reached), the rest of the flood sheds.
    let Response::Pending { job: big_job } = client
        .analyze(big_digest, EngineKind::Clean, false)
        .unwrap()
    else {
        panic!("expected pending for the big trace");
    };
    let mut jobs = vec![big_job];
    let mut shed = 0;
    for d in &small {
        match client.analyze(*d, EngineKind::Clean, false).unwrap() {
            Response::Pending { job } => jobs.push(job),
            Response::RetryAfter { .. } => shed += 1,
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(shed >= 1, "a 3-deep flood over a 2-job cap must shed");
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_rejected, shed);
    // The admitted jobs still finish and can be polled to verdicts.
    for job in jobs {
        loop {
            match client.status(job).unwrap() {
                Response::Pending { .. } => std::thread::sleep(std::time::Duration::from_millis(5)),
                Response::Verdict { .. } => break,
                other => panic!("unexpected: {other:?}"),
            }
        }
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_digest_and_unknown_job_errors() {
    let dir = scratch("unknown");
    let server = Server::start(ServerConfig::new(dir.join("store"))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client
        .analyze(TraceDigest(0xdead), EngineKind::Clean, true)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, error_code::UNKNOWN_DIGEST),
        other => panic!("unexpected: {other:?}"),
    }
    match client.status(999).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::UNKNOWN_JOB),
        other => panic!("unexpected: {other:?}"),
    }
    match client.submit(b"garbage".to_vec()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_TRACE),
        other => panic!("unexpected: {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_queued_job() {
    let dir = scratch("drain");
    let server = Server::start(ServerConfig::new(dir.join("store")).workers(1)).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let trace = record(&dir, "dedup", true, 9);
    let (digest, _) = submit(&mut client, &trace);

    // Admit a job (Pending proves it is in the queue), then shut the
    // server down from a second connection before polling the verdict.
    let Response::Pending { job } = client.analyze(digest, EngineKind::Clean, false).unwrap()
    else {
        panic!("expected pending");
    };
    let mut c2 = Client::connect(addr).unwrap();
    assert!(matches!(c2.shutdown().unwrap(), Response::ShuttingDown));

    // Drain completes the admitted job; STATUS still serves during it.
    let served: HashSet<_> = loop {
        match client.status(job).unwrap() {
            Response::Pending { .. } => std::thread::sleep(std::time::Duration::from_millis(2)),
            Response::Verdict { races, .. } => {
                break races.into_iter().map(|r| r.to_found()).collect()
            }
            other => panic!("unexpected: {other:?}"),
        }
    };
    let path = dir.join("truth.cltr");
    std::fs::write(&path, &trace).unwrap();
    let direct: HashSet<_> = replay_sharded(&read_trace(&path).unwrap(), EngineKind::Clean, 4)
        .into_iter()
        .collect();
    assert_eq!(served, direct, "drained verdict must equal direct replay");

    // New replay work is refused while draining: the verdict for this
    // digest under a *different* engine is uncached, so the request
    // reaches the (closed) queue.
    match client.analyze(digest, EngineKind::FastTrack, true).unwrap() {
        Response::ShuttingDown => {}
        other => panic!("draining server must refuse new work, got {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_serves_persisted_verdicts_without_replaying() {
    let dir = scratch("warm");
    let store_dir = dir.join("store");
    let trace = record(&dir, "dedup", true, 21);
    let digest;
    {
        let server = Server::start(ServerConfig::new(&store_dir)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        digest = submit(&mut client, &trace).0;
        for engine in [EngineKind::Clean, EngineKind::FastTrack] {
            assert!(matches!(
                client.analyze(digest, engine, true).unwrap(),
                Response::Verdict { cached: false, .. }
            ));
        }
        server.join();
    }

    // Same store dir, fresh process state (and a fresh ephemeral port —
    // rebinding the old one would race TIME_WAIT).
    let server = Server::start(ServerConfig::new(&store_dir)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut verdicts = Vec::new();
    for engine in [EngineKind::Clean, EngineKind::FastTrack] {
        let Response::Verdict { cached, races, .. } = client.analyze(digest, engine, true).unwrap()
        else {
            panic!("expected verdict");
        };
        assert!(cached, "warm restart must serve from the persisted log");
        verdicts.push(races);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_completed, 0, "no replay ran after restart");
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(
        stats.cache_persist_hits, 2,
        "both hits came from reloaded entries"
    );
    // And the reloaded verdicts are the real ones.
    let path = dir.join("warm.cltr");
    std::fs::write(&path, &trace).unwrap();
    let events = read_trace(&path).unwrap();
    for (races, engine) in verdicts
        .into_iter()
        .zip([EngineKind::Clean, EngineKind::FastTrack])
    {
        let direct: HashSet<_> = replay_sharded(&events, engine, 4).into_iter().collect();
        let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
        assert_eq!(served, direct, "engine {}", engine.name());
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn peer_fetch_pulls_missing_trace_before_replaying() {
    let dir = scratch("peerfetch");
    // Node A holds the trace; node B has never seen it but knows A.
    let node_a = Server::start(ServerConfig::new(dir.join("store-a"))).unwrap();
    let trace = record(&dir, "streamcluster", true, 31);
    let mut client_a = Client::connect(node_a.addr()).unwrap();
    let (digest, _) = submit(&mut client_a, &trace);

    let node_b =
        Server::start(ServerConfig::new(dir.join("store-b")).peer(node_a.addr().to_string()))
            .unwrap();
    let mut client_b = Client::connect(node_b.addr()).unwrap();
    let Response::Verdict { races, .. } = client_b
        .analyze_with_retry(digest, EngineKind::Clean, 10)
        .unwrap()
    else {
        panic!("expected verdict via peer fetch");
    };
    let path = dir.join("peer.cltr");
    std::fs::write(&path, &trace).unwrap();
    let direct: HashSet<_> = replay_sharded(&read_trace(&path).unwrap(), EngineKind::Clean, 4)
        .into_iter()
        .collect();
    let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
    assert_eq!(served, direct, "fetched-trace verdict must equal direct");

    let stats = client_b.stats().unwrap();
    assert_eq!(stats.fetches, 1, "exactly one peer fetch");
    assert_eq!(stats.store_traces, 1, "the fetched trace is now resident");

    // A repeat analyze is a local cache hit — no second fetch.
    assert!(matches!(
        client_b.analyze(digest, EngineKind::Clean, true).unwrap(),
        Response::Verdict { cached: true, .. }
    ));
    assert_eq!(client_b.stats().unwrap().fetches, 1);

    // A digest nobody holds still fails cleanly after the peer round.
    match client_b
        .analyze(TraceDigest(0xabcd), EngineKind::Clean, true)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, error_code::UNKNOWN_DIGEST),
        other => panic!("unexpected: {other:?}"),
    }
    node_b.join();
    node_a.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_digest_is_refetched_from_peer() {
    let dir = scratch("refetch");
    // Node A (unbounded) holds four distinct traces; node B's store is
    // capped below any two of them, so every fetch evicts.
    let node_a = Server::start(ServerConfig::new(dir.join("store-a"))).unwrap();
    let mut client_a = Client::connect(node_a.addr()).unwrap();
    let corpus: Vec<Vec<u8>> = vec![
        record(&dir, "dedup", true, 40),
        record(&dir, "dedup", false, 41),
        record(&dir, "streamcluster", true, 42),
        record(&dir, "streamcluster", false, 43),
    ];
    let digests: Vec<TraceDigest> = corpus.iter().map(|t| submit(&mut client_a, t).0).collect();
    let unique: HashSet<_> = digests.iter().copied().collect();
    assert_eq!(unique.len(), 4, "corpus digests must be distinct");
    let min_len = corpus.iter().map(Vec::len).min().unwrap() as u64;

    let node_b = Server::start(
        ServerConfig::new(dir.join("store-b"))
            .store_max_bytes(min_len)
            .peer(node_a.addr().to_string()),
    )
    .unwrap();
    let mut client_b = Client::connect(node_b.addr()).unwrap();

    // Analyzing each digest in turn fetches it and (store cap = one
    // trace) evicts its predecessor.
    for d in &digests {
        assert!(matches!(
            client_b
                .analyze_with_retry(*d, EngineKind::Clean, 10)
                .unwrap(),
            Response::Verdict { .. }
        ));
    }
    let stats = client_b.stats().unwrap();
    assert_eq!(stats.fetches, 4);
    // The exact eviction count races the worker's deferred unpin (a
    // still-pinned predecessor survives one insert and is collected by
    // the next); what is deterministic is that evictions happened at
    // all, and — asserted below via the fetch counter — that digest 0
    // was among the victims.
    assert!(
        stats.store_evictions >= 1,
        "evictions: {}",
        stats.store_evictions
    );

    // The first digest was evicted long ago. Its verdict is still
    // cached, so analysis under the *same* engine never needs the bytes
    // back...
    assert!(matches!(
        client_b
            .analyze(digests[0], EngineKind::Clean, true)
            .unwrap(),
        Response::Verdict { cached: true, .. }
    ));
    assert_eq!(client_b.stats().unwrap().fetches, 4, "cache hit, no fetch");
    // ...but a *different* engine must replay, which re-fetches and
    // re-pins the evicted trace.
    let Response::Verdict { races, .. } = client_b
        .analyze_with_retry(digests[0], EngineKind::FastTrack, 10)
        .unwrap()
    else {
        panic!("expected verdict after re-fetch");
    };
    let stats = client_b.stats().unwrap();
    assert_eq!(stats.fetches, 5, "evicted digest fetched again");
    let path = dir.join("refetch.cltr");
    std::fs::write(&path, &corpus[0]).unwrap();
    let direct: HashSet<_> = replay_sharded(&read_trace(&path).unwrap(), EngineKind::FastTrack, 4)
        .into_iter()
        .collect();
    let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
    assert_eq!(served, direct);
    node_b.join();
    node_a.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verdicts_consistent_across_engines() {
    let dir = scratch("engines");
    let server = Server::start(ServerConfig::new(dir.join("store"))).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let trace = record(&dir, "dedup", true, 11);
    let (digest, _) = submit(&mut client, &trace);
    let path = dir.join("engines.cltr");
    std::fs::write(&path, &trace).unwrap();
    let events = read_trace(&path).unwrap();
    for engine in EngineKind::ALL {
        let Response::Verdict { races, .. } = client.analyze(digest, engine, true).unwrap() else {
            panic!("expected verdict for {}", engine.name());
        };
        let direct: HashSet<_> = replay_sharded(&events, engine, 4).into_iter().collect();
        let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
        assert_eq!(served, direct, "engine {}", engine.name());
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
