//! Crash consistency for the durable verdict cache: a process killed
//! mid-append may leave a torn final line in `verdicts.log`. Reopening
//! must recover every fully-written verdict, drop only the torn tail,
//! and keep working — for *every possible* kill point, byte by byte.

use clean_baselines::{FoundRace, FullRaceKind};
use clean_core::{ThreadId, TraceEvent};
use clean_serve::cache::{Verdict, VerdictCache, VerdictKey};
use clean_serve::client::Client;
use clean_serve::protocol::Response;
use clean_serve::server::{Server, ServerConfig, VERDICT_LOG};
use clean_trace::{encode_trace, EngineKind, TraceDigest};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-crash-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn verdict(i: u64) -> (VerdictKey, Verdict) {
    let key = VerdictKey {
        digest: TraceDigest(0x1000 + u128::from(i)),
        engine: EngineKind::Clean,
    };
    let races = (0..(i % 3))
        .map(|r| FoundRace {
            kind: if r == 0 {
                FullRaceKind::Waw
            } else {
                FullRaceKind::Raw
            },
            addr: 0x40 + 8 * (i as usize) + r as usize,
            current: ThreadId::new(1),
            previous: ThreadId::new(0),
        })
        .collect();
    (
        key,
        Verdict {
            races,
            events: 100 + i,
        },
    )
}

#[test]
fn every_truncation_point_recovers_all_complete_lines_and_nothing_else() {
    let dir = scratch("sweep");
    let log_path = dir.join("verdicts.log");

    // Write a known log: 6 verdicts, some clean, some racy.
    let entries: Vec<(VerdictKey, Verdict)> = (0..6).map(verdict).collect();
    {
        let cache = VerdictCache::open(&log_path).unwrap();
        for (key, v) in &entries {
            cache.insert(*key, v.clone());
        }
    }
    let full = std::fs::read(&log_path).unwrap();
    assert!(full.ends_with(b"\n"), "every append ends with a newline");

    // Byte ends of each complete line, in append order: line 0 is the
    // CVERD header, line i+1 is entries[i].
    let line_ends: Vec<usize> = full
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(line_ends.len(), entries.len() + 1);

    // Every prefix of the log is a possible kill state.
    for cut in 0..=full.len() {
        let torn_path = dir.join(format!("torn-{cut}.log"));
        std::fs::write(&torn_path, &full[..cut]).unwrap();
        let cache = VerdictCache::open(&torn_path)
            .unwrap_or_else(|e| panic!("cut {cut}: reopen must not fail: {e}"));
        // A complete header plus k complete entry lines recovers
        // exactly the first k verdicts; a torn header recovers none.
        let survivors = if cut >= line_ends[0] {
            line_ends[1..].iter().filter(|&&end| end <= cut).count()
        } else {
            0
        };
        assert_eq!(cache.len(), survivors, "cut {cut}");
        for (i, (key, v)) in entries.iter().enumerate() {
            let got = cache.get(key);
            if i < survivors {
                assert_eq!(got.as_ref(), Some(v), "cut {cut}: entry {i} lost");
            } else {
                assert!(
                    got.is_none(),
                    "cut {cut}: entry {i} resurrected from a torn line"
                );
            }
        }
        // The compacted-on-open log must keep accepting appends...
        let (fresh_key, fresh_v) = verdict(100 + cut as u64);
        cache.insert(fresh_key, fresh_v.clone());
        drop(cache);
        // ...and a second reopen sees survivors + the new entry intact.
        let again = VerdictCache::open(&torn_path).unwrap();
        assert_eq!(
            again.len(),
            survivors + 1,
            "cut {cut}: compaction lost data"
        );
        assert_eq!(again.get(&fresh_key).as_ref(), Some(&fresh_v), "cut {cut}");
        std::fs::remove_file(&torn_path).ok();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn racy_trace(addr: usize) -> Vec<u8> {
    let events = [0u16, 1].map(|t| TraceEvent::Write {
        tid: ThreadId::new(t),
        addr,
        size: 8,
    });
    encode_trace(&events).unwrap()
}

fn analyze(client: &mut Client, digest: TraceDigest) -> (bool, usize) {
    match client
        .analyze_with_retry(digest, EngineKind::Clean, 50)
        .unwrap()
    {
        Response::Verdict { cached, races, .. } => (cached, races.len()),
        other => panic!("analyze failed: {other:?}"),
    }
}

#[test]
fn server_warm_restart_replays_only_the_torn_verdict() {
    let dir = scratch("server");

    // Two racy traces, analyzed in a known order → two log lines.
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let digests: Vec<TraceDigest> = [0x40usize, 0x80]
        .iter()
        .map(|&addr| match client.submit(racy_trace(addr)).unwrap() {
            Response::Submitted { digest, .. } => digest,
            other => panic!("submit failed: {other:?}"),
        })
        .collect();
    let mut race_counts = Vec::new();
    for &digest in &digests {
        let (cached, n) = analyze(&mut client, digest);
        assert!(!cached);
        assert!(n > 0, "the WAW trace must race");
        race_counts.push(n);
    }
    server.shutdown();
    server.join();

    // Kill mid-append: tear the tail off the second verdict's line.
    let log_path = dir.join(VERDICT_LOG);
    let log = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &log[..log.len() - 2]).unwrap();

    // Warm restart: the intact verdict is served from the persisted
    // cache; the torn one is silently replayed fresh.
    let warm = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(warm.addr()).unwrap();
    let (cached, n) = analyze(&mut client, digests[0]);
    assert!(cached, "intact log line must serve from cache");
    assert_eq!(n, race_counts[0]);
    let (cached, n) = analyze(&mut client, digests[1]);
    assert!(!cached, "torn log line must be dropped and replayed");
    assert_eq!(n, race_counts[1], "the replay must reproduce the verdict");
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_persist_hits, 1, "exactly one persisted hit");
    warm.shutdown();
    warm.join();

    // The replay was re-persisted: a third start serves both cached.
    let third = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(third.addr()).unwrap();
    for (&digest, &n) in digests.iter().zip(&race_counts) {
        let (cached, got) = analyze(&mut client, digest);
        assert!(cached, "everything must be cached after the heal");
        assert_eq!(got, n);
    }
    assert_eq!(client.stats().unwrap().cache_persist_hits, 2);
    third.shutdown();
    third.join();
    let _ = std::fs::remove_dir_all(&dir);
}
