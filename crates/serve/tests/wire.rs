//! Wire-level tests: raw bytes against a live server socket, checking
//! the frame grammar is enforced end to end — not just by the codec
//! unit tests — and that protocol errors are reported before the
//! connection drops.

use clean_core::{ThreadId, TraceEvent};
use clean_obs::{Snapshot, EXPOSITION_HEADER};
use clean_serve::client::Client;
use clean_serve::protocol::{error_code, Request, Response, MAGIC, VERSION};
use clean_serve::server::{Server, ServerConfig};
use clean_trace::{encode_trace, TraceDigest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-serve-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stats_over_raw_socket() {
    let dir = scratch("stats");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();

    // Hand-rolled STATS frame: magic, version, opcode 0x04, empty body.
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x04);
    frame.extend_from_slice(&0u32.to_le_bytes());
    sock.write_all(&frame).unwrap();

    let reply = Response::read(&mut sock).unwrap().unwrap();
    assert!(matches!(reply, Response::Stats(_)), "got {reply:?}");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_gets_error_then_disconnect() {
    let dir = scratch("magic");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(b"BOGUS frame bytes").unwrap();

    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_FRAME),
        other => panic!("expected BAD_FRAME error, got {other:?}"),
    }
    // After a framing error the server drops the connection: either a
    // clean EOF or a reset (the server closed with bytes still unread).
    let mut rest = Vec::new();
    match sock.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty()),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_version_and_unknown_opcode_are_rejected() {
    let dir = scratch("version");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    for (version, opcode) in [(VERSION + 1, 0x04u8), (VERSION, 0x6fu8)] {
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(version);
        frame.push(opcode);
        frame.extend_from_slice(&0u32.to_le_bytes());
        sock.write_all(&frame).unwrap();
        match Response::read(&mut sock).unwrap().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, error_code::BAD_FRAME),
            other => panic!("expected BAD_FRAME error, got {other:?}"),
        }
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_body_length_is_rejected_without_hanging() {
    let dir = scratch("oversize");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    // Declares a 4 GiB body; the server must refuse at the header.
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x01);
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    sock.write_all(&frame).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_FRAME),
        other => panic!("expected BAD_FRAME error, got {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn half_frame_then_disconnect_is_tolerated() {
    let dir = scratch("halfframe");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    {
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.write_all(&MAGIC[..2]).unwrap();
        // Drop mid-header: the server must not wedge.
    }
    // The server is still healthy afterwards.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    Request::Stats.write(&mut sock).unwrap();
    assert!(matches!(
        Response::read(&mut sock).unwrap().unwrap(),
        Response::Stats(_)
    ));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fetch_over_raw_socket_returns_stored_bytes() {
    let dir = scratch("fetch");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    // Store a small trace through the typed client.
    let events = [0u16, 1].map(|t| TraceEvent::Write {
        tid: ThreadId::new(t),
        addr: 64,
        size: 8,
    });
    let trace = encode_trace(&events).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let Response::Submitted { digest, .. } = client.submit(trace.clone()).unwrap() else {
        panic!("submit failed");
    };

    // Hand-rolled FETCH frame: opcode 0x06, 16-byte digest body.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x06);
    frame.extend_from_slice(&16u32.to_le_bytes());
    frame.extend_from_slice(&digest.to_bytes());
    sock.write_all(&frame).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::TraceData {
            digest: got,
            trace: bytes,
        } => {
            assert_eq!(got, digest);
            assert_eq!(bytes, trace, "FETCH returns the stored bytes verbatim");
        }
        other => panic!("expected TRACE_DATA, got {other:?}"),
    }

    // An absent digest is a clean UNKNOWN_DIGEST, not a hang.
    Request::Fetch {
        digest: TraceDigest(0xdead_beef),
    }
    .write(&mut sock)
    .unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::UNKNOWN_DIGEST),
        other => panic!("expected UNKNOWN_DIGEST, got {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_mid_frame_gets_bad_frame_and_disconnect() {
    let dir = scratch("loris");
    let server = Server::start(ServerConfig::new(&dir).io_timeout_millis(150)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();

    // Half a frame header, then stall: the per-connection read timeout
    // must trip, answer BAD_FRAME, and drop the connection.
    sock.write_all(&MAGIC[..3]).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, error_code::BAD_FRAME);
            assert!(message.contains("timed out"), "got {message:?}");
        }
        other => panic!("expected BAD_FRAME error, got {other:?}"),
    }
    let mut rest = Vec::new();
    match sock.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "server must disconnect the staller"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }

    // Stalling mid-*body* is the same offense: declare a STATUS body and
    // send half of it.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x03);
    frame.extend_from_slice(&8u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]);
    sock.write_all(&frame).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_FRAME),
        other => panic!("expected BAD_FRAME error, got {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connection_outlives_the_io_timeout() {
    let dir = scratch("idle");
    let server = Server::start(ServerConfig::new(&dir).io_timeout_millis(100)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    // Idle at a frame boundary for several timeout periods: the server
    // must keep the connection, only mid-frame stalls are evicted.
    std::thread::sleep(Duration::from_millis(350));
    Request::Stats.write(&mut sock).unwrap();
    assert!(matches!(
        Response::read(&mut sock).unwrap().unwrap(),
        Response::Stats(_)
    ));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_over_raw_socket_round_trips_the_exposition() {
    let dir = scratch("metrics");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    // One submission so the exposition has counted traffic to show.
    let events = [0u16, 1].map(|t| TraceEvent::Write {
        tid: ThreadId::new(t),
        addr: 128,
        size: 8,
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let Response::Submitted { .. } = client.submit(encode_trace(&events).unwrap()).unwrap() else {
        panic!("submit failed");
    };

    // Hand-rolled METRICS frame: opcode 0x08, empty body.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x08);
    frame.extend_from_slice(&0u32.to_le_bytes());
    sock.write_all(&frame).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Metrics { text } => {
            assert!(
                text.starts_with(EXPOSITION_HEADER),
                "exposition must lead with the CMET header, got {:?}",
                text.lines().next()
            );
            let snap = Snapshot::parse(&text).unwrap();
            assert_eq!(snap.counter("submits", &[]), Some(1));
            assert_eq!(
                snap.counter("serve_requests_total", &[("verb", "submit")]),
                Some(1)
            );
            let lat = snap
                .hist(
                    "serve_latency_micros",
                    &[("verb", "submit"), ("dedup", "false")],
                )
                .expect("submit latency histogram");
            assert_eq!(lat.count(), 1);
            // The text form is lossless: parse → render → parse fixes.
            let again = Snapshot::parse(&snap.render(&[])).unwrap();
            assert_eq!(again, snap);
        }
        other => panic!("expected METRICS reply, got {other:?}"),
    }

    // The typed client path reads the same exposition.
    let typed = Snapshot::parse(&client.metrics().unwrap()).unwrap();
    assert_eq!(typed.counter("submits", &[]), Some(1));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn typed_request_roundtrips_against_live_server() {
    let dir = scratch("typed");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    // Status for a job that cannot exist yet.
    Request::Status { job: 12345 }.write(&mut sock).unwrap();
    match Response::read(&mut sock).unwrap().unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, error_code::UNKNOWN_JOB);
            assert!(message.contains("12345"));
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
