//! Fleet tests: a 3-node in-process fleet behind the router must serve
//! verdicts identical to single-node clean-serve and to a direct
//! `replay_sharded` run, for every engine, under 16 concurrent clients —
//! including after one backend is killed and its digests come back via
//! peer FETCH from the surviving replica.

use clean_obs::Snapshot;
use clean_serve::client::Client;
use clean_serve::protocol::{error_code, Response};
use clean_serve::router::{primary_backend, Router, RouterConfig};
use clean_serve::server::{Server, ServerConfig, ServerHandle};
use clean_trace::{
    digest_events, read_trace, record_kernel_trace, replay_sharded, EngineKind, RecordOptions,
    TraceDigest,
};
use std::collections::HashSet;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clean-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(dir: &Path, name: &str, racy: bool, seed: u64) -> Vec<u8> {
    let path = dir.join(format!("{name}-{racy}-{seed}.cltr"));
    record_kernel_trace(
        name,
        &path,
        &RecordOptions {
            threads: 4,
            racy,
            seed,
        },
    )
    .unwrap();
    std::fs::read(&path).unwrap()
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, then releasing them. Peers must be known *before* a node
/// starts, so the fleet cannot use bind-time ephemeral ports directly.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Starts an n-node fleet on `addrs`: every node gets every sibling as
/// a FETCH peer.
fn start_fleet(dir: &Path, addrs: &[String]) -> Vec<ServerHandle> {
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| a.clone())
                .collect();
            Server::start(
                ServerConfig::new(dir.join(format!("node-{i}")))
                    .addr(addr.clone())
                    .peers(peers),
            )
            .unwrap()
        })
        .collect()
}

fn submit(client: &mut Client, trace: &[u8]) -> (TraceDigest, bool) {
    match client.submit(trace.to_vec()).unwrap() {
        Response::Submitted { digest, dedup, .. } => (digest, dedup),
        other => panic!("submit failed: {other:?}"),
    }
}

type Truth = Vec<(TraceDigest, Vec<HashSet<clean_baselines::FoundRace>>)>;

/// Ground truth: digest plus the direct `replay_sharded` race set for
/// every engine, in `EngineKind::ALL` order.
fn ground_truth(dir: &Path, corpus: &[Vec<u8>]) -> Truth {
    corpus
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let path = dir.join(format!("truth-{i}.cltr"));
            std::fs::write(&path, trace).unwrap();
            let events = read_trace(&path).unwrap();
            let per_engine = EngineKind::ALL
                .iter()
                .map(|&engine| {
                    replay_sharded(&events, engine, 4)
                        .into_iter()
                        .collect::<HashSet<_>>()
                })
                .collect();
            (digest_events(&events), per_engine)
        })
        .collect()
}

fn assert_verdict_matches(
    client: &mut Client,
    digest: TraceDigest,
    engine: EngineKind,
    expect: &HashSet<clean_baselines::FoundRace>,
    context: &str,
) {
    let Response::Verdict {
        digest: got, races, ..
    } = client.analyze_with_retry(digest, engine, 50).unwrap()
    else {
        panic!(
            "{context}: expected verdict for {digest} / {}",
            engine.name()
        );
    };
    assert_eq!(got, digest);
    let served: HashSet<_> = races.into_iter().map(|r| r.to_found()).collect();
    assert_eq!(
        served,
        *expect,
        "{context}: {digest} under {}",
        engine.name()
    );
}

#[test]
fn fleet_matches_single_node_and_direct_replay_with_kill() {
    let dir = scratch("accept");
    let corpus: Vec<Vec<u8>> = vec![
        record(&dir, "dedup", true, 1),
        record(&dir, "dedup", false, 1),
        record(&dir, "streamcluster", true, 2),
        record(&dir, "fft", true, 3),
    ];
    let truth = ground_truth(&dir, &corpus);

    // Reference run: single-node clean-serve serves the same verdicts.
    {
        let single = Server::start(ServerConfig::new(dir.join("single"))).unwrap();
        let mut client = Client::connect(single.addr()).unwrap();
        for trace in &corpus {
            submit(&mut client, trace);
        }
        for (digest, per_engine) in &truth {
            for (engine, expect) in EngineKind::ALL.iter().zip(per_engine) {
                assert_verdict_matches(&mut client, *digest, *engine, expect, "single-node");
            }
        }
        single.join();
    }

    // The fleet: 3 nodes, replication 2, fronted by the router.
    let addrs = reserve_addrs(3);
    let mut nodes = start_fleet(&dir, &addrs);
    let router = Router::start(
        RouterConfig::new(addrs.clone())
            .connect_retries(1)
            .retry_delay_millis(10),
    )
    .unwrap();
    let router_addr = router.addr();

    // 16 concurrent clients: submit through the router, then analyze
    // every digest under every engine through the router.
    let corpus = Arc::new(corpus);
    let truth = Arc::new(truth);
    let barrier = Arc::new(std::sync::Barrier::new(16));
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let corpus = Arc::clone(&corpus);
            let truth = Arc::clone(&truth);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(router_addr).unwrap();
                let mine = i % corpus.len();
                let (digest, _) = submit(&mut client, &corpus[mine]);
                assert_eq!(digest, truth[mine].0);
                barrier.wait();
                for (digest, per_engine) in truth.iter() {
                    for (engine, expect) in EngineKind::ALL.iter().zip(per_engine) {
                        assert_verdict_matches(&mut client, *digest, *engine, expect, "fleet");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Dedup across nodes: every submit was forwarded to primary +
    // replica, and each (digest, node) pair stored exactly once.
    let mut client = Client::connect(router_addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.submits, 32, "16 submits x replication 2");
    assert_eq!(stats.submit_dedup_hits, 24, "8 unique (digest, node) pairs");
    assert_eq!(stats.store_traces, 8, "4 digests x 2 copies");
    assert!(stats.forwards >= 32, "forwards: {}", stats.forwards);
    assert_eq!(stats.fetches, 0, "healthy fleet never peer-fetches");

    // Kill the primary of digest 0. The read failover lands on a node
    // that does NOT hold the replica (it sits at the ring predecessor),
    // so serving this digest again must go through peer FETCH.
    let victim = primary_backend(truth[0].0, 3);
    let dead = nodes.remove(victim);
    dead.shutdown();
    dead.join();

    let (digest0, per_engine0) = &truth[0];
    for (engine, expect) in EngineKind::ALL.iter().zip(per_engine0) {
        assert_verdict_matches(&mut client, *digest0, *engine, expect, "post-kill");
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.fetches >= 1,
        "killed primary must force a peer fetch, got {}",
        stats.fetches
    );

    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failover_under_load_keeps_serving_direct_replay_verdicts() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = scratch("failover");
    let corpus: Vec<Vec<u8>> = vec![
        record(&dir, "streamcluster", true, 11),
        record(&dir, "dedup", true, 12),
    ];
    let truth = ground_truth(&dir, &corpus);

    let addrs = reserve_addrs(3);
    let mut nodes = start_fleet(&dir, &addrs);
    let router = Router::start(
        RouterConfig::new(addrs.clone())
            .connect_retries(1)
            .retry_delay_millis(10),
    )
    .unwrap();
    let router_addr = router.addr();

    let mut seed_client = Client::connect(router_addr).unwrap();
    for (trace, (digest, _)) in corpus.iter().zip(&truth) {
        let (got, _) = submit(&mut seed_client, trace);
        assert_eq!(got, *digest);
    }

    // 8 clients hammer analyzes for every digest under every engine in
    // a loop while the main thread kills the racy digest's primary
    // mid-stream. Every verdict any client receives — before, during,
    // or after the kill — must equal the direct replay; a torn socket
    // is the only tolerated failure, answered by a reconnect.
    let truth = Arc::new(truth);
    let stop = Arc::new(AtomicBool::new(false));
    let killed = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let truth = Arc::clone(&truth);
            let stop = Arc::clone(&stop);
            let killed = Arc::clone(&killed);
            std::thread::spawn(move || {
                let mut client = Client::connect(router_addr).unwrap();
                let mut post_kill_passes = 0u32;
                let mut attempts = 0u32;
                // Run until stopped AND at least one full pass has
                // succeeded after the kill — the failover must be
                // provably visible to every client.
                while !stop.load(Ordering::Acquire) || post_kill_passes == 0 {
                    attempts += 1;
                    assert!(
                        attempts < 10_000,
                        "worker {w}: no successful pass after the kill"
                    );
                    let was_killed = killed.load(Ordering::Acquire);
                    let mut torn = false;
                    'pass: for (digest, per_engine) in truth.iter() {
                        for (engine, expect) in EngineKind::ALL.iter().zip(per_engine) {
                            match client.analyze_with_retry(*digest, *engine, 50) {
                                Ok(Response::Verdict {
                                    digest: got, races, ..
                                }) => {
                                    assert_eq!(got, *digest);
                                    let served: HashSet<_> =
                                        races.into_iter().map(|r| r.to_found()).collect();
                                    assert_eq!(
                                        served,
                                        *expect,
                                        "worker {w}: verdict diverged from direct replay \
                                         ({digest} under {})",
                                        engine.name()
                                    );
                                }
                                Ok(other) => panic!("worker {w}: unexpected {other:?}"),
                                Err(_) => {
                                    // Socket torn by the kill: reconnect,
                                    // the pass does not count.
                                    client = Client::connect(router_addr).unwrap();
                                    torn = true;
                                    break 'pass;
                                }
                            }
                        }
                    }
                    if !torn && was_killed {
                        post_kill_passes += 1;
                    }
                }
                post_kill_passes
            })
        })
        .collect();

    // Let traffic flow, then kill the primary for the first digest.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let victim = primary_backend(truth[0].0, 3);
    let dead = nodes.remove(victim);
    dead.shutdown();
    killed.store(true, Ordering::Release);
    dead.join();
    std::thread::sleep(std::time::Duration::from_millis(150));
    stop.store(true, Ordering::Release);

    for h in workers {
        let passes = h.join().unwrap();
        assert!(passes >= 1, "every client must complete a post-kill pass");
    }

    // The failover read landed on a node without the trace at least
    // once, so the peer-FETCH path must have fired.
    let mut client = Client::connect(router_addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.fetches >= 1,
        "killing the primary must force a peer fetch, got {}",
        stats.fetches
    );

    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_metrics_merge_equals_per_backend_snapshots() {
    let dir = scratch("metrics");
    let corpus: Vec<Vec<u8>> = vec![
        record(&dir, "dedup", true, 21),
        record(&dir, "fft", false, 22),
        record(&dir, "streamcluster", true, 23),
    ];

    let addrs = reserve_addrs(3);
    let nodes = start_fleet(&dir, &addrs);
    let router = Router::start(RouterConfig::new(addrs.clone())).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let mut digests = Vec::new();
    for trace in &corpus {
        let (digest, _) = submit(&mut client, trace);
        digests.push(digest);
    }
    // Analyze each digest twice so the verdict cache both misses and
    // hits at least once per digest.
    for &digest in &digests {
        for _ in 0..2 {
            let Response::Verdict { .. } = client
                .analyze_with_retry(digest, EngineKind::Clean, 50)
                .unwrap()
            else {
                panic!("expected verdict for {digest}");
            };
        }
    }

    // Snapshot order matters: a METRICS request counts itself into the
    // *next* exposition, so fetch every backend directly first, then
    // the router's merge, and compare only counters METRICS-verb
    // traffic cannot move.
    let backends: Vec<Snapshot> = addrs
        .iter()
        .map(|addr| {
            let mut direct = Client::connect(addr.as_str()).unwrap();
            Snapshot::parse(&direct.metrics().unwrap()).unwrap()
        })
        .collect();
    let merged = Snapshot::parse(&client.metrics().unwrap()).unwrap();

    for name in ["submits", "analyzes", "cache_hits", "cache_misses"] {
        let mut sum = 0;
        for (i, backend) in backends.iter().enumerate() {
            let direct = backend.counter(name, &[]).unwrap_or(0);
            let node = i.to_string();
            assert_eq!(
                merged.counter(name, &[("node", &node)]).unwrap_or(0),
                direct,
                "{name} for node {i} must survive the merge unchanged"
            );
            sum += direct;
        }
        assert_eq!(
            merged.counter_family_total(name),
            sum,
            "{name} family total must be the sum over backends"
        );
    }
    // Same invariant for a multi-label key: the merge only adds the
    // node label, never disturbs the existing ones.
    for (i, backend) in backends.iter().enumerate() {
        let node = i.to_string();
        assert_eq!(
            merged.counter(
                "serve_requests_total",
                &[("node", &node), ("verb", "submit")]
            ),
            backend.counter("serve_requests_total", &[("verb", "submit")]),
            "submit request count for node {i}"
        );
    }

    // Ground-truth totals: 3 submits x replication 2 land on the nodes,
    // and each digest's second analyze hits the verdict cache.
    assert_eq!(merged.counter_family_total("submits"), 6);
    assert!(merged.counter_family_total("cache_hits") >= 3);
    assert!(merged.counter_family_total("analyzes") >= merged.counter_family_total("cache_hits"));

    // The router's own counters ride along under node="router".
    let forwards = merged
        .counter("forwards", &[("node", "router")])
        .expect("router forwards counter");
    assert!(forwards >= 6, "forwards: {forwards}");
    assert!(
        merged
            .counter("router_pool_hits", &[("node", "router")])
            .is_some(),
        "pool-hit counter must be exposed even when zero"
    );

    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_tags_jobs_and_routes_status_polls() {
    let dir = scratch("status");
    let addrs = reserve_addrs(2);
    let nodes = start_fleet(&dir, &addrs);
    let router = Router::start(RouterConfig::new(addrs.clone())).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let trace = record(&dir, "dedup", true, 7);
    let (digest, _) = submit(&mut client, &trace);
    // Nothing cached under VcFull yet, so a no-wait analyze must admit
    // a job and hand back a router-tagged id.
    let Response::Pending { job } = client.analyze(digest, EngineKind::VcFull, false).unwrap()
    else {
        panic!("expected pending");
    };
    assert_eq!(
        (job >> 56) as usize,
        primary_backend(digest, 2),
        "job tag must name the primary backend"
    );
    let races: HashSet<_> = loop {
        match client.status(job).unwrap() {
            Response::Pending { job: again } => {
                assert_eq!(again, job, "re-tagged id must be stable");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Response::Verdict { races, .. } => {
                break races.into_iter().map(|r| r.to_found()).collect()
            }
            other => panic!("unexpected: {other:?}"),
        }
    };
    let path = dir.join("status.cltr");
    std::fs::write(&path, &trace).unwrap();
    let direct: HashSet<_> = replay_sharded(&read_trace(&path).unwrap(), EngineKind::VcFull, 4)
        .into_iter()
        .collect();
    assert_eq!(races, direct);

    // A job id naming a backend outside the fleet is rejected.
    match client.status(u64::MAX).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::UNKNOWN_JOB),
        other => panic!("unexpected: {other:?}"),
    }

    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
