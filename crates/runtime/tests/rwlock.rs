//! Behavioural tests of [`CleanRwLock`]: sharing, exclusion, the
//! two-clock happens-before model, determinism, and race detection
//! through misuse.

use clean_core::RaceKind;
use clean_runtime::{CleanError, CleanRuntime, RuntimeConfig};

fn rt() -> CleanRuntime {
    CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 16).max_threads(8))
}

#[test]
fn readers_share_and_see_writer_updates() {
    let rt = rt();
    let data = rt.alloc_array::<u64>(4).unwrap();
    let l = rt.create_rwlock();
    rt.run(|ctx| {
        // Root writes under the write lock.
        ctx.write_lock(&l)?;
        for i in 0..4 {
            ctx.write(&data, i, (i as u64 + 1) * 10)?;
        }
        ctx.write_unlock(&l)?;
        // Many concurrent readers.
        let mut kids = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            kids.push(ctx.spawn(move |c| {
                c.read_lock(&l)?;
                let mut s = 0u64;
                for i in 0..4 {
                    s += c.read(&data, i)?;
                }
                c.read_unlock(&l)?;
                Ok(s)
            })?);
        }
        for k in kids {
            assert_eq!(ctx.join(k)??, 100);
        }
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
    let (reads, writes) = l.acquisitions();
    assert_eq!((reads, writes), (4, 1));
}

#[test]
fn writer_after_readers_is_ordered() {
    // Readers read; a writer then overwrites: the read-release clock must
    // order the writer after every reader (no exception, sound hb).
    let rt = rt();
    let data = rt.alloc_array::<u32>(1).unwrap();
    let l = rt.create_rwlock();
    rt.run(|ctx| {
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 7u32)?;
        ctx.write_unlock(&l)?;
        let mut kids = Vec::new();
        for _ in 0..3 {
            let l = l.clone();
            kids.push(ctx.spawn(move |c| {
                c.read_lock(&l)?;
                let v = c.read(&data, 0)?;
                c.read_unlock(&l)?;
                Ok(v)
            })?);
        }
        // Writer contends while readers run.
        let lw = l.clone();
        let w = ctx.spawn(move |c| {
            c.write_lock(&lw)?;
            c.write(&data, 0, 9u32)?;
            c.write_unlock(&lw)?;
            Ok(())
        })?;
        for k in kids {
            let v = ctx.join(k)??;
            assert!(v == 7 || v == 9);
        }
        ctx.join(w)??;
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
}

#[test]
fn unprotected_write_against_readers_is_detected() {
    // A writer that skips the lock: its write races with reader loads
    // (RAW when the read follows) or other writes (WAW).
    let rt = rt();
    let data = rt.alloc_array::<u32>(1).unwrap();
    let l = rt.create_rwlock();
    let result = rt.run(|ctx| {
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 1u32)?;
        ctx.write_unlock(&l)?;
        let rogue = ctx.spawn(move |c| c.write(&data, 0, 2u32))?;
        std::thread::sleep(std::time::Duration::from_millis(30));
        let l2 = l.clone();
        let reader = ctx.spawn(move |c| {
            c.read_lock(&l2)?;
            let v = c.read(&data, 0)?;
            c.read_unlock(&l2)?;
            Ok(v)
        })?;
        let _ = ctx.join(reader)?;
        let _ = ctx.join(rogue)?;
        Ok(())
    });
    match result {
        Err(CleanError::Race(r)) => assert!(matches!(
            r.kind,
            RaceKind::ReadAfterWrite | RaceKind::WriteAfterWrite
        )),
        other => panic!("expected a race exception, got {other:?}"),
    }
}

#[test]
fn reader_reader_ordering_is_not_fabricated() {
    // Reader A writes its own scratch cell *before* taking the read lock;
    // reader B reads that cell after its own read-unlock. If read-acquires
    // wrongly absorbed other readers' clocks, this real RAW race would be
    // masked. It must be reported.
    let rt = rt();
    let scratch = rt.alloc_array::<u32>(1).unwrap();
    let shared = rt.alloc_array::<u32>(1).unwrap();
    let l = rt.create_rwlock();
    let result = rt.run(|ctx| {
        let la = l.clone();
        let a = ctx.spawn(move |c| {
            c.write(&scratch, 0, 5u32)?; // unprotected
            c.read_lock(&la)?;
            let v = c.read(&shared, 0)?;
            c.read_unlock(&la)?;
            Ok(v)
        })?;
        std::thread::sleep(std::time::Duration::from_millis(30));
        let lb = l.clone();
        let b = ctx.spawn(move |c| {
            c.read_lock(&lb)?;
            let v = c.read(&shared, 0)?;
            c.read_unlock(&lb)?;
            let s = c.read(&scratch, 0)?; // races with A's write
            Ok(v + s)
        })?;
        let _ = ctx.join(a)?;
        let _ = ctx.join(b)?;
        Ok(())
    });
    match result {
        Err(CleanError::Race(r)) => assert_eq!(r.kind, RaceKind::ReadAfterWrite),
        other => panic!("reader-reader hb must not mask the race: {other:?}"),
    }
}

#[test]
fn writer_downgrade_orders_later_readers() {
    // The downgrade publishes the write clock, so readers acquiring after
    // it absorb the writer's updates — no exception — while the
    // downgrader itself keeps reading under its retained shared hold.
    let rt = rt();
    let data = rt.alloc_array::<u64>(2).unwrap();
    let l = rt.create_rwlock();
    rt.run(|ctx| {
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 11u64)?;
        ctx.write(&data, 1, 22u64)?;
        ctx.downgrade(&l)?;
        let mut kids = Vec::new();
        for _ in 0..3 {
            let l = l.clone();
            kids.push(ctx.spawn(move |c| {
                c.read_lock(&l)?;
                let s = c.read(&data, 0)? + c.read(&data, 1)?;
                c.read_unlock(&l)?;
                Ok(s)
            })?);
        }
        // The downgrader still reads under its shared hold, sharing the
        // lock with the spawned readers.
        let s = ctx.read(&data, 0)? + ctx.read(&data, 1)?;
        assert_eq!(s, 33);
        ctx.read_unlock(&l)?;
        for k in kids {
            assert_eq!(ctx.join(k)??, 33);
        }
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
    let (reads, writes) = l.acquisitions();
    assert_eq!(
        (reads, writes),
        (4, 1),
        "3 readers + the downgrade's shared hold, 1 write acquire"
    );
}

#[test]
fn downgraded_writer_excludes_later_writers_until_read_unlock() {
    // After the downgrade the lock is held shared: a contending writer
    // must not get in before the downgrader's read_unlock, so its
    // overwrite is ordered and the final value is deterministic.
    let rt = rt();
    let data = rt.alloc_array::<u64>(1).unwrap();
    let l = rt.create_rwlock();
    rt.run(|ctx| {
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 1u64)?;
        ctx.downgrade(&l)?;
        let lw = l.clone();
        let w = ctx.spawn(move |c| {
            c.write_lock(&lw)?;
            let v = c.read(&data, 0)?;
            c.write(&data, 0, v + 100)?;
            c.write_unlock(&lw)?;
            Ok(v)
        })?;
        // Shared hold still live: the writer above is spinning. Read,
        // then release to let it in.
        assert_eq!(ctx.read(&data, 0)?, 1);
        ctx.read_unlock(&l)?;
        let seen = ctx.join(w)??;
        assert_eq!(seen, 1, "writer ordered after the downgraded hold");
        ctx.read_lock(&l)?;
        let fin = ctx.read(&data, 0)?;
        ctx.read_unlock(&l)?;
        Ok(fin)
    })
    .unwrap();
    assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
}

#[test]
fn downgrade_does_not_mask_unprotected_writes() {
    // Downgrading grants shared access only: a write performed after the
    // downgrade is a reader writing without the write lock, and a
    // concurrent reader's load must still race with it (RAW) — the
    // downgrade edge must not over-synchronize.
    let rt = rt();
    let data = rt.alloc_array::<u64>(1).unwrap();
    let l = rt.create_rwlock();
    let result = rt.run(|ctx| {
        // Take the write lock before spawning, so the reader blocks in
        // read_lock until the downgrade and its load physically follows
        // the rogue write (RAW direction, which CLEAN flags).
        ctx.write_lock(&l)?;
        let lr = l.clone();
        let r = ctx.spawn(move |c| {
            c.read_lock(&lr)?;
            std::thread::sleep(std::time::Duration::from_millis(30));
            let v = c.read(&data, 0)?; // races with the rogue write below
            c.read_unlock(&lr)?;
            Ok(v)
        })?;
        ctx.downgrade(&l)?;
        ctx.write(&data, 0, 9u64)?; // rogue: shared hold, exclusive write
        ctx.read_unlock(&l)?;
        let _ = ctx.join(r)?;
        Ok(())
    });
    match result {
        Err(CleanError::Race(r)) => assert!(
            matches!(r.kind, RaceKind::ReadAfterWrite | RaceKind::WriteAfterWrite),
            "got {:?}",
            r.kind
        ),
        other => panic!("downgrade must not mask the race: {other:?}"),
    }
}

#[test]
fn downgrade_execution_is_deterministic_and_cross_validates() {
    use clean_baselines::{run_detector, CleanEngine};
    let once = || {
        let rt = CleanRuntime::new(
            RuntimeConfig::new()
                .heap_size(1 << 16)
                .max_threads(8)
                .record_trace(true),
        );
        let data = rt.alloc_array::<u64>(4).unwrap();
        let l = rt.create_rwlock();
        let out = rt
            .run(|ctx| {
                let mut kids = Vec::new();
                for t in 0..3u64 {
                    let l = l.clone();
                    kids.push(ctx.spawn(move |c| {
                        c.write_lock(&l)?;
                        let v = c.read(&data, t as usize)?;
                        c.write(&data, t as usize, v + t + 1)?;
                        c.downgrade(&l)?;
                        let mut acc = 0u64;
                        for i in 0..4 {
                            acc += c.read(&data, i)?;
                        }
                        c.read_unlock(&l)?;
                        Ok(acc)
                    })?);
                }
                let mut h = 0u64;
                for k in kids {
                    h = h.wrapping_mul(31).wrapping_add(ctx.join(k)??);
                }
                Ok(h)
            })
            .unwrap();
        assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
        let trace = rt.recorded_trace().unwrap();
        let mut engine = CleanEngine::new(8);
        let races = run_detector(&mut engine, &trace);
        assert!(races.is_empty(), "offline replay must agree: {races:?}");
        (out, rt.stats().digest())
    };
    let (o1, d1) = once();
    let (o2, d2) = once();
    assert_eq!(o1, o2, "downgrade must stay deterministic");
    assert_eq!(d1, d2);
}

#[test]
fn rwlock_execution_is_deterministic() {
    let once = || {
        let rt = rt();
        let data = rt.alloc_array::<u64>(8).unwrap();
        let l = rt.create_rwlock();
        let out = rt
            .run(|ctx| {
                let mut kids = Vec::new();
                for t in 0..4u64 {
                    let l = l.clone();
                    kids.push(ctx.spawn(move |c| {
                        let mut acc = 0u64;
                        for i in 0..20 {
                            if (t + i) % 4 == 0 {
                                c.write_lock(&l)?;
                                let v = c.read(&data, (i % 8) as usize)?;
                                c.write(&data, (i % 8) as usize, v + t + 1)?;
                                c.write_unlock(&l)?;
                            } else {
                                c.read_lock(&l)?;
                                acc += c.read(&data, (i % 8) as usize)?;
                                c.read_unlock(&l)?;
                            }
                            c.tick(2);
                        }
                        Ok(acc)
                    })?);
                }
                let mut h = 0u64;
                for k in kids {
                    h = h.wrapping_mul(31).wrapping_add(ctx.join(k)??);
                }
                Ok(h)
            })
            .unwrap();
        (out, rt.stats().digest())
    };
    let (o1, d1) = once();
    let (o2, d2) = once();
    assert_eq!(o1, o2);
    assert_eq!(d1, d2);
}

#[test]
fn recorded_rwlock_trace_cross_validates() {
    use clean_baselines::{run_detector, CleanEngine};
    let rt = CleanRuntime::new(
        RuntimeConfig::new()
            .heap_size(1 << 16)
            .max_threads(8)
            .record_trace(true),
    );
    let data = rt.alloc_array::<u64>(2).unwrap();
    let l = rt.create_rwlock();
    rt.run(|ctx| {
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 3u64)?;
        ctx.write_unlock(&l)?;
        let mut kids = Vec::new();
        for _ in 0..2 {
            let l = l.clone();
            kids.push(ctx.spawn(move |c| {
                c.read_lock(&l)?;
                let v = c.read(&data, 0)?;
                c.read_unlock(&l)?;
                Ok(v)
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        // A writer ordered behind the readers via the read-release clock.
        ctx.write_lock(&l)?;
        ctx.write(&data, 0, 4u64)?;
        ctx.write_unlock(&l)?;
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
    let trace = rt.recorded_trace().unwrap();
    let mut engine = CleanEngine::new(8);
    let races = run_detector(&mut engine, &trace);
    assert!(races.is_empty(), "offline replay must agree: {races:?}");
}
