//! Tests of the execution trace recorder (`RuntimeConfig::record_trace`).

use clean_core::TraceEvent;
use clean_runtime::{CleanRuntime, RuntimeConfig};

fn rt() -> CleanRuntime {
    CleanRuntime::new(
        RuntimeConfig::new()
            .heap_size(1 << 16)
            .max_threads(8)
            .record_trace(true),
    )
}

#[test]
fn recording_disabled_by_default() {
    let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(2));
    rt.run(|_| Ok(())).unwrap();
    assert!(rt.recorded_trace().is_none());
}

#[test]
fn accesses_and_sync_events_are_recorded_in_order() {
    let rt = rt();
    let a = rt.alloc_array::<u32>(4).unwrap();
    let m = rt.create_mutex();
    rt.run(|ctx| {
        ctx.write(&a, 0, 1u32)?;
        ctx.lock(&m)?;
        ctx.read(&a, 0)?;
        ctx.unlock(&m)?;
        Ok(())
    })
    .unwrap();
    let t = rt.recorded_trace().unwrap();
    let kinds: Vec<&str> = t
        .iter()
        .map(|e| match e {
            TraceEvent::Write { .. } => "w",
            TraceEvent::Read { .. } => "r",
            TraceEvent::Acquire { .. } => "a",
            TraceEvent::Release { .. } => "rel",
            TraceEvent::Fork { .. } => "f",
            TraceEvent::Join { .. } => "j",
        })
        .collect();
    assert_eq!(kinds, vec!["w", "a", "r", "rel"]);
    match (t[0], t[2]) {
        (
            TraceEvent::Write {
                addr: wa, size: 4, ..
            },
            TraceEvent::Read {
                addr: ra, size: 4, ..
            },
        ) => {
            assert_eq!(wa, ra);
            assert_eq!(wa, a.addr_of(0));
        }
        other => panic!("unexpected events {other:?}"),
    }
}

#[test]
fn fork_and_join_are_recorded() {
    let rt = rt();
    let root_events = rt
        .run(|ctx| {
            let child = ctx.spawn(|_| Ok(()))?;
            let child_tid = child.tid();
            ctx.join(child)??;
            Ok(child_tid)
        })
        .unwrap();
    let t = rt.recorded_trace().unwrap();
    assert!(t
        .iter()
        .any(|e| matches!(e, TraceEvent::Fork { child, .. } if *child == root_events)));
    assert!(t
        .iter()
        .any(|e| matches!(e, TraceEvent::Join { child, .. } if *child == root_events)));
    // Fork precedes join.
    let fork_pos = t
        .iter()
        .position(|e| matches!(e, TraceEvent::Fork { .. }))
        .unwrap();
    let join_pos = t
        .iter()
        .position(|e| matches!(e, TraceEvent::Join { .. }))
        .unwrap();
    assert!(fork_pos < join_pos);
}

#[test]
fn barrier_encodes_release_then_acquire() {
    let rt = rt();
    let b = rt.create_barrier(2);
    rt.run(|ctx| {
        let b2 = b.clone();
        let child = ctx.spawn(move |c| {
            c.barrier_wait(&b2)?;
            Ok(())
        })?;
        ctx.barrier_wait(&b)?;
        ctx.join(child)??;
        Ok(())
    })
    .unwrap();
    let t = rt.recorded_trace().unwrap();
    let releases: Vec<usize> = t
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::Release { .. }))
        .map(|(i, _)| i)
        .collect();
    let acquires: Vec<usize> = t
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::Acquire { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(releases.len(), 2, "one release per arrival");
    assert_eq!(acquires.len(), 2, "one acquire per departure");
    assert!(
        releases.iter().max() < acquires.iter().min(),
        "all arrivals precede all departures: {t:?}"
    );
}

#[test]
fn racy_execution_records_the_racing_accesses() {
    let rt = rt();
    let x = rt.alloc_array::<u32>(1).unwrap();
    let _ = rt.run(|ctx| {
        let child = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
        let _ = ctx.write(&x, 0, 2u32);
        let _ = ctx.join(child)?;
        Ok(())
    });
    assert!(rt.first_race().is_some());
    let t = rt.recorded_trace().unwrap();
    let writes = t
        .iter()
        .filter(|e| matches!(e, TraceEvent::Write { addr, .. } if *addr == x.addr_of(0)))
        .count();
    assert!(writes >= 1, "at least the first racy write is recorded");
}

#[test]
fn distinct_locks_get_distinct_ids() {
    let rt = rt();
    let m1 = rt.create_mutex();
    let m2 = rt.create_mutex();
    assert_ne!(m1.id(), m2.id());
}
