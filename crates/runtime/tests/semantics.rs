//! Behavioural tests of the CLEAN execution model (Section 3.1):
//! exceptions iff WAW/RAW, WAR-racy executions complete, exception-free
//! executions are deterministic, rollover resets preserve the guarantees.

use clean_core::{EpochLayout, RaceKind};
use clean_runtime::{CleanError, CleanRuntime, RuntimeConfig};

fn small_cfg() -> RuntimeConfig {
    RuntimeConfig::new().heap_size(1 << 16).max_threads(8)
}

#[test]
fn sequential_program_never_races() {
    let rt = CleanRuntime::new(small_cfg());
    let a = rt.alloc_array::<u32>(64).unwrap();
    let sum = rt
        .run(|ctx| {
            for i in 0..64 {
                ctx.write(&a, i, i as u32)?;
            }
            let mut s = 0u32;
            for i in 0..64 {
                s += ctx.read(&a, i)?;
            }
            Ok(s)
        })
        .unwrap();
    assert_eq!(sum, (0..64).sum::<u32>());
    assert!(rt.first_race().is_none());
}

#[test]
fn unordered_writes_raise_waw() {
    let rt = CleanRuntime::new(small_cfg());
    let x = rt.alloc_array::<u64>(1).unwrap();
    let result = rt.run(|ctx| {
        let t = ctx.spawn(move |c| c.write(&x, 0, 7u64))?;
        let mine = ctx.write(&x, 0, 9u64);
        let theirs = ctx.join(t)?;
        // At least one of the two writes must have been stopped.
        if mine.is_ok() && theirs.is_ok() {
            panic!("both unordered writes succeeded");
        }
        Ok(())
    });
    let race = match result {
        Err(CleanError::Race(r)) => r,
        other => panic!("expected race exception, got {other:?}"),
    };
    assert_eq!(race.kind, RaceKind::WriteAfterWrite);
    assert_eq!(race.addr, x.addr_of(0));
}

#[test]
fn unordered_read_of_write_raises_raw() {
    // Force the read to physically follow the write so the race resolves
    // as RAW (the paper: "if this race resolves as a RAW, a race exception
    // is thrown").
    let rt = CleanRuntime::new(small_cfg());
    let x = rt.alloc_array::<u32>(1).unwrap();
    let flag = rt.alloc_array::<u32>(1).unwrap();
    let result = rt.run(|ctx| {
        let t = ctx.spawn(move |c| {
            c.write(&x, 0, 5u32)?; // racy write
            Ok(())
        })?;
        // Busy-wait on the *epoch side effect* is not observable; just
        // join-free delay via repeated private work, then read.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let r = ctx.read(&x, 0);
        let _ = ctx.join(t)?;
        let _ = ctx.read(&flag, 0); // keep flag used
        r.map(|_| ())
    });
    match result {
        Err(CleanError::Race(r)) => assert_eq!(r.kind, RaceKind::ReadAfterWrite),
        other => panic!("expected RAW race, got {other:?}"),
    }
}

#[test]
fn war_race_completes_without_exception() {
    // Thread A reads x, thread B later writes x, unordered: a WAR race
    // that CLEAN deliberately does not detect (Section 3.1). Order the
    // *physical* timing so the read precedes the write.
    let rt = CleanRuntime::new(small_cfg());
    let x = rt.alloc_array::<u32>(1).unwrap();
    let result = rt.run(|ctx| {
        let r = ctx.read(&x, 0)?; // root reads first (x still 0)
        let t = ctx.spawn(move |c| {
            c.write(&x, 0, 1u32) // unordered with the root's read: WAR
        })?;
        ctx.join(t)??;
        Ok(r)
    });
    assert_eq!(result.unwrap(), 0);
    assert!(rt.first_race().is_none());
}

#[test]
fn lock_ordering_prevents_false_positives() {
    let rt = CleanRuntime::new(small_cfg());
    let x = rt.alloc_array::<u64>(4).unwrap();
    let m = rt.create_mutex();
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for t in 0..4 {
            let m = m.clone();
            kids.push(ctx.spawn(move |c| {
                for _ in 0..50 {
                    c.lock(&m)?;
                    let v = c.read(&x, t % 4)?;
                    c.write(&x, t % 4, v + 1)?;
                    c.unlock(&m)?;
                    c.tick(1);
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        ctx.lock(&m)?;
        let total = (0..4).map(|i| ctx.read(&x, i).unwrap()).sum::<u64>();
        ctx.unlock(&m)?;
        assert_eq!(total, 200);
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
}

#[test]
fn barrier_orders_phases() {
    let rt = CleanRuntime::new(small_cfg());
    let grid = rt.alloc_array::<u32>(8).unwrap();
    let b = rt.create_barrier(4);
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for t in 0..4usize {
            let b = b.clone();
            kids.push(ctx.spawn(move |c| {
                // Phase 1: each thread writes its own pair of cells.
                c.write(&grid, 2 * t, t as u32)?;
                c.write(&grid, 2 * t + 1, t as u32)?;
                c.barrier_wait(&b)?;
                // Phase 2: each thread reads its neighbour's cells.
                let n = (t + 1) % 4;
                let v = c.read(&grid, 2 * n)? + c.read(&grid, 2 * n + 1)?;
                Ok(v)
            })?);
        }
        let mut total = 0;
        for k in kids {
            total += ctx.join(k)??;
        }
        assert_eq!(total, 12, "2 * (0+1+2+3)");
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
}

#[test]
fn missing_barrier_is_detected() {
    // Same phase structure but no barrier: phase-2 reads race with
    // phase-1 writes of the neighbour.
    let rt = CleanRuntime::new(small_cfg());
    let grid = rt.alloc_array::<u32>(8).unwrap();
    let result = rt.run(|ctx| {
        let mut kids = Vec::new();
        for t in 0..4usize {
            kids.push(ctx.spawn(move |c| {
                c.write(&grid, 2 * t, t as u32)?;
                std::thread::sleep(std::time::Duration::from_millis(10 + 5 * t as u64));
                let n = (t + 1) % 4;
                c.read(&grid, 2 * n)
            })?);
        }
        for k in kids {
            let _ = ctx.join(k)?;
        }
        Ok(())
    });
    assert!(
        matches!(result, Err(CleanError::Race(_))),
        "expected a race exception, got {result:?}"
    );
}

#[test]
fn poison_stops_all_threads() {
    let rt = CleanRuntime::new(small_cfg());
    let x = rt.alloc_array::<u32>(2).unwrap();
    let result = rt.run(|ctx| {
        let t = ctx.spawn(move |c| {
            // Lots of innocent accesses to private cell 1.
            for i in 0.. {
                match c.write(&x, 1, i as u32) {
                    Ok(()) => {}
                    Err(e) => return Err(e), // poisoned by the root's race
                }
                if i > 5_000_000 {
                    break;
                }
            }
            Ok(())
        })?;
        // Trigger a race on cell 0 against a second child.
        let t2 = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
        let _ = ctx.write(&x, 0, 2u32);
        let r1 = ctx.join(t)?;
        let r2 = ctx.join(t2)?;
        let _ = (r1, r2);
        Ok(())
    });
    assert!(matches!(result, Err(CleanError::Race(_))));
}

#[test]
fn deterministic_runs_have_equal_digests() {
    let run_once = || {
        let rt = CleanRuntime::new(small_cfg());
        let a = rt.alloc_array::<u64>(16).unwrap();
        let m = rt.create_mutex();
        let out = rt
            .run(|ctx| {
                let mut kids = Vec::new();
                for t in 0..4u64 {
                    let m = m.clone();
                    kids.push(ctx.spawn(move |c| {
                        for i in 0..40 {
                            c.lock(&m)?;
                            let v = c.read(&a, (t as usize + i) % 16)?;
                            c.write(&a, (t as usize + i) % 16, v.wrapping_mul(3) + t + 1)?;
                            c.unlock(&m)?;
                            c.tick(3);
                        }
                        Ok(())
                    })?);
                }
                for k in kids {
                    ctx.join(k)??;
                }
                let mut h = 0u64;
                for i in 0..16 {
                    h = h.wrapping_mul(31).wrapping_add(ctx.read(&a, i)?);
                }
                Ok(h)
            })
            .unwrap();
        (out, rt.stats().digest())
    };
    let (o1, d1) = run_once();
    for _ in 0..4 {
        let (o2, d2) = run_once();
        assert_eq!(o1, o2, "program output must be deterministic");
        assert_eq!(d1, d2, "execution digest must be deterministic");
    }
}

#[test]
fn nondeterministic_lock_order_changes_results_without_det_sync() {
    // Sanity check of the experiment *methodology*: with det_sync off the
    // program below is race-free but its result depends on lock order, so
    // across many runs we expect (though cannot guarantee) variation.
    // We only assert that every run is race-free.
    for _ in 0..5 {
        let rt = CleanRuntime::new(small_cfg().det_sync(false));
        let a = rt.alloc_array::<u64>(1).unwrap();
        let m = rt.create_mutex();
        rt.run(|ctx| {
            let mut kids = Vec::new();
            for t in 1..=3u64 {
                let m = m.clone();
                kids.push(ctx.spawn(move |c| {
                    c.lock(&m)?;
                    let v = c.read(&a, 0)?;
                    c.write(&a, 0, v * 10 + t)?;
                    c.unlock(&m)?;
                    Ok(())
                })?);
            }
            for k in kids {
                ctx.join(k)??;
            }
            Ok(())
        })
        .unwrap();
        assert!(rt.first_race().is_none());
    }
}

#[test]
fn clock_rollover_reset_preserves_correctness() {
    // A 6-bit clock rolls over every 64 sync operations; this program
    // performs hundreds, forcing many deterministic resets.
    let cfg = RuntimeConfig::new()
        .heap_size(1 << 14)
        .max_threads(4)
        .layout(EpochLayout::with_clock_bits(6));
    let run_once = || {
        let rt = CleanRuntime::new(cfg.clone());
        let a = rt.alloc_array::<u32>(8).unwrap();
        let m = rt.create_mutex();
        let out = rt
            .run(|ctx| {
                let mut kids = Vec::new();
                for t in 0..3u32 {
                    let m = m.clone();
                    kids.push(ctx.spawn(move |c| {
                        for i in 0..100 {
                            c.lock(&m)?;
                            let v = c.read(&a, (t as usize + i) % 8)?;
                            c.write(&a, (t as usize + i) % 8, v + t + 1)?;
                            c.unlock(&m)?;
                        }
                        Ok(())
                    })?);
                }
                for k in kids {
                    ctx.join(k)??;
                }
                let mut s = 0u32;
                for i in 0..8 {
                    s += ctx.read(&a, i)?;
                }
                Ok(s)
            })
            .unwrap();
        (out, rt.stats().rollover_resets, rt.stats().digest())
    };
    let (o1, resets, d1) = run_once();
    assert!(resets > 0, "expected rollover resets with a 6-bit clock");
    assert_eq!(o1, 100 * (1 + 2 + 3), "lock-protected increments all land");
    let (o2, _, d2) = run_once();
    assert_eq!(o1, o2, "deterministic across runs despite resets");
    assert_eq!(d1, d2);
}

#[test]
fn thread_id_reuse_does_not_confuse_epochs() {
    let rt = CleanRuntime::new(small_cfg().max_threads(3));
    let x = rt.alloc_array::<u32>(1).unwrap();
    rt.run(|ctx| {
        // Generation 1: a child writes x and is joined.
        let t = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
        ctx.join(t)??;
        // Generation 2: a new child (reusing the id) writes x again; the
        // parent joined generation 1, so without the retired-clock rule
        // this write would alias the old epoch and be missed.
        let t = ctx.spawn(move |c| c.write(&x, 0, 2u32))?;
        ctx.join(t)??;
        // The parent read is ordered after both via joins: no race.
        let v = ctx.read(&x, 0)?;
        assert_eq!(v, 2);
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
}

#[test]
fn unjoined_sibling_write_after_id_reuse_is_caught() {
    let rt = CleanRuntime::new(small_cfg().max_threads(4));
    let x = rt.alloc_array::<u32>(1).unwrap();
    let result = rt.run(|ctx| {
        // Child A writes x, is joined (id freed).
        let a = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
        ctx.join(a)??;
        // Child B reuses A's id and writes x; the root then reads x
        // without joining B: must be a RAW race even though the root's
        // clock for that id covers A's write.
        let b = ctx.spawn(move |c| c.write(&x, 0, 2u32))?;
        std::thread::sleep(std::time::Duration::from_millis(30));
        let r = ctx.read(&x, 0);
        let _ = ctx.join(b)?;
        r.map(|_| ())
    });
    match result {
        Err(CleanError::Race(r)) => assert_eq!(r.kind, RaceKind::ReadAfterWrite),
        other => panic!("expected RAW race, got {other:?}"),
    }
}

#[test]
fn condvar_pipeline_is_race_free() {
    let rt = CleanRuntime::new(small_cfg());
    let q = rt.alloc_array::<u32>(4).unwrap(); // [head, tail, cap, sum]
    let buf = rt.alloc_array::<u32>(8).unwrap();
    let m = rt.create_mutex();
    let cv = rt.create_condvar();
    rt.run(|ctx| {
        let (m2, cv2) = (m.clone(), cv.clone());
        let consumer = ctx.spawn(move |c| {
            let mut got = 0u32;
            let mut sum = 0u32;
            while got < 20 {
                c.lock(&m2)?;
                while c.read(&q, 0)? == c.read(&q, 1)? {
                    c.cond_wait(&cv2, &m2)?;
                }
                let head = c.read(&q, 0)?;
                sum += c.read(&buf, (head % 8) as usize)?;
                c.write(&q, 0, head + 1)?;
                c.cond_signal(&cv2)?;
                c.unlock(&m2)?;
                got += 1;
            }
            Ok(sum)
        })?;
        // Producer (root).
        for i in 0..20u32 {
            ctx.lock(&m)?;
            while ctx.read(&q, 1)? - ctx.read(&q, 0)? == 8 {
                ctx.cond_wait(&cv, &m)?;
            }
            let tail = ctx.read(&q, 1)?;
            ctx.write(&buf, (tail % 8) as usize, i)?;
            ctx.write(&q, 1, tail + 1)?;
            ctx.cond_signal(&cv)?;
            ctx.unlock(&m)?;
        }
        let sum = ctx.join(consumer)??;
        assert_eq!(sum, (0..20).sum::<u32>());
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none());
}

#[test]
fn stats_count_accesses() {
    let rt = CleanRuntime::new(small_cfg());
    let a = rt.alloc_array::<u32>(4).unwrap();
    rt.run(|ctx| {
        for i in 0..4 {
            ctx.write(&a, i, 1u32)?;
        }
        for i in 0..4 {
            ctx.read(&a, i)?;
        }
        Ok(())
    })
    .unwrap();
    let s = rt.stats();
    assert_eq!(s.shared_writes, 4);
    assert_eq!(s.shared_reads, 4);
    assert_eq!(s.shared_accesses(), 8);
    let d = s.detector.expect("detection enabled");
    assert_eq!(d.writes_checked, 4);
    assert_eq!(d.reads_checked, 4);
}

#[test]
fn detection_off_still_computes() {
    let rt = CleanRuntime::new(small_cfg().detection(false).det_sync(false));
    let a = rt.alloc_array::<u32>(1).unwrap();
    let v = rt
        .run(|ctx| {
            ctx.write(&a, 0, 41)?;
            Ok(ctx.read(&a, 0)? + 1)
        })
        .unwrap();
    assert_eq!(v, 42);
    assert!(rt.stats().detector.is_none());
}

#[test]
fn out_of_memory_reported() {
    let rt = CleanRuntime::new(small_cfg().heap_size(64));
    assert!(rt.alloc_array::<u64>(4).is_ok());
    let err = rt.alloc_array::<u64>(8).unwrap_err();
    assert!(matches!(err, CleanError::OutOfMemory { .. }));
}

#[test]
fn thread_limit_reported() {
    let rt = CleanRuntime::new(small_cfg().max_threads(2));
    let result = rt.run(|ctx| {
        let t1 = ctx.spawn(|_| Ok(()))?; // uses the second id
        let err = ctx.spawn(|_| Ok(())).unwrap_err();
        assert!(matches!(err, CleanError::ThreadLimit { capacity: 2 }));
        ctx.join(t1)??;
        Ok(())
    });
    result.unwrap();
}
