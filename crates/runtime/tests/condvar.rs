//! Behavioural tests of the condition-variable paths in `sync_api.rs`,
//! focused on spurious wakeups: a broadcast wakes every waiter but the
//! guarded predicate admits only some of them, so the losers must
//! re-check and re-wait exactly as the Pthread contract demands — under
//! both deterministic synchronization and the plain (uncontrolled) path.

use clean_runtime::{CleanRuntime, RuntimeConfig, RuntimeStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WAITERS: usize = 3;

/// Producer/consumer round where every slot is announced by `broadcast`,
/// so each round wakes all waiters while only one can consume: the rest
/// experience spurious wakeups and must loop. Returns (wakeups, stats).
fn broadcast_one_slot_rounds(det: bool) -> (u64, RuntimeStats) {
    let rt = CleanRuntime::new(
        RuntimeConfig::new()
            .heap_size(1 << 16)
            .max_threads(8)
            .det_sync(det),
    );
    // data[0] = available slots, data[1] = consumed count,
    // data[2] = payload checked by consumers.
    let data = rt.alloc_array::<u64>(3).unwrap();
    let m = rt.create_mutex();
    let cv = rt.create_condvar();
    let wakeups = Arc::new(AtomicU64::new(0));
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for _ in 0..WAITERS {
            let (m, cv, wakeups) = (m.clone(), cv.clone(), Arc::clone(&wakeups));
            kids.push(ctx.spawn(move |c| {
                c.lock(&m)?;
                // The predicate loop: a wakeup is only a hint. Waiters
                // woken into an empty pantry must wait again.
                while c.read(&data, 0)? == 0 {
                    c.cond_wait(&cv, &m)?;
                    wakeups.fetch_add(1, Ordering::Relaxed);
                }
                let slots = c.read(&data, 0)?;
                c.write(&data, 0, slots - 1)?;
                let done = c.read(&data, 1)? + 1;
                c.write(&data, 1, done)?;
                // The slot's payload was written pre-broadcast; the
                // mutex hand-off must make it visible race-free.
                let payload = c.read(&data, 2)?;
                c.unlock(&m)?;
                Ok(payload)
            })?);
        }
        // One slot per round, announced with a broadcast: every round
        // over-wakes, so all but one wakeup per round are spurious.
        for round in 0..WAITERS as u64 {
            std::thread::sleep(std::time::Duration::from_millis(10));
            ctx.lock(&m)?;
            let slots = ctx.read(&data, 0)?;
            ctx.write(&data, 0, slots + 1)?;
            ctx.write(&data, 2, 40 + round)?;
            ctx.cond_broadcast(&cv)?;
            ctx.unlock(&m)?;
        }
        for k in kids {
            let payload = ctx.join(k)??;
            assert!((40..40 + WAITERS as u64).contains(&payload));
        }
        ctx.lock(&m)?;
        assert_eq!(ctx.read(&data, 0)?, 0, "all slots consumed");
        assert_eq!(ctx.read(&data, 1)?, WAITERS as u64);
        ctx.unlock(&m)?;
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
    (wakeups.load(Ordering::Relaxed), rt.stats())
}

#[test]
fn broadcast_over_wakeups_are_spurious_and_rewait_det() {
    let (wakeups, stats) = broadcast_one_slot_rounds(true);
    // Every waiter consumed exactly once, yet the broadcasts delivered
    // more wakeups than consumptions: the surplus re-entered cond_wait
    // through the predicate loop instead of claiming a slot.
    assert!(
        wakeups > WAITERS as u64,
        "no spurious wakeup was exercised: {wakeups} wakeups for {WAITERS} slots"
    );
    assert!(stats.sync_ops > 0);
}

#[test]
fn broadcast_over_wakeups_are_spurious_and_rewait_plain() {
    let (wakeups, _) = broadcast_one_slot_rounds(false);
    // The plain path's ticket queue drains fully on broadcast, so the
    // same over-wakeup shape holds without deterministic ordering.
    assert!(
        wakeups >= WAITERS as u64,
        "each consumption needs at least one wakeup: {wakeups}"
    );
}

#[test]
fn condvar_rounds_are_deterministic_under_det_sync() {
    let (w1, s1) = broadcast_one_slot_rounds(true);
    let (w2, s2) = broadcast_one_slot_rounds(true);
    assert_eq!(
        s1.digest(),
        s2.digest(),
        "det-sync condvar interleaving must replay identically"
    );
    assert_eq!(w1, w2, "wakeup count is part of the deterministic outcome");
}

#[test]
fn signal_wakes_exactly_one_waiter() {
    // `cond_signal` must not over-wake: with all waiters parked and one
    // slot signalled per round, every wakeup finds its slot, so no
    // spurious iteration occurs on the signal path (contrast with the
    // broadcast tests above).
    let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 16).max_threads(8));
    let data = rt.alloc_array::<u64>(2).unwrap();
    let m = rt.create_mutex();
    let cv = rt.create_condvar();
    let wakeups = Arc::new(AtomicU64::new(0));
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for _ in 0..WAITERS {
            let (m, cv, wakeups) = (m.clone(), cv.clone(), Arc::clone(&wakeups));
            kids.push(ctx.spawn(move |c| {
                c.lock(&m)?;
                while c.read(&data, 0)? == 0 {
                    c.cond_wait(&cv, &m)?;
                    wakeups.fetch_add(1, Ordering::Relaxed);
                }
                let slots = c.read(&data, 0)?;
                c.write(&data, 0, slots - 1)?;
                c.unlock(&m)?;
                Ok(())
            })?);
        }
        // Park all waiters before the first signal so each signal can
        // target a waiting thread.
        std::thread::sleep(std::time::Duration::from_millis(30));
        for _ in 0..WAITERS {
            ctx.lock(&m)?;
            let slots = ctx.read(&data, 0)?;
            ctx.write(&data, 0, slots + 1)?;
            ctx.cond_signal(&cv)?;
            ctx.unlock(&m)?;
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        for k in kids {
            ctx.join(k)??;
        }
        Ok(())
    })
    .unwrap();
    assert!(rt.first_race().is_none(), "{:?}", rt.first_race());
    let w = wakeups.load(Ordering::Relaxed);
    assert!(
        (WAITERS as u64..=2 * WAITERS as u64).contains(&w),
        "signal path over-woke: {w} wakeups for {WAITERS} slots"
    );
}
