//! The software-only CLEAN runtime (Section 4): deterministic threads with
//! race-checked shared-memory accesses.

use crate::config::RuntimeConfig;
use crate::error::{CleanError, Result};
use crate::heap::{SharedArray, SharedHeap};
use crate::scalar::Scalar;
use clean_core::{
    CleanDetector, DetectorConfig, EventSink, LockId, RaceReport, RolloverCoordinator,
    ThreadCheckState, ThreadId, TraceEvent, VectorClock,
};
use clean_sync::{DetHandle, Kendo, ThreadRegistry};
use parking_lot::Mutex;
use std::sync::atomic::AtomicU32;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared state of one monitored program execution.
pub(crate) struct RuntimeInner {
    pub(crate) config: RuntimeConfig,
    pub(crate) heap: SharedHeap,
    pub(crate) detector: Option<CleanDetector>,
    pub(crate) kendo: Arc<Kendo>,
    pub(crate) registry: ThreadRegistry,
    pub(crate) coordinator: RolloverCoordinator,
    pub(crate) poisoned: AtomicBool,
    first_race: Mutex<Option<RaceReport>>,
    /// Reset hooks of live synchronization objects: on a deterministic
    /// metadata reset (Section 4.5) every lock/barrier vector clock must be
    /// zeroed alongside the epochs and thread clocks.
    reset_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Final own-clock of the previous occupant of each thread-id slot;
    /// a reused id resumes above it so old epochs stay distinguishable
    /// (Section 4.5).
    retired: Mutex<Vec<u32>>,
    pub(crate) shared_reads: AtomicU64,
    pub(crate) shared_writes: AtomicU64,
    pub(crate) sync_ops: AtomicU64,
    finished_counter_sum: AtomicU64,
    finished_threads: AtomicU64,
    /// Execution event log (when `record_trace` is on or a sink was
    /// attached).
    trace: Option<TraceLog>,
    /// Allocator of lock/barrier ids for trace recording.
    next_lock_id: AtomicU32,
}

/// Destination of recorded execution events: either the in-memory log of
/// `RuntimeConfig::record_trace` (bounded-length test executions) or a
/// streaming [`EventSink`] (e.g. a `clean-trace` file writer) that can
/// absorb executions of unbounded length.
pub(crate) enum TraceLog {
    Memory(Mutex<Vec<TraceEvent>>),
    Sink(Box<dyn EventSink>),
}

impl RuntimeInner {
    /// The globally quiescent reset of Section 4.5: zero all epochs, all
    /// lock/barrier clocks and the retired-clock table. Thread vector
    /// clocks are reset by their owners inside the rendezvous.
    pub(crate) fn global_reset(&self) {
        if let Some(d) = &self.detector {
            d.reset_metadata();
        }
        for hook in self.reset_hooks.lock().iter() {
            hook();
        }
        for r in self.retired.lock().iter_mut() {
            *r = 0;
        }
    }

    pub(crate) fn register_reset_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        self.reset_hooks.lock().push(hook);
    }

    /// Records the first race and stops the execution.
    pub(crate) fn poison(&self, report: RaceReport) {
        let mut first = self.first_race.lock();
        if first.is_none() {
            *first = Some(report);
        }
        self.poisoned.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn retired_clock(&self, tid: ThreadId) -> u32 {
        self.retired.lock()[tid.index()]
    }

    pub(crate) fn set_retired_clock(&self, tid: ThreadId, clock: u32) {
        self.retired.lock()[tid.index()] = clock;
    }

    /// Appends an event to the execution log, if recording.
    #[inline]
    pub(crate) fn record(&self, event: TraceEvent) {
        match &self.trace {
            Some(TraceLog::Memory(t)) => t.lock().push(event),
            Some(TraceLog::Sink(s)) => s.record_event(&event),
            None => {}
        }
    }

    /// Allocates a fresh lock id for trace recording.
    pub(crate) fn alloc_lock_id(&self) -> LockId {
        self.next_lock_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record_thread_exit(&self, final_counter: u64) {
        self.finished_counter_sum
            .fetch_add(final_counter, Ordering::Relaxed);
        self.finished_threads.fetch_add(1, Ordering::Relaxed);
    }
}

/// Services a pending deterministic metadata reset (Section 4.5) and
/// reports whether the execution is being stopped by a race exception.
/// Every spin loop in the runtime polls this.
pub(crate) fn poll_runtime(rt: &RuntimeInner, vc: &mut VectorClock) -> bool {
    if rt.detector.is_some() {
        rt.coordinator.sync_point(vc, || rt.global_reset());
    }
    rt.is_poisoned()
}

/// Aggregate statistics of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct RuntimeStats {
    /// Shared read accesses performed.
    pub shared_reads: u64,
    /// Shared write accesses performed.
    pub shared_writes: u64,
    /// Synchronization operations performed.
    pub sync_ops: u64,
    /// Threads created over the execution.
    pub threads_created: u64,
    /// Deterministic metadata resets performed (Table 1).
    pub rollover_resets: u64,
    /// Sum of final deterministic counters of finished threads.
    pub final_counter_sum: u64,
    /// Detector counters, when detection was enabled.
    pub detector: Option<clean_core::StatsSnapshot>,
}

impl RuntimeStats {
    /// Total shared accesses (the Figure 7 numerator).
    pub fn shared_accesses(&self) -> u64 {
        self.shared_reads + self.shared_writes
    }

    /// A deterministic digest of the execution: under deterministic
    /// synchronization two runs of the same program must produce equal
    /// digests (the Section 6.2.2 determinism check).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for v in [
            self.shared_reads,
            self.shared_writes,
            self.sync_ops,
            self.threads_created,
            self.final_counter_sum,
        ] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// The CLEAN runtime: owns the shared heap, the detector and the
/// deterministic scheduler, and runs monitored programs.
///
/// # Examples
///
/// Detecting a WAW race between two threads:
///
/// ```
/// use clean_runtime::{CleanRuntime, RuntimeConfig, CleanError};
///
/// let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
/// let x = rt.alloc_array::<u32>(1)?;
/// let result: Result<(), CleanError> = rt.run(|ctx| {
///     let t = ctx.spawn(move |child| child.write(&x, 0, 1u32))?;
///     ctx.write(&x, 0, 2u32)?; // unordered with the child's write: WAW
///     ctx.join(t)??;
///     Ok(())
/// });
/// assert!(matches!(result, Err(CleanError::Race(_))) || rt.first_race().is_some());
/// # Ok::<(), CleanError>(())
/// ```
pub struct CleanRuntime {
    inner: Arc<RuntimeInner>,
}

impl CleanRuntime {
    /// Creates a runtime with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` exceeds the epoch layout's thread capacity.
    pub fn new(config: RuntimeConfig) -> Self {
        let trace = config
            .record_trace
            .then(|| TraceLog::Memory(Mutex::new(Vec::new())));
        Self::build(config, trace)
    }

    /// Creates a runtime that streams every recorded execution event into
    /// `sink` instead of accumulating an in-memory log — the to-disk
    /// recording mode (pair with a `clean-trace` file sink). Implies
    /// recording regardless of `config.record_trace`;
    /// [`recorded_trace`](Self::recorded_trace) returns `None` in this
    /// mode.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` exceeds the epoch layout's thread capacity.
    pub fn with_trace_sink(config: RuntimeConfig, sink: Box<dyn EventSink>) -> Self {
        Self::build(config, Some(TraceLog::Sink(sink)))
    }

    fn build(config: RuntimeConfig, trace: Option<TraceLog>) -> Self {
        assert!(
            config.max_threads <= config.layout.max_threads(),
            "max_threads {} exceeds epoch layout capacity {}",
            config.max_threads,
            config.layout.max_threads()
        );
        let detector = config.detection.then(|| {
            let mut det = CleanDetector::new(
                config.heap_size,
                DetectorConfig::new()
                    .layout(config.layout)
                    .vectorized(config.vectorized)
                    .atomicity(config.atomicity)
                    .write_filter(config.write_filter)
                    .page_cache(config.page_cache)
                    .deferred_stats(config.deferred_stats)
                    .sharded_stats(config.sharded_stats)
                    .check_plan(config.check_plan.clone()),
            );
            if config.detector_obs {
                det.attach_obs(clean_core::DetectorObs::global());
            }
            det
        });
        CleanRuntime {
            inner: Arc::new(RuntimeInner {
                heap: SharedHeap::new(config.heap_size),
                detector,
                kendo: Arc::new(Kendo::new(config.max_threads)),
                registry: ThreadRegistry::new(config.max_threads),
                coordinator: RolloverCoordinator::new(),
                poisoned: AtomicBool::new(false),
                first_race: Mutex::new(None),
                reset_hooks: Mutex::new(Vec::new()),
                retired: Mutex::new(vec![0; config.max_threads]),
                shared_reads: AtomicU64::new(0),
                shared_writes: AtomicU64::new(0),
                sync_ops: AtomicU64::new(0),
                finished_counter_sum: AtomicU64::new(0),
                finished_threads: AtomicU64::new(0),
                trace,
                next_lock_id: AtomicU32::new(0),
                config,
            }),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> RuntimeConfig {
        self.inner.config.clone()
    }

    /// Allocates a typed array in the shared heap.
    ///
    /// # Errors
    ///
    /// Returns [`CleanError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_array<T: Scalar>(&self, len: usize) -> Result<SharedArray<T>> {
        self.inner.heap.alloc_array(len)
    }

    /// The first detected race, if a race exception was raised.
    pub fn first_race(&self) -> Option<RaceReport> {
        *self.inner.first_race.lock()
    }

    /// The recorded execution trace, if `record_trace` was enabled —
    /// a serialization of every shared access and synchronization event,
    /// consumable by the `clean-baselines` analysis engines. `None` when
    /// recording streams to an [`EventSink`]
    /// (see [`with_trace_sink`](Self::with_trace_sink)).
    pub fn recorded_trace(&self) -> Option<Vec<TraceEvent>> {
        match &self.inner.trace {
            Some(TraceLog::Memory(t)) => Some(t.lock().clone()),
            _ => None,
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        let i = &self.inner;
        RuntimeStats {
            shared_reads: i.shared_reads.load(Ordering::Relaxed),
            shared_writes: i.shared_writes.load(Ordering::Relaxed),
            sync_ops: i.sync_ops.load(Ordering::Relaxed),
            threads_created: i.registry.total_created(),
            rollover_resets: i.coordinator.resets_performed(),
            final_counter_sum: i.finished_counter_sum.load(Ordering::Relaxed),
            detector: i.detector.as_ref().map(|d| d.stats()),
        }
    }

    pub(crate) fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }

    /// Installs a [`clean_sync::SchedHook`] on this runtime's Kendo table,
    /// observing every deterministic-counter publication and granted turn.
    ///
    /// This is the schedule-exploration hook: the `clean-sched` explorer
    /// uses it to record the deterministic grant sequence of an execution
    /// (which must be identical across runs of a race-free program) and to
    /// steer controlled schedules by logical time. At most one hook per
    /// runtime; returns `false` if one was already installed.
    pub fn set_sched_hook(&self, hook: Arc<dyn clean_sync::SchedHook>) -> bool {
        self.inner.kendo.set_hook(hook)
    }

    /// Runs a monitored program: `f` executes on the calling thread as the
    /// root monitored thread and may [`spawn`](ThreadCtx::spawn) children.
    ///
    /// All spawned threads must be joined before `f` returns.
    ///
    /// # Errors
    ///
    /// Returns [`CleanError::Race`] carrying the globally first race if a
    /// race exception stopped the execution (even if `f` itself returned
    /// `Ok`), or `f`'s own error.
    pub fn run<R>(&self, f: impl FnOnce(&mut ThreadCtx) -> Result<R>) -> Result<R> {
        let inner = &self.inner;
        let root_tid = inner
            .registry
            .allocate()
            .map_err(|e| CleanError::ThreadLimit {
                capacity: e.capacity,
            })?;
        inner.coordinator.register_thread();
        let vc = VectorClock::new(inner.config.max_threads, inner.config.layout);
        let det = inner
            .config
            .det_sync
            .then(|| inner.kendo.register(root_tid, 0));
        let mut ctx = ThreadCtx {
            rt: Arc::clone(inner),
            tid: root_tid,
            vc,
            det,
            local_reads: 0,
            local_writes: 0,
            check: ThreadCheckState::new(),
        };
        if inner.detector.is_some() {
            // Resume above the slot's previous life and enter the first SFR.
            let retired = inner.retired_clock(root_tid);
            ctx.vc.set_clock(root_tid, retired);
            ctx.increment_own();
        }
        let result = f(&mut ctx);
        // Root exit protocol (mirrors spawned-thread exit).
        ctx.flush_counters();
        let final_counter = ctx.det.as_ref().map(|d| d.counter()).unwrap_or(0);
        inner.record_thread_exit(final_counter);
        if inner.detector.is_some() {
            inner.set_retired_clock(root_tid, ctx.vc.clock_of(root_tid));
        }
        ctx.det = None; // drop the handle: excludes the Kendo slot
        inner.coordinator.deregister_thread();
        inner.registry.release(root_tid);
        // The race exception dominates any result.
        if let Some(r) = self.first_race() {
            return Err(CleanError::Race(r));
        }
        result
    }
}

impl std::fmt::Debug for CleanRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanRuntime")
            .field("config", &self.inner.config)
            .field("poisoned", &self.inner.is_poisoned())
            .finish()
    }
}

/// Everything a thread records at exit for its joiner.
struct FinalState {
    vc: VectorClock,
    counter: u64,
    /// Shadow generation the vector clock belongs to: if a deterministic
    /// reset intervened before the join, the clock is obsolete (Section
    /// 4.5) and the joiner must not absorb it.
    generation: u64,
}

/// Join hand-off state shared between parent and child (see
/// [`Kendo::publish_on_behalf`] for why the hand-off must be lock-ordered).
struct JoinShared {
    state: Mutex<JoinSync>,
    finished: AtomicBool,
}

struct JoinSync {
    finished: bool,
    parent_waiting: Option<ThreadId>,
    final_state: Option<FinalState>,
}

/// Handle to a monitored spawned thread; join it with
/// [`ThreadCtx::join`].
pub struct JoinHandle<R> {
    os: std::thread::JoinHandle<Result<R>>,
    tid: ThreadId,
    shared: Arc<JoinShared>,
}

impl<R> JoinHandle<R> {
    /// Deterministic thread id of the spawned thread.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

impl<R> std::fmt::Debug for JoinHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

/// A monitored thread's execution context: the entry point for all shared
/// accesses, synchronization and thread management.
///
/// Obtained from [`CleanRuntime::run`] (root thread) or inside
/// [`ThreadCtx::spawn`] closures (children). All shared-memory reads and
/// writes must go through this context — that is the library-level
/// equivalent of the paper's compiler instrumentation of every potentially
/// shared access (Section 4.1).
pub struct ThreadCtx {
    pub(crate) rt: Arc<RuntimeInner>,
    pub(crate) tid: ThreadId,
    pub(crate) vc: VectorClock,
    pub(crate) det: Option<DetHandle>,
    /// Thread-local access counters, flushed into the runtime totals at
    /// thread exit (per-access shared atomics would put a contended cache
    /// line on the monitored program's fast path and distort the
    /// baseline).
    pub(crate) local_reads: u64,
    pub(crate) local_writes: u64,
    /// Per-thread fast-path check state (SFR write-set filter + last
    /// shadow page cache); flushed on every epoch increment.
    pub(crate) check: ThreadCheckState,
}

impl ThreadCtx {
    /// This thread's deterministic id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// This thread's deterministic (Kendo) counter, or 0 when
    /// deterministic synchronization is disabled.
    pub fn det_counter(&self) -> u64 {
        self.det.as_ref().map(|d| d.counter()).unwrap_or(0)
    }

    /// This thread's vector clock (diagnostic).
    pub fn vector_clock(&self) -> &VectorClock {
        &self.vc
    }

    /// Allocates a typed array in the shared heap.
    ///
    /// # Errors
    ///
    /// Returns [`CleanError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_array<T: Scalar>(&self, len: usize) -> Result<SharedArray<T>> {
        self.rt.heap.alloc_array(len)
    }

    /// Advances this thread's deterministic counter by `n` events — the
    /// library-level equivalent of the paper's basic-block instrumentation
    /// (Section 3.3). Workload kernels call this in their compute loops.
    #[inline]
    pub fn tick(&mut self, n: u64) {
        if let Some(d) = self.det.as_mut() {
            d.tick(n);
        }
    }

    #[inline]
    pub(crate) fn check_poison(&self) -> Result<()> {
        if self.rt.is_poisoned() {
            Err(CleanError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Flushes the thread-local access counters into the runtime totals
    /// and the batched filter-hit stats into the detector shards.
    pub(crate) fn flush_counters(&mut self) {
        if self.local_reads > 0 {
            self.rt
                .shared_reads
                .fetch_add(self.local_reads, Ordering::Relaxed);
            self.local_reads = 0;
        }
        if self.local_writes > 0 {
            self.rt
                .shared_writes
                .fetch_add(self.local_writes, Ordering::Relaxed);
            self.local_writes = 0;
        }
        if let Some(det) = self.rt.detector.as_ref() {
            det.drain_check_state(self.tid, &mut self.check);
        }
    }

    /// Services pending deterministic resets; returns poison status.
    pub(crate) fn poll(&mut self) -> bool {
        let ThreadCtx { rt, vc, .. } = self;
        poll_runtime(rt, vc)
    }

    /// Increments this thread's own vector-clock element, triggering a
    /// deterministic metadata reset first when the clock would roll over
    /// (Section 4.5). No-op when detection is disabled.
    pub(crate) fn increment_own(&mut self) {
        if self.rt.detector.is_none() {
            return;
        }
        if self.vc.at_rollover(self.tid) {
            self.rt.coordinator.request_reset();
        }
        self.poll();
        self.vc
            .increment(self.tid)
            .expect("clock fits after deterministic reset");
        // New SFR: ranges published under the previous epoch may now be
        // overwritten in an ordered way, so the write-set filter flushes
        // and the batched filter-hit stats drain into the shards.
        // (Entries would also self-invalidate via their epoch tag.)
        if let Some(det) = self.rt.detector.as_ref() {
            det.drain_check_state(self.tid, &mut self.check);
        }
        self.check.on_epoch_increment();
    }

    /// Reads element `i` of a shared array (race-checked).
    ///
    /// # Errors
    ///
    /// [`CleanError::Race`] if this read is a RAW race (the race
    /// exception), [`CleanError::Poisoned`] if the execution was already
    /// stopped.
    #[inline]
    pub fn read<T: Scalar>(&mut self, arr: &SharedArray<T>, i: usize) -> Result<T> {
        self.read_addr(arr.addr_of(i))
    }

    /// Writes element `i` of a shared array (race-checked).
    ///
    /// # Errors
    ///
    /// [`CleanError::Race`] if this write is a WAW race,
    /// [`CleanError::Poisoned`] if the execution was already stopped.
    #[inline]
    pub fn write<T: Scalar>(&mut self, arr: &SharedArray<T>, i: usize, value: T) -> Result<()> {
        self.write_addr(arr.addr_of(i), value)
    }

    /// Reads a scalar at byte address `addr` in the shared heap.
    ///
    /// The race check runs immediately *after* the load, per the
    /// Section 4.3 ordering that distinguishes RAW from WAR.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn read_addr<T: Scalar>(&mut self, addr: usize) -> Result<T> {
        self.check_poison()?;
        self.local_reads += 1;
        // Deterministic counters advance with every instrumented access
        // (the paper's basic-block instrumentation, at byte granularity):
        // coarser counters would stall waiters for whole compute regions.
        if let Some(d) = self.det.as_mut() {
            d.tick(1);
        }
        let mut buf = [0u8; 8];
        self.rt.heap.load_bytes(addr, &mut buf[..T::SIZE]);
        self.rt.record(TraceEvent::Read {
            tid: self.tid,
            addr,
            size: T::SIZE,
        });
        if let Some(det) = &self.rt.detector {
            if let Err(r) = det.check_read_with(&self.vc, self.tid, addr, T::SIZE, &mut self.check)
            {
                self.rt.poison(r);
                return Err(CleanError::Race(r));
            }
        }
        Ok(T::decode(&buf))
    }

    /// Writes a scalar at byte address `addr` in the shared heap.
    ///
    /// The race check (and epoch publication) runs *before* the store, per
    /// the Section 4.3 ordering.
    ///
    /// # Errors
    ///
    /// See [`write`](Self::write).
    pub fn write_addr<T: Scalar>(&mut self, addr: usize, value: T) -> Result<()> {
        self.check_poison()?;
        self.local_writes += 1;
        if let Some(d) = self.det.as_mut() {
            d.tick(1);
        }
        self.rt.record(TraceEvent::Write {
            tid: self.tid,
            addr,
            size: T::SIZE,
        });
        if let Some(det) = &self.rt.detector {
            if let Err(r) = det.check_write_with(&self.vc, self.tid, addr, T::SIZE, &mut self.check)
            {
                self.rt.poison(r);
                return Err(CleanError::Race(r));
            }
        }
        let mut buf = [0u8; 8];
        value.encode(&mut buf);
        self.rt.heap.store_bytes(addr, &buf[..T::SIZE]);
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at element `start` of a byte
    /// array, with a single (vectorized) race check covering the whole
    /// range — the instrumented-`memcpy` pattern of Section 4.4.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the array.
    pub fn read_bytes(
        &mut self,
        arr: &SharedArray<u8>,
        start: usize,
        buf: &mut [u8],
    ) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        assert!(start + buf.len() <= arr.len(), "range out of bounds");
        self.check_poison()?;
        let addr = arr.addr_of(start);
        self.local_reads += 1;
        if let Some(d) = self.det.as_mut() {
            d.tick(1);
        }
        self.rt.heap.load_bytes(addr, buf);
        self.rt.record(TraceEvent::Read {
            tid: self.tid,
            addr,
            size: buf.len(),
        });
        if let Some(det) = &self.rt.detector {
            if let Err(r) =
                det.check_read_with(&self.vc, self.tid, addr, buf.len(), &mut self.check)
            {
                self.rt.poison(r);
                return Err(CleanError::Race(r));
            }
        }
        Ok(())
    }

    /// Writes `data` starting at element `start` of a byte array, with a
    /// single (vectorized) race check covering the whole range.
    ///
    /// # Errors
    ///
    /// See [`write`](Self::write).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the array.
    pub fn write_bytes(&mut self, arr: &SharedArray<u8>, start: usize, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        assert!(start + data.len() <= arr.len(), "range out of bounds");
        self.check_poison()?;
        let addr = arr.addr_of(start);
        self.local_writes += 1;
        if let Some(d) = self.det.as_mut() {
            d.tick(1);
        }
        self.rt.record(TraceEvent::Write {
            tid: self.tid,
            addr,
            size: data.len(),
        });
        if let Some(det) = &self.rt.detector {
            if let Err(r) =
                det.check_write_with(&self.vc, self.tid, addr, data.len(), &mut self.check)
            {
                self.rt.poison(r);
                return Err(CleanError::Race(r));
            }
        }
        self.rt.heap.store_bytes(addr, data);
        Ok(())
    }

    /// Spawns a monitored child thread.
    ///
    /// Thread creation is a deterministic event: the child's id, initial
    /// vector clock and initial deterministic counter are all functions of
    /// program progress only (Section 3.3).
    ///
    /// # Errors
    ///
    /// [`CleanError::ThreadLimit`] when no thread ids are free,
    /// [`CleanError::Poisoned`] if the execution was stopped.
    pub fn spawn<R, F>(&mut self, f: F) -> Result<JoinHandle<R>>
    where
        F: FnOnce(&mut ThreadCtx) -> Result<R> + Send + 'static,
        R: Send + 'static,
    {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        // Take the deterministic turn so id allocation is ordered.
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            if let Some(h) = det.as_mut() {
                let rt = Arc::clone(rt);
                h.wait_for_turn(|| poll_runtime(&rt, vc))
                    .map_err(|_| CleanError::Poisoned)?;
            } else {
                poll_runtime(rt, vc);
            }
        }
        let child_tid = self
            .rt
            .registry
            .allocate()
            .map_err(|e| CleanError::ThreadLimit {
                capacity: e.capacity,
            })?;

        // Child vector clock: inherits the parent's knowledge (fork edge)
        // and resumes its own element above the slot's previous life.
        let child_vc = if self.rt.detector.is_some() {
            let retired = self.rt.retired_clock(child_tid);
            if self.rt.config.layout.at_rollover(retired) {
                // The reused slot's clock is exhausted: reset first.
                self.rt.coordinator.request_reset();
                self.poll();
            }
            let mut cvc = self.vc.clone();
            cvc.set_clock(child_tid, self.rt.retired_clock(child_tid));
            cvc.increment(child_tid)
                .expect("retired clock below rollover");
            // Fork is a sync operation for the parent too.
            self.increment_own();
            cvc
        } else {
            VectorClock::new(self.rt.config.max_threads, self.rt.config.layout)
        };

        // Register the child everywhere *before* it starts so rendezvous
        // and turn arbitration account for it from the first instruction.
        self.rt.coordinator.register_thread();
        let child_det = match self.det.as_mut() {
            Some(h) => {
                let handle = self.rt.kendo.register(child_tid, h.counter());
                h.advance();
                Some(handle)
            }
            None => None,
        };

        let shared = Arc::new(JoinShared {
            state: Mutex::new(JoinSync {
                finished: false,
                parent_waiting: None,
                final_state: None,
            }),
            finished: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let mut child_ctx = ThreadCtx {
            rt: Arc::clone(&self.rt),
            tid: child_tid,
            vc: child_vc,
            det: child_det,
            local_reads: 0,
            local_writes: 0,
            check: ThreadCheckState::new(),
        };

        self.rt.record(TraceEvent::Fork {
            parent: self.tid,
            child: child_tid,
        });
        let os = std::thread::Builder::new()
            .name(format!("clean-{child_tid}"))
            .spawn(move || {
                let result = f(&mut child_ctx);
                // Exit protocol: record the final state, hand off to a
                // waiting parent under the lock, then disappear.
                child_ctx.flush_counters();
                let final_counter = child_ctx.det.as_ref().map(|d| d.counter()).unwrap_or(0);
                let generation = child_ctx
                    .rt
                    .detector
                    .as_ref()
                    .map(|d| d.shadow().generation())
                    .unwrap_or(0);
                child_ctx.rt.record_thread_exit(final_counter);
                {
                    let mut js = shared2.state.lock();
                    js.final_state = Some(FinalState {
                        vc: child_ctx.vc.clone(),
                        counter: final_counter,
                        generation,
                    });
                    js.finished = true;
                    if let (Some(ptid), Some(d)) = (js.parent_waiting, child_ctx.det.as_ref()) {
                        // Make the parent visible at (a lower bound of) its
                        // resume time before we vanish.
                        d.kendo().publish_on_behalf(ptid, final_counter + 1);
                    }
                }
                child_ctx.det = None; // exclude the Kendo slot
                child_ctx.rt.coordinator.deregister_thread();
                shared2.finished.store(true, Ordering::Release);
                result
            })
            .expect("failed to spawn OS thread");

        Ok(JoinHandle {
            os,
            tid: child_tid,
            shared,
        })
    }

    /// Joins a monitored child thread, absorbing its happens-before
    /// knowledge and resuming at a deterministic counter.
    ///
    /// Returns the child's own result; a race detected *by the child* is
    /// therefore `Ok(Err(CleanError::Race(..)))` from the child's closure
    /// — use `??` to flatten.
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting.
    ///
    /// # Panics
    ///
    /// Propagates the child's panic, if any.
    pub fn join<R>(&mut self, handle: JoinHandle<R>) -> Result<Result<R>> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        let js = &handle.shared;
        // Exclude while waiting so the child (and everyone else) can take
        // turns; the hand-off republishes us at child_final + 1.
        let mut excluded = false;
        if let Some(d) = self.det.as_ref() {
            let st = js.state.lock();
            if !st.finished {
                let mut st = st;
                st.parent_waiting = Some(self.tid);
                d.exclude();
                excluded = true;
            }
        }
        while !js.finished.load(Ordering::Acquire) {
            self.poll();
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let fs = js
            .state
            .lock()
            .final_state
            .take()
            .expect("child recorded its final state");
        if let Some(det) = &self.rt.detector {
            if fs.generation == det.shadow().generation() {
                self.vc.join(&fs.vc);
                self.rt
                    .set_retired_clock(handle.tid, fs.vc.clock_of(handle.tid));
            } else {
                // A deterministic reset intervened: the child's clocks are
                // obsolete (and its slot's history is already zeroed).
                self.rt.set_retired_clock(handle.tid, 0);
            }
        }
        if let Some(d) = self.det.as_mut() {
            let resume = fs.counter + 1;
            if excluded {
                d.include(resume);
            } else {
                d.advance_to(resume);
            }
        }
        self.rt.record(TraceEvent::Join {
            parent: self.tid,
            child: handle.tid,
        });
        if self.rt.detector.is_some() {
            self.increment_own();
        }
        // Release the id deterministically (allocation order vs. release
        // order must not depend on physical timing).
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            if let Some(h) = det.as_mut() {
                let rt2 = Arc::clone(rt);
                let _ = h.wait_for_turn(|| poll_runtime(&rt2, vc));
                rt.registry.release(handle.tid);
                h.advance();
            } else {
                rt.registry.release(handle.tid);
            }
        }
        match handle.os.join() {
            Ok(res) => Ok(res),
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("tid", &self.tid)
            .field("det_counter", &self.det_counter())
            .finish()
    }
}
