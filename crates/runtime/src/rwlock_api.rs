//! Reader-writer locks for monitored threads, with the precise two-clock
//! happens-before model: a *write clock* published by write-unlocks and
//! absorbed by every acquire, and a *read-release clock* published by
//! read-unlocks and absorbed only by write-acquires. Read-acquires never
//! absorb other readers' clocks, so reader-reader ordering is never
//! fabricated — over-synchronizing there would mask real races.
//!
//! Recorded traces encode the same model with two pseudo-lock ids (see
//! [`CleanRwLock`]), so the offline engines reconstruct identical
//! happens-before.

use crate::error::{CleanError, Result};
use crate::runtime::{poll_runtime, CleanRuntime, ThreadCtx};
use clean_core::{LockId, TraceEvent, VectorClock};
use clean_sync::DetRwLock;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Plain-path state: 0 = free, `u32::MAX` = writer, otherwise reader
/// count.
const WRITER: u32 = u32::MAX;

/// A reader-writer lock usable from monitored threads via
/// [`ThreadCtx::read_lock`] / [`ThreadCtx::write_lock`] and their
/// unlock counterparts.
pub struct CleanRwLock {
    det: DetRwLock,
    plain: AtomicU32,
    /// Published by write-unlocks; absorbed by every acquire.
    write_vc: Arc<Mutex<VectorClock>>,
    /// Published by read-unlocks; absorbed by write-acquires only.
    read_vc: Arc<Mutex<VectorClock>>,
    /// Trace id of the write clock.
    id_w: LockId,
    /// Trace id of the read-release clock.
    id_r: LockId,
}

impl CleanRwLock {
    /// (read, write) acquisitions under deterministic synchronization.
    pub fn acquisitions(&self) -> (u64, u64) {
        self.det.acquisitions()
    }

    /// The (write-clock, read-clock) trace ids.
    pub fn ids(&self) -> (LockId, LockId) {
        (self.id_w, self.id_r)
    }
}

impl std::fmt::Debug for CleanRwLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanRwLock")
            .field("readers", &self.det.reader_count())
            .field("writer", &self.det.writer())
            .finish()
    }
}

impl CleanRuntime {
    /// Creates a reader-writer lock whose clocks participate in
    /// deterministic resets.
    pub fn create_rwlock(&self) -> Arc<CleanRwLock> {
        let cfg = self.config();
        let write_vc = Arc::new(Mutex::new(VectorClock::new(cfg.max_threads, cfg.layout)));
        let read_vc = Arc::new(Mutex::new(VectorClock::new(cfg.max_threads, cfg.layout)));
        let (w, r) = (Arc::clone(&write_vc), Arc::clone(&read_vc));
        self.inner().register_reset_hook(Box::new(move || {
            w.lock().reset();
            r.lock().reset();
        }));
        Arc::new(CleanRwLock {
            det: DetRwLock::new(),
            plain: AtomicU32::new(0),
            write_vc,
            read_vc,
            id_w: self.inner().alloc_lock_id(),
            id_r: self.inner().alloc_lock_id(),
        })
    }
}

impl ThreadCtx {
    /// Acquires `l` in shared mode: joins the lock's write clock (all
    /// prior write-unlocks happen-before this reader).
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting.
    pub fn read_lock(&mut self, l: &CleanRwLock) -> Result<()> {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            match det.as_mut() {
                Some(h) => {
                    let rt2 = Arc::clone(rt);
                    l.det
                        .read_lock(h, || poll_runtime(&rt2, vc))
                        .map_err(|_| CleanError::Poisoned)?;
                }
                None => loop {
                    let cur = l.plain.load(Ordering::Acquire);
                    if cur != WRITER
                        && l.plain
                            .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                    {
                        break;
                    }
                    if poll_runtime(rt, vc) {
                        return Err(CleanError::Poisoned);
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                },
            }
        }
        if self.rt.detector.is_some() {
            let wvc = l.write_vc.lock();
            self.vc.join(&wvc);
        }
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: l.id_w,
        });
        Ok(())
    }

    /// Releases a shared hold: publishes this thread's clock into the
    /// lock's read-release clock (absorbed by the next write-acquire).
    pub fn read_unlock(&mut self, l: &CleanRwLock) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: l.id_r,
        });
        if self.rt.detector.is_some() {
            l.read_vc.lock().join(&self.vc);
            self.increment_own();
        }
        match self.det.as_mut() {
            Some(h) => l.det.read_unlock(h),
            None => {
                let prev = l.plain.fetch_sub(1, Ordering::AcqRel);
                assert!(prev != 0 && prev != WRITER, "read_unlock without hold");
            }
        }
        Ok(())
    }

    /// Acquires `l` exclusively: joins both the write clock and the
    /// read-release clock (all prior readers and writers happen-before
    /// this writer).
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting.
    pub fn write_lock(&mut self, l: &CleanRwLock) -> Result<()> {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            match det.as_mut() {
                Some(h) => {
                    let rt2 = Arc::clone(rt);
                    l.det
                        .write_lock(h, || poll_runtime(&rt2, vc))
                        .map_err(|_| CleanError::Poisoned)?;
                }
                None => {
                    while l
                        .plain
                        .compare_exchange(0, WRITER, Ordering::AcqRel, Ordering::Relaxed)
                        .is_err()
                    {
                        if poll_runtime(rt, vc) {
                            return Err(CleanError::Poisoned);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
        if self.rt.detector.is_some() {
            {
                let wvc = l.write_vc.lock();
                self.vc.join(&wvc);
            }
            {
                let rvc = l.read_vc.lock();
                self.vc.join(&rvc);
            }
        }
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: l.id_w,
        });
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: l.id_r,
        });
        Ok(())
    }

    /// Atomically downgrades the exclusive hold to a shared one: the
    /// write clock is published (every later acquirer absorbs this
    /// writer's updates, exactly as for [`write_unlock`]) and the thread
    /// continues as a reader with no window in which another writer could
    /// acquire the lock. The shared hold is eventually released with
    /// [`read_unlock`].
    ///
    /// The trace records the write-clock release here; the retained
    /// shared hold releases the read-clock pseudo-lock at `read_unlock`,
    /// so offline engines reconstruct the same happens-before.
    ///
    /// [`write_unlock`]: Self::write_unlock
    /// [`read_unlock`]: Self::read_unlock
    ///
    /// # Panics
    ///
    /// Panics (under det-sync or the plain path) if this thread does not
    /// hold the write lock.
    pub fn downgrade(&mut self, l: &CleanRwLock) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: l.id_w,
        });
        if self.rt.detector.is_some() {
            l.write_vc.lock().join(&self.vc);
            self.increment_own();
        }
        match self.det.as_mut() {
            Some(h) => l.det.downgrade(h),
            None => {
                let prev = l.plain.swap(1, Ordering::AcqRel);
                assert_eq!(prev, WRITER, "downgrade without exclusive hold");
            }
        }
        Ok(())
    }

    /// Releases the exclusive hold: publishes this thread's clock into
    /// the lock's write clock.
    ///
    /// # Panics
    ///
    /// Panics (under det-sync) if this thread does not hold the write
    /// lock.
    pub fn write_unlock(&mut self, l: &CleanRwLock) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: l.id_w,
        });
        if self.rt.detector.is_some() {
            l.write_vc.lock().join(&self.vc);
            self.increment_own();
        }
        match self.det.as_mut() {
            Some(h) => l.det.write_unlock(h),
            None => {
                let prev = l.plain.swap(0, Ordering::AcqRel);
                assert_eq!(prev, WRITER, "write_unlock without exclusive hold");
            }
        }
        Ok(())
    }
}
