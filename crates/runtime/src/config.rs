//! Runtime configuration — the experiment knobs of Section 6.

use clean_core::{AtomicityMode, CompiledPlan, EpochLayout};
use std::sync::Arc;

/// Configuration of a [`CleanRuntime`](crate::CleanRuntime).
///
/// The defaults correspond to full software-only CLEAN as evaluated in
/// Figure 6: precise WAW/RAW detection with the multi-byte vectorization,
/// plus Kendo deterministic synchronization, with the paper's 23-bit-clock
/// epoch layout. Every Figure 6/8 configuration is expressible:
///
/// | Figure 6 bar            | `detection` | `det_sync` |
/// |-------------------------|-------------|------------|
/// | nondeterministic (base) | `false`     | `false`    |
/// | deterministic sync only | `false`     | `true`     |
/// | race detection only     | `true`      | `false`    |
/// | CLEAN                   | `true`      | `true`     |
///
/// # Examples
///
/// ```
/// use clean_runtime::RuntimeConfig;
/// let cfg = RuntimeConfig::new()
///     .heap_size(1 << 20)
///     .max_threads(8)
///     .detection(true)
///     .det_sync(true);
/// assert_eq!(cfg.max_threads, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RuntimeConfig {
    /// Size of the shared heap in bytes.
    pub heap_size: usize,
    /// Maximum concurrently live threads (bounded by the epoch layout's
    /// tid capacity when detection is on).
    pub max_threads: usize,
    /// Enable precise WAW/RAW race detection (Sections 3.2, 4).
    pub detection: bool,
    /// Enable Kendo deterministic synchronization (Sections 2.4, 3.3).
    pub det_sync: bool,
    /// Enable the Section 4.4 multi-byte vectorization (Figure 8 knob).
    pub vectorized: bool,
    /// Epoch bit layout (Table 1 compares 23-bit and 28-bit clocks).
    pub layout: EpochLayout,
    /// Check-atomicity scheme (lock-free CAS vs per-check locking — the
    /// Section 3.2 locking-overhead ablation).
    pub atomicity: AtomicityMode,
    /// Record a [`clean_core::TraceEvent`] log of the execution for
    /// offline cross-validation against the `clean-baselines` engines.
    /// Serializes every event through one lock — testing only.
    pub record_trace: bool,
    /// Enable the per-thread SFR write-set filter: provably redundant
    /// checks on ranges a thread already published this SFR are skipped
    /// (the software analogue of the paper's Section 5 LLC filtering).
    pub write_filter: bool,
    /// Enable the thread-local last-shadow-page cache on the check path.
    pub page_cache: bool,
    /// Batch the statistics bumps of filter-answered checks into plain
    /// per-thread counters, drained into the shards on epoch increments
    /// and thread exit (the filter-hit path then touches no shared state).
    pub deferred_stats: bool,
    /// Spread detector statistics over cache-line-padded per-thread
    /// shards instead of one contended set of counters.
    pub sharded_stats: bool,
    /// Optional compiled static check plan (derive with
    /// `clean-analyze plan` or [`clean_core::PlanObserver`]): per-range
    /// check elision, coalesced filtering, and batched compare spans.
    pub check_plan: Option<Arc<CompiledPlan>>,
    /// Attach a [`clean_core::DetectorObs`] bridge to the detector,
    /// mirroring SFR drains and race reports into the process-wide
    /// `clean-obs` registry. Off (the default) leaves the check path
    /// bit-identical to a build without the bridge; on costs a few
    /// relaxed atomics per SFR, nothing per access.
    pub detector_obs: bool,
}

impl RuntimeConfig {
    /// Full software-only CLEAN with the paper's defaults.
    pub fn new() -> Self {
        RuntimeConfig {
            heap_size: 1 << 20,
            max_threads: 16,
            detection: true,
            det_sync: true,
            vectorized: true,
            layout: EpochLayout::paper_default(),
            atomicity: AtomicityMode::LockFree,
            record_trace: false,
            write_filter: true,
            page_cache: true,
            deferred_stats: true,
            sharded_stats: true,
            check_plan: None,
            detector_obs: false,
        }
    }

    /// The nondeterministic baseline: no detection, no deterministic
    /// synchronization (the normalization denominator of Figure 6).
    pub fn baseline() -> Self {
        Self::new().detection(false).det_sync(false)
    }

    /// Sets the shared heap size in bytes.
    pub fn heap_size(mut self, bytes: usize) -> Self {
        self.heap_size = bytes;
        self
    }

    /// Sets the maximum number of live threads.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Enables or disables race detection.
    pub fn detection(mut self, on: bool) -> Self {
        self.detection = on;
        self
    }

    /// Enables or disables deterministic synchronization.
    pub fn det_sync(mut self, on: bool) -> Self {
        self.det_sync = on;
        self
    }

    /// Enables or disables the multi-byte check vectorization.
    pub fn vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Sets the epoch layout.
    pub fn layout(mut self, layout: EpochLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Selects the check-atomicity scheme.
    pub fn atomicity(mut self, mode: AtomicityMode) -> Self {
        self.atomicity = mode;
        self
    }

    /// Enables execution trace recording (testing/cross-validation).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables or disables the SFR write-set filter.
    pub fn write_filter(mut self, on: bool) -> Self {
        self.write_filter = on;
        self
    }

    /// Enables or disables the thread-local shadow-page cache.
    pub fn page_cache(mut self, on: bool) -> Self {
        self.page_cache = on;
        self
    }

    /// Enables or disables sharded detector statistics.
    pub fn sharded_stats(mut self, on: bool) -> Self {
        self.sharded_stats = on;
        self
    }

    /// Enables or disables deferred (per-thread batched) filter-hit
    /// statistics.
    pub fn deferred_stats(mut self, on: bool) -> Self {
        self.deferred_stats = on;
        self
    }

    /// Installs (or clears) a compiled static check plan.
    pub fn check_plan(mut self, plan: Option<Arc<CompiledPlan>>) -> Self {
        self.check_plan = plan;
        self
    }

    /// Enables or disables the detector's `clean-obs` metrics bridge.
    pub fn detector_obs(mut self, on: bool) -> Self {
        self.detector_obs = on;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_clean() {
        let c = RuntimeConfig::default();
        assert!(c.detection && c.det_sync && c.vectorized);
        assert!(c.write_filter && c.page_cache && c.sharded_stats);
        assert_eq!(c.layout.clock_bits(), 23);
    }

    #[test]
    fn fast_path_knobs_toggle() {
        let c = RuntimeConfig::new()
            .write_filter(false)
            .page_cache(false)
            .sharded_stats(false);
        assert!(!c.write_filter && !c.page_cache && !c.sharded_stats);
    }

    #[test]
    fn baseline_disables_both_mechanisms() {
        let c = RuntimeConfig::baseline();
        assert!(!c.detection && !c.det_sync);
    }

    #[test]
    fn builder_chains() {
        let c = RuntimeConfig::new()
            .heap_size(4096)
            .max_threads(4)
            .vectorized(false)
            .layout(EpochLayout::wide_clock());
        assert_eq!(c.heap_size, 4096);
        assert_eq!(c.max_threads, 4);
        assert!(!c.vectorized);
        assert_eq!(c.layout.clock_bits(), 28);
    }
}
