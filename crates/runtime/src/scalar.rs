//! Plain-old-data scalars that can live in the shared heap.

mod private {
    pub trait Sealed {}
}

/// A fixed-size plain-old-data scalar storable in CLEAN's shared heap.
///
/// All accesses go through little-endian byte encoding, matching the
/// byte-granular metadata the detector maintains (Section 3.2: checks are
/// performed "at the finest granularity at which a program may access
/// memory, i.e., for each byte").
///
/// This trait is sealed; it is implemented for the integer and float
/// primitives up to 8 bytes.
pub trait Scalar: Copy + Send + Sync + 'static + private::Sealed {
    /// Size of the encoded value in bytes (1, 2, 4 or 8).
    const SIZE: usize;

    /// Encodes `self` into `out[..Self::SIZE]` (little-endian).
    fn encode(self, out: &mut [u8]);

    /// Decodes a value from `buf[..Self::SIZE]` (little-endian).
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn encode(self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(buf: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&buf[..Self::SIZE]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0xabu8);
        roundtrip(0xdeadu16);
        roundtrip(0xdead_beefu32);
        roundtrip(0xdead_beef_cafe_f00du64);
        roundtrip(-7i8);
        roundtrip(-31000i16);
        roundtrip(-2_000_000_000i32);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(3.5f32);
        roundtrip(-0.1f64);
        roundtrip(f64::INFINITY);
    }

    #[test]
    fn sizes() {
        assert_eq!(<u8 as Scalar>::SIZE, 1);
        assert_eq!(<u16 as Scalar>::SIZE, 2);
        assert_eq!(<f32 as Scalar>::SIZE, 4);
        assert_eq!(<u64 as Scalar>::SIZE, 8);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0403_0201u32.encode(&mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
