//! Synchronization objects of the CLEAN runtime: Pthread-like mutexes,
//! barriers and condition variables that (i) order deterministically via
//! Kendo when enabled, and (ii) carry vector clocks so the detector tracks
//! happens-before across them (Section 3.2: thread and lock clocks are
//! "updated on synchronization and thread create/join operations as in
//! standard race detectors").

use crate::error::{CleanError, Result};
use crate::runtime::{poll_runtime, CleanRuntime, ThreadCtx};
use clean_core::{LockId, TraceEvent, VectorClock};
use clean_sync::{DetBarrier, DetCondvar, DetMutex};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A mutex usable from monitored threads via [`ThreadCtx::lock`] /
/// [`ThreadCtx::unlock`].
///
/// Carries a vector clock that propagates happens-before from the
/// releasing to the acquiring thread. With deterministic synchronization
/// enabled the acquisition order is the same in every execution.
pub struct CleanMutex {
    det: DetMutex,
    plain: AtomicBool,
    vc: Arc<Mutex<VectorClock>>,
    id: LockId,
}

impl CleanMutex {
    /// Number of deterministic acquisitions (diagnostic; meaningful when
    /// det-sync is enabled).
    pub fn acquisitions(&self) -> u64 {
        self.det.acquisitions()
    }

    /// The lock's id in recorded traces.
    pub fn id(&self) -> LockId {
        self.id
    }
}

impl std::fmt::Debug for CleanMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanMutex")
            .field("det", &self.det)
            .finish()
    }
}

/// A cyclic barrier usable from monitored threads via
/// [`ThreadCtx::barrier_wait`].
pub struct CleanBarrier {
    det: DetBarrier,
    parties: usize,
    id: LockId,
    plain_state: Mutex<(usize, u64)>,
    plain_gen: AtomicU64,
    /// (accumulator, arrival count) of the in-progress episode.
    arrivals: Arc<Mutex<(VectorClock, usize)>>,
    /// Release clock of the last completed episode.
    release: Arc<Mutex<VectorClock>>,
}

impl CleanBarrier {
    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed episodes (under det-sync; diagnostic).
    pub fn generations(&self) -> u64 {
        self.det
            .generations()
            .max(self.plain_gen.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for CleanBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanBarrier")
            .field("parties", &self.parties)
            .finish()
    }
}

/// A condition variable usable from monitored threads via
/// [`ThreadCtx::cond_wait`] / [`ThreadCtx::cond_signal`] /
/// [`ThreadCtx::cond_broadcast`].
pub struct CleanCondvar {
    det: DetCondvar,
    plain: Mutex<VecDeque<Arc<AtomicBool>>>,
}

impl std::fmt::Debug for CleanCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanCondvar")
            .field("waiters", &self.det.waiter_count())
            .finish()
    }
}

impl CleanRuntime {
    /// Creates a mutex whose clock participates in deterministic resets.
    pub fn create_mutex(&self) -> Arc<CleanMutex> {
        let cfg = self.config();
        let vc = Arc::new(Mutex::new(VectorClock::new(cfg.max_threads, cfg.layout)));
        let hook_vc = Arc::clone(&vc);
        self.inner()
            .register_reset_hook(Box::new(move || hook_vc.lock().reset()));
        Arc::new(CleanMutex {
            det: DetMutex::new(),
            plain: AtomicBool::new(false),
            vc,
            id: self.inner().alloc_lock_id(),
        })
    }

    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn create_barrier(&self, parties: usize) -> Arc<CleanBarrier> {
        let cfg = self.config();
        let arrivals = Arc::new(Mutex::new((
            VectorClock::new(cfg.max_threads, cfg.layout),
            0usize,
        )));
        let release = Arc::new(Mutex::new(VectorClock::new(cfg.max_threads, cfg.layout)));
        let (a, r) = (Arc::clone(&arrivals), Arc::clone(&release));
        self.inner().register_reset_hook(Box::new(move || {
            a.lock().0.reset();
            r.lock().reset();
        }));
        Arc::new(CleanBarrier {
            det: DetBarrier::new(parties),
            parties,
            id: self.inner().alloc_lock_id(),
            plain_state: Mutex::new((0, 0)),
            plain_gen: AtomicU64::new(0),
            arrivals,
            release,
        })
    }

    /// Creates a condition variable.
    pub fn create_condvar(&self) -> Arc<CleanCondvar> {
        Arc::new(CleanCondvar {
            det: DetCondvar::new(),
            plain: Mutex::new(VecDeque::new()),
        })
    }
}

impl ThreadCtx {
    /// Acquires `m`, joining the lock's vector clock into this thread's
    /// (the happens-before acquire edge).
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting.
    pub fn lock(&mut self, m: &CleanMutex) -> Result<()> {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            match det.as_mut() {
                Some(h) => {
                    let rt2 = Arc::clone(rt);
                    m.det
                        .lock(h, || poll_runtime(&rt2, vc))
                        .map_err(|_| CleanError::Poisoned)?;
                }
                None => {
                    while m
                        .plain
                        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        if poll_runtime(rt, vc) {
                            return Err(CleanError::Poisoned);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
        if self.rt.detector.is_some() {
            let lock_vc = m.vc.lock();
            self.vc.join(&lock_vc);
        }
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: m.id,
        });
        Ok(())
    }

    /// Releases `m`, publishing this thread's vector clock into the lock
    /// (the happens-before release edge) and starting a new SFR.
    ///
    /// # Panics
    ///
    /// Panics (under det-sync) if this thread does not hold `m`.
    pub fn unlock(&mut self, m: &CleanMutex) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: m.id,
        });
        if self.rt.detector.is_some() {
            m.vc.lock().join(&self.vc);
            self.increment_own();
        }
        match self.det.as_mut() {
            Some(h) => m.det.unlock(h),
            None => m.plain.store(false, Ordering::Release),
        }
        Ok(())
    }

    /// Waits at barrier `b`; all participants leave with the join of all
    /// arrival clocks (every pre-barrier write happens-before every
    /// post-barrier access). Returns `true` for one leader per episode.
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting.
    pub fn barrier_wait(&mut self, b: &CleanBarrier) -> Result<bool> {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        // Trace encoding of all-to-all ordering: every arrival releases
        // the barrier's pseudo-lock, every departure acquires it; the
        // physical barrier guarantees all releases precede all acquires.
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: b.id,
        });
        if self.rt.detector.is_some() {
            let mut arr = b.arrivals.lock();
            arr.0.join(&self.vc);
            arr.1 += 1;
            if arr.1 == b.parties {
                // Last vc-arriver finalizes the episode's release clock
                // before anyone can pass the physical barrier.
                let mut rel = b.release.lock();
                rel.clone_from(&arr.0);
                arr.1 = 0;
                arr.0.reset();
            }
        }
        let leader;
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            match det.as_mut() {
                Some(h) => {
                    let rt2 = Arc::clone(rt);
                    leader = b
                        .det
                        .wait(h, || poll_runtime(&rt2, vc))
                        .map_err(|_| CleanError::Poisoned)?;
                }
                None => {
                    let my_gen;
                    let mut lead = false;
                    {
                        let mut st = b.plain_state.lock();
                        my_gen = st.1;
                        st.0 += 1;
                        if st.0 == b.parties {
                            st.0 = 0;
                            st.1 += 1;
                            b.plain_gen.store(st.1, Ordering::SeqCst);
                            lead = true;
                        }
                    }
                    if !lead {
                        while b.plain_gen.load(Ordering::SeqCst) == my_gen {
                            if poll_runtime(rt, vc) {
                                return Err(CleanError::Poisoned);
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                    leader = lead;
                }
            }
        }
        if self.rt.detector.is_some() {
            {
                let rel = b.release.lock();
                self.vc.join(&rel);
            }
            self.increment_own();
        }
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: b.id,
        });
        Ok(leader)
    }

    /// Releases `m`, waits for a signal on `cv`, then re-acquires `m`.
    ///
    /// The caller must hold `m` and should re-check its predicate in a
    /// loop, as with Pthread condition variables.
    ///
    /// # Errors
    ///
    /// [`CleanError::Poisoned`] if the execution stopped while waiting —
    /// in that case `m` is **not** re-acquired.
    pub fn cond_wait(&mut self, cv: &CleanCondvar, m: &CleanMutex) -> Result<()> {
        self.check_poison()?;
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        self.rt.record(TraceEvent::Release {
            tid: self.tid,
            lock: m.id,
        });
        // Release edge into the mutex before physically releasing it.
        if self.rt.detector.is_some() {
            m.vc.lock().join(&self.vc);
            self.increment_own();
        }
        {
            let ThreadCtx { rt, vc, det, .. } = self;
            match det.as_mut() {
                Some(h) => {
                    let rt2 = Arc::clone(rt);
                    cv.det
                        .wait(&m.det, h, || poll_runtime(&rt2, vc))
                        .map_err(|_| CleanError::Poisoned)?;
                }
                None => {
                    let ticket = Arc::new(AtomicBool::new(false));
                    cv.plain.lock().push_back(Arc::clone(&ticket));
                    m.plain.store(false, Ordering::Release);
                    while !ticket.load(Ordering::Acquire) {
                        if poll_runtime(rt, vc) {
                            return Err(CleanError::Poisoned);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                    // Re-acquire.
                    while m
                        .plain
                        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        if poll_runtime(rt, vc) {
                            return Err(CleanError::Poisoned);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
        // Acquire edge from the mutex (the signaller's release reached it).
        if self.rt.detector.is_some() {
            let lock_vc = m.vc.lock();
            self.vc.join(&lock_vc);
        }
        self.rt.record(TraceEvent::Acquire {
            tid: self.tid,
            lock: m.id,
        });
        Ok(())
    }

    /// Wakes one waiter of `cv` (the deterministic one under det-sync).
    /// Must be called while holding the associated mutex.
    pub fn cond_signal(&mut self, cv: &CleanCondvar) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        match self.det.as_mut() {
            Some(h) => cv.det.signal(h),
            None => {
                if let Some(t) = cv.plain.lock().pop_front() {
                    t.store(true, Ordering::Release);
                }
            }
        }
        Ok(())
    }

    /// Wakes all waiters of `cv`. Must be called while holding the
    /// associated mutex.
    pub fn cond_broadcast(&mut self, cv: &CleanCondvar) -> Result<()> {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        match self.det.as_mut() {
            Some(h) => cv.det.broadcast(h),
            None => {
                for t in cv.plain.lock().drain(..) {
                    t.store(true, Ordering::Release);
                }
            }
        }
        Ok(())
    }
}
