//! The shared heap — the "potentially shared program data" that CLEAN
//! monitors.
//!
//! The paper instruments every access the compiler cannot prove private
//! (Section 4.1). In this library-level reproduction, shared data lives in
//! an explicit byte-addressed heap and programs access it through the
//! checked accessors of [`ThreadCtx`](crate::ThreadCtx); everything else
//! (Rust locals) plays the role of provably-private registers and stack
//! slots.
//!
//! Data bytes are stored as relaxed atomics: CLEAN deliberately allows
//! WAR-racy executions to complete, so the underlying storage must remain
//! well-defined under concurrent access. Relaxed atomic bytes compile to
//! plain loads/stores on x86, mirroring the paper's setting.

use crate::error::CleanError;
use crate::scalar::Scalar;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// A typed view of a contiguous region of the shared heap.
///
/// The handle is a plain (base, length) descriptor — copying it does not
/// copy data, and all element accesses go through a
/// [`ThreadCtx`](crate::ThreadCtx) so they are race-checked.
#[derive(Debug)]
pub struct SharedArray<T: Scalar> {
    base: usize,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would needlessly bound T.
impl<T: Scalar> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for SharedArray<T> {}

impl<T: Scalar> SharedArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of the first element in the shared heap.
    pub fn base_addr(&self) -> usize {
        self.base
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn addr_of(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + i * T::SIZE
    }

    /// A sub-view of elements `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > len`.
    pub fn slice(&self, from: usize, to: usize) -> SharedArray<T> {
        assert!(from <= to && to <= self.len, "invalid slice {from}..{to}");
        SharedArray {
            base: self.base + from * T::SIZE,
            len: to - from,
            _marker: PhantomData,
        }
    }
}

/// The byte-addressed shared heap: backing storage plus a bump allocator.
pub struct SharedHeap {
    data: Box<[AtomicU8]>,
    cursor: AtomicUsize,
}

impl SharedHeap {
    /// Creates a heap of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "heap must have nonzero size");
        SharedHeap {
            data: (0..size).map(|_| AtomicU8::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Total heap size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Allocates `bytes` bytes aligned to `align` (zero-initialized; the
    /// heap is never reused, like the paper's monitored malloc regions).
    ///
    /// # Errors
    ///
    /// Returns [`CleanError::OutOfMemory`] when the heap is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&self, bytes: usize, align: usize) -> Result<usize, CleanError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        loop {
            let cur = self.cursor.load(Ordering::Relaxed);
            let base = (cur + align - 1) & !(align - 1);
            let end = base.saturating_add(bytes);
            if end > self.data.len() {
                return Err(CleanError::OutOfMemory {
                    requested: bytes,
                    available: self.data.len().saturating_sub(base),
                });
            }
            if self
                .cursor
                .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(base);
            }
        }
    }

    /// Allocates a typed array of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`CleanError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_array<T: Scalar>(&self, len: usize) -> Result<SharedArray<T>, CleanError> {
        let base = self.alloc(len * T::SIZE, T::SIZE.max(1))?;
        Ok(SharedArray {
            base,
            len,
            _marker: PhantomData,
        })
    }

    /// Raw unchecked byte load (used by the runtime's checked accessors;
    /// not race-checked by itself).
    #[inline]
    pub(crate) fn load_byte(&self, addr: usize) -> u8 {
        self.data[addr].load(Ordering::Relaxed)
    }

    /// Raw unchecked byte store.
    #[inline]
    pub(crate) fn store_byte(&self, addr: usize, v: u8) {
        self.data[addr].store(v, Ordering::Relaxed);
    }

    /// Loads `buf.len()` bytes starting at `addr`.
    pub(crate) fn load_bytes(&self, addr: usize, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.load_byte(addr + i);
        }
    }

    /// Stores `buf` starting at `addr`.
    pub(crate) fn store_bytes(&self, addr: usize, buf: &[u8]) {
        for (i, b) in buf.iter().enumerate() {
            self.store_byte(addr + i, *b);
        }
    }
}

impl std::fmt::Debug for SharedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHeap")
            .field("size", &self.size())
            .field("used", &self.used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let h = SharedHeap::new(1024);
        let a = h.alloc(3, 1).unwrap();
        let b = h.alloc(8, 8).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= 3);
    }

    #[test]
    fn alloc_array_sizes() {
        let h = SharedHeap::new(1024);
        let a: SharedArray<u32> = h.alloc_array(10).unwrap();
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        assert_eq!(a.addr_of(1) - a.addr_of(0), 4);
        assert_eq!(a.base_addr() % 4, 0);
    }

    #[test]
    fn out_of_memory() {
        let h = SharedHeap::new(16);
        assert!(h.alloc(12, 1).is_ok());
        let err = h.alloc(8, 1).unwrap_err();
        assert!(matches!(err, CleanError::OutOfMemory { requested: 8, .. }));
    }

    #[test]
    fn slice_views() {
        let h = SharedHeap::new(1024);
        let a: SharedArray<u64> = h.alloc_array(8).unwrap();
        let s = a.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.addr_of(0), a.addr_of(2));
    }

    #[test]
    #[should_panic]
    fn addr_of_out_of_bounds_panics() {
        let h = SharedHeap::new(64);
        let a: SharedArray<u8> = h.alloc_array(4).unwrap();
        let _ = a.addr_of(4);
    }

    #[test]
    fn byte_roundtrip() {
        let h = SharedHeap::new(64);
        h.store_bytes(10, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        h.load_bytes(10, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn zero_initialized() {
        let h = SharedHeap::new(8);
        assert_eq!(h.load_byte(7), 0);
    }
}
