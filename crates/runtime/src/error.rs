//! Error types of the CLEAN runtime.

use clean_core::RaceReport;
use core::fmt;

/// Errors surfaced by CLEAN runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CleanError {
    /// The CLEAN race exception: a WAW or RAW race was detected on this
    /// access. The execution is stopped (all threads are poisoned).
    Race(RaceReport),
    /// Another thread raised the race exception; this thread must unwind.
    /// The globally first race is available from
    /// [`CleanRuntime::first_race`](crate::CleanRuntime::first_race).
    Poisoned,
    /// The shared heap is exhausted.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes remaining in the heap.
        available: usize,
    },
    /// No free deterministic thread ids remain.
    ThreadLimit {
        /// The configured maximum number of live threads.
        capacity: usize,
    },
}

impl fmt::Display for CleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleanError::Race(r) => write!(f, "race exception: {r}"),
            CleanError::Poisoned => {
                write!(f, "execution stopped by a race exception in another thread")
            }
            CleanError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "shared heap exhausted: requested {requested} bytes, {available} available"
            ),
            CleanError::ThreadLimit { capacity } => {
                write!(f, "thread limit reached: {capacity} ids are live")
            }
        }
    }
}

impl std::error::Error for CleanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CleanError::Race(r) => Some(r),
            _ => None,
        }
    }
}

impl From<RaceReport> for CleanError {
    fn from(r: RaceReport) -> Self {
        CleanError::Race(r)
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, CleanError>;

#[cfg(test)]
mod tests {
    use super::*;
    use clean_core::{EpochLayout, RaceKind, ThreadId};

    fn report() -> RaceReport {
        let layout = EpochLayout::paper_default();
        RaceReport {
            kind: RaceKind::ReadAfterWrite,
            addr: 4,
            size: 4,
            current_tid: ThreadId::new(1),
            current_clock: 2,
            previous: layout.pack(ThreadId::new(0), 3),
            layout,
        }
    }

    #[test]
    fn display_variants() {
        assert!(CleanError::Race(report()).to_string().contains("RAW"));
        assert!(CleanError::Poisoned.to_string().contains("stopped"));
        assert!(CleanError::OutOfMemory {
            requested: 10,
            available: 4
        }
        .to_string()
        .contains("10"));
        assert!(CleanError::ThreadLimit { capacity: 8 }
            .to_string()
            .contains('8'));
    }

    #[test]
    fn race_error_exposes_source() {
        use std::error::Error;
        let e = CleanError::Race(report());
        assert!(e.source().is_some());
        assert!(CleanError::Poisoned.source().is_none());
    }

    #[test]
    fn from_report() {
        let e: CleanError = report().into();
        assert!(matches!(e, CleanError::Race(_)));
    }
}
