//! # clean-runtime
//!
//! The software-only CLEAN runtime (Section 4 of *"CLEAN: A Race Detector
//! with Cleaner Semantics"*, ISCA 2015): monitored multithreaded execution
//! with precise WAW/RAW race exceptions and Kendo-deterministic
//! synchronization.
//!
//! The paper instruments every potentially shared access with a compiler
//! pass; here, programs perform shared accesses through the checked
//! accessors of [`ThreadCtx`], which exercise the identical run-time code
//! path (epoch load → clock comparison → CAS publication). Shared data
//! lives in an explicit [`SharedArray`]-addressed heap; Rust locals play
//! the role of provably-private registers.
//!
//! The runtime provides the full CLEAN execution model (Section 3.1):
//!
//! * a **race exception** (an `Err(CleanError::Race(..))` that poisons all
//!   threads) is raised if and only if a WAW or RAW race occurs,
//! * SFR isolation and write-atomicity hold for all executions,
//! * exception-free executions are **deterministic** when `det_sync` is
//!   enabled (verify with [`RuntimeStats::digest`]).
//!
//! # Example: a race-free deterministic program
//!
//! ```
//! use clean_runtime::{CleanRuntime, RuntimeConfig, CleanError};
//!
//! let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
//! let data = rt.alloc_array::<u64>(2)?;
//! let m = rt.create_mutex();
//!
//! let total = rt.run(|ctx| {
//!     let m2 = m.clone();
//!     let child = ctx.spawn(move |c| {
//!         c.lock(&m2)?;
//!         let v = c.read(&data, 0)?;
//!         c.write(&data, 0, v + 1)?;
//!         c.unlock(&m2)?;
//!         Ok(())
//!     })?;
//!     ctx.lock(&m)?;
//!     let v = ctx.read(&data, 0)?;
//!     ctx.write(&data, 0, v + 1)?;
//!     ctx.unlock(&m)?;
//!     ctx.join(child)??;
//!     ctx.read(&data, 0)
//! })?;
//! assert_eq!(total, 2);
//! # Ok::<(), CleanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod heap;
mod runtime;
mod rwlock_api;
mod scalar;
mod sync_api;

pub use clean_core::{EventSink, RaceReport};
pub use config::RuntimeConfig;
pub use error::{CleanError, Result};
pub use heap::{SharedArray, SharedHeap};
pub use runtime::{CleanRuntime, JoinHandle, RuntimeStats, ThreadCtx};
pub use rwlock_api::CleanRwLock;
pub use scalar::Scalar;
pub use sync_api::{CleanBarrier, CleanCondvar, CleanMutex};
