//! Property tests for the registry under concurrency: N threads
//! hammering counters and histograms must snapshot to exactly the sum
//! of what was recorded, and the exposition must round-trip it.

use clean_obs::{LogHistogram, Registry, Snapshot};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_increments_snapshot_to_exact_sums(
        threads in 1usize..8,
        per_thread in 1u64..2_000,
        bump in 1u64..5,
    ) {
        let reg = Arc::new(Registry::new());
        let counter = reg.counter("hits");
        let labeled = reg.counter_with("hits_by", &[("class", "hot")]);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let counter = counter.clone();
                let labeled = labeled.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        counter.add(bump);
                        labeled.inc();
                    }
                });
            }
        });
        let want = threads as u64 * per_thread;
        prop_assert_eq!(counter.value(), want * bump);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counters.get("hits").copied(), Some(want * bump));
        prop_assert_eq!(snap.counter("hits_by", &[("class", "hot")]), Some(want));
    }

    #[test]
    fn concurrent_hist_records_match_sequential_merge(
        samples in prop::collection::vec(prop::collection::vec(0u64..1_000_000, 1..200), 1..6),
    ) {
        let reg = Arc::new(Registry::new());
        let hist = reg.hist("lat");
        std::thread::scope(|s| {
            for chunk in &samples {
                let hist = hist.clone();
                s.spawn(move || {
                    for &v in chunk {
                        hist.record(v);
                    }
                });
            }
        });
        let mut expect = LogHistogram::new();
        for chunk in &samples {
            for &v in chunk {
                expect.record(v);
            }
        }
        prop_assert_eq!(hist.snapshot(), expect);
    }

    #[test]
    fn exposition_round_trips_arbitrary_registries(
        counters in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        samples in prop::collection::vec(0u64..10_000_000, 0..64),
    ) {
        let reg = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            reg.counter(&format!("counter_{i}")).add(*v);
        }
        let h = reg.hist_with("lat", &[("verb", "analyze"), ("node", "0")]);
        for &v in &samples {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.render(&["event 0 test detail".to_string()]);
        let parsed = Snapshot::parse(&text).unwrap();
        prop_assert_eq!(parsed, snap);
    }
}
