//! The lock-free sharded metrics registry.
//!
//! Registration (looking a metric up by name) takes a mutex — it is
//! cold, done once per metric per component at startup. The returned
//! handles ([`Counter`], [`Gauge`], [`Hist`]) are `Arc`-backed and
//! update with relaxed atomics only; counters additionally spread their
//! cells over cache-line-padded per-thread shards so concurrent threads
//! neither contend on nor false-share the same lines (the same idiom as
//! the detector's `StatsShard`).

use crate::hist::{LogHistogram, HISTOGRAM_BUCKETS};
use crate::snapshot::{metric_key, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default counter shard count: enough to spread an 8-core working
/// point across distinct cache lines.
pub const DEFAULT_SHARDS: usize = 8;

/// A small dense per-thread index used to pick a shard. Threads get
/// consecutive indices in creation order, so up to `shards` concurrent
/// threads touch distinct cells.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i)
}

/// One cache-line-padded counter cell.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCell(AtomicU64);

#[derive(Debug)]
struct CounterCell {
    shards: Box<[PaddedCell]>,
}

/// A named monotone counter handle. Cloning shares the same cells.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Adds `n` to the calling thread's shard (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        let shards = &self.0.shards;
        shards[thread_shard() & (shards.len() - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value, summed over shards.
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A named gauge handle (a settable instantaneous value).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (for gauges tracking a live count).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero under concurrent underflow.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A named log2 latency histogram handle, the atomic recording variant
/// of [`LogHistogram`]. Buckets are shared atomics — the 64-way spread
/// plus relaxed ordering keeps recording cheap at request granularity.
#[derive(Debug, Clone)]
pub struct Hist(Arc<HistCell>);

impl Hist {
    /// Records one latency sample in microseconds (relaxed).
    #[inline]
    pub fn record(&self, micros: u64) {
        let cell = &*self.0;
        cell.buckets[LogHistogram::bucket(micros)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(micros, Ordering::Relaxed);
        cell.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// A plain-value snapshot (approximate while writers run, exact
    /// once they quiesce).
    pub fn snapshot(&self) -> LogHistogram {
        let cell = &*self.0;
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&cell.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        LogHistogram::from_parts(
            buckets,
            cell.sum.load(Ordering::Relaxed),
            cell.max.load(Ordering::Relaxed),
        )
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Hist),
}

/// The metrics registry: a name → metric map handing out lock-free
/// handles. One registry per serving component (server, router, bench
/// harness); [`crate::global`] offers a process-wide instance for code
/// without a natural owner.
#[derive(Debug)]
pub struct Registry {
    shards: usize,
    metrics: Mutex<BTreeMap<String, Slot>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry whose counters use [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A registry with a custom counter shard count (rounded up to a
    /// power of two, clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        Registry {
            shards: shards.max(1).next_power_of_two(),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn slot(&self, key: String, make: impl FnOnce() -> Slot) -> Slot {
        let mut metrics = self.metrics.lock().expect("registry lock");
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// The counter named `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with `labels` baked into its key.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        let shards = self.shards;
        match self.slot(key.clone(), || {
            Slot::Counter(Counter(Arc::new(CounterCell {
                shards: (0..shards).map(|_| PaddedCell::default()).collect(),
            })))
        }) {
            Slot::Counter(c) => c,
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with `labels` baked into its key.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        match self.slot(key.clone(), || {
            Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            Slot::Gauge(g) => g,
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn hist(&self, name: &str) -> Hist {
        self.hist_with(name, &[])
    }

    /// The histogram named `name` with `labels` baked into its key.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn hist_with(&self, name: &str, labels: &[(&str, &str)]) -> Hist {
        let key = metric_key(name, labels);
        match self.slot(key.clone(), || {
            Slot::Hist(Hist(Arc::new(HistCell {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            })))
        }) {
            Slot::Hist(h) => h,
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// A plain-value snapshot of every registered metric, keyed by the
    /// full `name{label="v"}` strings.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut snap = Snapshot::default();
        for (key, slot) in metrics.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(key.clone(), c.value());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(key.clone(), g.value());
                }
                Slot::Hist(h) => {
                    snap.hists.insert(key.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_key() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        let labeled = reg.counter_with("requests", &[("verb", "submit")]);
        labeled.inc();
        assert_eq!(labeled.value(), 1);
        assert_eq!(a.value(), 7, "labeled key is a distinct metric");
    }

    #[test]
    fn gauge_sets_adds_and_saturates() {
        let reg = Registry::new();
        let g = reg.gauge("conns");
        g.set(5);
        g.add(2);
        g.sub(3);
        assert_eq!(g.value(), 4);
        g.sub(100);
        assert_eq!(g.value(), 0, "sub saturates at zero");
    }

    #[test]
    fn hist_snapshot_matches_plain_recording() {
        let reg = Registry::new();
        let h = reg.hist("lat");
        let mut plain = LogHistogram::new();
        for v in [1u64, 5, 5, 900, 1_000_000] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("hammer");
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), threads * per_thread);
        assert_eq!(
            reg.snapshot().counters.get("hammer"),
            Some(&(threads * per_thread))
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn counter_cells_are_cache_line_padded() {
        assert!(std::mem::align_of::<PaddedCell>() >= 128);
        assert!(std::mem::size_of::<PaddedCell>() >= 128);
    }
}
