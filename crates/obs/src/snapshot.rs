//! Plain-value metric snapshots and the `CMET v1` text exposition.
//!
//! A [`Snapshot`] is what a registry looks like with the atomics
//! stripped out: three ordered maps keyed by the full metric key
//! (`name` or `name{k="v",k2="v2"}` with labels sorted by key). It
//! renders to and parses from a line-oriented text grammar so the
//! router can merge backend expositions without sharing code or
//! memory with them:
//!
//! ```text
//! # CMET v1
//! counter serve_requests_total{verb="submit"} 42
//! gauge store_bytes 65536
//! hist serve_latency_micros{verb="analyze"} sum=1234 max=900 buckets=0:1,9:2
//! # event 17 failover backend=2 digest=ab12
//! ```
//!
//! Lines starting with `#` are comments (the header and journal events
//! travel as comments), so `parse(render(s)) == s` while journal text
//! rides along merge-safely.

use crate::hist::{LogHistogram, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The exposition header line; the version bumps on grammar changes.
pub const EXPOSITION_HEADER: &str = "# CMET v1";

/// Strips characters that would corrupt the line grammar out of a
/// label value: whitespace, quotes, braces, commas, and equals signs
/// are dropped. Call on any value not known to be clean (addresses and
/// digests are; free-form strings are not).
pub fn sanitize_label(value: &str) -> String {
    value
        .chars()
        .filter(|c| !c.is_whitespace() && !matches!(c, '"' | '{' | '}' | ',' | '='))
        .collect()
}

/// Builds the canonical metric key for `name` plus `labels`: labels
/// are sorted by key and baked into the string, so equal metrics have
/// equal keys across processes.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

/// Splits a metric key into its name and label list. The empty label
/// list is returned for bare names; malformed keys come back as-is
/// with no labels (keys are produced by [`metric_key`], so this is a
/// defensive path, not an expected one).
fn split_key(key: &str) -> (&str, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key, Vec::new());
    };
    let Some(stripped) = key[brace..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    else {
        return (key, Vec::new());
    };
    let mut labels = Vec::new();
    for pair in stripped.split(',').filter(|p| !p.is_empty()) {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        let v = v.trim_matches('"');
        labels.push((k.to_string(), v.to_string()));
    }
    (&key[..brace], labels)
}

/// An error from [`Snapshot::parse`]: the offending line number
/// (1-based) and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A plain-value view of a registry at one instant: counters, gauges,
/// and histograms keyed by their full `name{label="v"}` strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotone counters by metric key.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by metric key.
    pub gauges: BTreeMap<String, u64>,
    /// Latency histograms by metric key.
    pub hists: BTreeMap<String, LogHistogram>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge element-wise. Adding gauges is the right fleet semantics
    /// for the sizes we expose (bytes and entries held per node).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Returns a copy with `key="value"` added to every metric that
    /// does not already carry a `key` label. Existing `key` labels are
    /// preserved, so a router can stamp `node="3"` onto a backend
    /// snapshot without clobbering labels the backend set itself.
    pub fn with_label(&self, key: &str, value: &str) -> Snapshot {
        let relabel = |metric_key_str: &str| -> String {
            let (name, labels) = split_key(metric_key_str);
            if labels.iter().any(|(k, _)| k == key) {
                return metric_key_str.to_string();
            }
            let mut all: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            all.push((key, value));
            metric_key(name, &all)
        };
        let mut out = Snapshot::default();
        for (k, v) in &self.counters {
            out.counters.insert(relabel(k), *v);
        }
        for (k, v) in &self.gauges {
            out.gauges.insert(relabel(k), *v);
        }
        for (k, h) in &self.hists {
            out.hists.insert(relabel(k), h.clone());
        }
        out
    }

    /// Looks up a counter by name and unsorted labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&metric_key(name, labels)).copied()
    }

    /// Looks up a histogram by name and unsorted labels.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogHistogram> {
        self.hists.get(&metric_key(name, labels))
    }

    /// Sums every counter whose key starts with `name` (bare or with
    /// any label set) — the cross-label total of one metric family.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(name) && k[name.len()..].starts_with('{'))
            .map(|(_, v)| v)
            .sum()
    }

    /// Renders the `CMET v1` text exposition: the header, then one
    /// line per metric in key order. `extra_comments` (journal events,
    /// typically) are appended as `# `-prefixed lines.
    pub fn render(&self, extra_comments: &[String]) -> String {
        let mut out = String::new();
        out.push_str(EXPOSITION_HEADER);
        out.push('\n');
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} {v}");
        }
        for (k, h) in &self.hists {
            let _ = write!(
                out,
                "hist {k} sum={} max={} buckets=",
                h.sum_micros(),
                h.max_micros()
            );
            let mut first = true;
            for (i, &n) in h.bucket_counts().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{i}:{n}");
            }
            out.push('\n');
        }
        for c in extra_comments {
            let _ = writeln!(out, "# {c}");
        }
        out
    }

    /// Parses a `CMET v1` exposition. Comment lines (including journal
    /// events) and blank lines are skipped; the header is required.
    pub fn parse(text: &str) -> Result<Snapshot, ParseError> {
        let err = |line: usize, message: &str| ParseError {
            line,
            message: message.to_string(),
        };
        let mut snap = Snapshot::default();
        let mut saw_header = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if comment.trim().starts_with("CMET ") {
                    if comment.trim() != "CMET v1" {
                        return Err(err(lineno, "unsupported CMET version"));
                    }
                    saw_header = true;
                }
                continue;
            }
            if !saw_header {
                return Err(err(lineno, "missing `# CMET v1` header"));
            }
            let mut parts = line.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let key = parts
                .next()
                .ok_or_else(|| err(lineno, "missing metric key"))?;
            let rest = parts.next().ok_or_else(|| err(lineno, "missing value"))?;
            match kind {
                "counter" | "gauge" => {
                    let v: u64 = rest
                        .trim()
                        .parse()
                        .map_err(|_| err(lineno, "value is not a u64"))?;
                    let map = if kind == "counter" {
                        &mut snap.counters
                    } else {
                        &mut snap.gauges
                    };
                    map.insert(key.to_string(), v);
                }
                "hist" => {
                    let mut sum = None;
                    let mut max = None;
                    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                    for field in rest.split_whitespace() {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| err(lineno, "hist field is not k=v"))?;
                        match k {
                            "sum" => {
                                sum = Some(v.parse().map_err(|_| err(lineno, "bad hist sum"))?);
                            }
                            "max" => {
                                max = Some(v.parse().map_err(|_| err(lineno, "bad hist max"))?);
                            }
                            "buckets" => {
                                for pair in v.split(',').filter(|p| !p.is_empty()) {
                                    let (i, n) = pair
                                        .split_once(':')
                                        .ok_or_else(|| err(lineno, "bucket is not i:n"))?;
                                    let i: usize =
                                        i.parse().map_err(|_| err(lineno, "bad bucket index"))?;
                                    if i >= HISTOGRAM_BUCKETS {
                                        return Err(err(lineno, "bucket index out of range"));
                                    }
                                    buckets[i] =
                                        n.parse().map_err(|_| err(lineno, "bad bucket count"))?;
                                }
                            }
                            _ => return Err(err(lineno, "unknown hist field")),
                        }
                    }
                    let sum = sum.ok_or_else(|| err(lineno, "hist missing sum"))?;
                    let max = max.ok_or_else(|| err(lineno, "hist missing max"))?;
                    snap.hists
                        .insert(key.to_string(), LogHistogram::from_parts(buckets, sum, max));
                }
                _ => return Err(err(lineno, "unknown metric kind")),
            }
        }
        if !saw_header {
            return Err(err(1, "missing `# CMET v1` header"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters
            .insert(metric_key("requests", &[("verb", "submit")]), 42);
        s.counters.insert("bad_frames".to_string(), 3);
        s.gauges.insert("store_bytes".to_string(), 65536);
        let mut h = LogHistogram::new();
        for v in [1u64, 5, 900, 1_000_000] {
            h.record(v);
        }
        s.hists.insert(metric_key("lat", &[("verb", "analyze")]), h);
        s
    }

    #[test]
    fn render_parse_round_trips() {
        let s = sample();
        let text = s.render(&["event 7 failover backend=2".to_string()]);
        assert!(text.starts_with(EXPOSITION_HEADER));
        assert!(text.contains("# event 7 failover"));
        let parsed = Snapshot::parse(&text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn merge_adds_counters_and_folds_hists() {
        let a = sample();
        let mut b = sample();
        b.merge(&a);
        assert_eq!(b.counter("requests", &[("verb", "submit")]), Some(84));
        assert_eq!(b.gauges["store_bytes"], 131072);
        let h = b.hist("lat", &[("verb", "analyze")]).unwrap();
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn with_label_only_adds_when_absent() {
        let s = sample().with_label("node", "2");
        assert_eq!(
            s.counter("requests", &[("node", "2"), ("verb", "submit")]),
            Some(42)
        );
        assert_eq!(s.counter("bad_frames", &[("node", "2")]), Some(3));
        // A second stamp with a different value must not clobber.
        let again = s.with_label("node", "router");
        assert_eq!(
            again.counter("requests", &[("node", "2"), ("verb", "submit")]),
            Some(42)
        );
    }

    #[test]
    fn family_total_sums_across_labels() {
        let mut s = sample();
        s.counters
            .insert(metric_key("requests", &[("verb", "analyze")]), 8);
        s.counters.insert("requests_other".to_string(), 999);
        assert_eq!(s.counter_family_total("requests"), 50);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse("counter x 1").is_err(), "no header");
        assert!(Snapshot::parse("# CMET v2\ncounter x 1").is_err());
        let bad = format!("{EXPOSITION_HEADER}\ncounter x notanum");
        assert!(Snapshot::parse(&bad).is_err());
        let bad = format!("{EXPOSITION_HEADER}\nhist h sum=1 buckets=0:1");
        assert!(Snapshot::parse(&bad).is_err(), "hist missing max");
        let bad = format!("{EXPOSITION_HEADER}\nhist h sum=1 max=1 buckets=64:1");
        assert!(Snapshot::parse(&bad).is_err(), "bucket out of range");
        let ok = format!("{EXPOSITION_HEADER}\n\n# comment\n");
        assert_eq!(Snapshot::parse(&ok).unwrap(), Snapshot::default());
    }

    #[test]
    fn sanitize_strips_grammar_characters() {
        assert_eq!(sanitize_label("ab12"), "ab12");
        assert_eq!(sanitize_label("a b\"c{d}e,f=g"), "abcdefg");
    }

    #[test]
    fn metric_key_sorts_labels() {
        assert_eq!(
            metric_key("m", &[("z", "1"), ("a", "2")]),
            "m{a=\"2\",z=\"1\"}"
        );
        assert_eq!(metric_key("m", &[]), "m");
    }
}
