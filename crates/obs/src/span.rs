//! Knob-gated timing spans over the hot pipeline stages.
//!
//! A [`StageSpans`] bundle owns one histogram per [`Stage`]. When the
//! observability knob is off the bundle is simply not constructed and
//! every call site pays a single `Option` branch — the same soundness
//! argument as the detector's `write_filter` knob: the off path is
//! byte-for-byte the pre-obs code plus one predictable branch.
//!
//! ```
//! use clean_obs::{Registry, Stage, StageSpans};
//! let reg = Registry::new();
//! let spans = Some(StageSpans::new(&reg, "serve_stage_micros"));
//! {
//!     let _span = spans.as_ref().map(|s| s.start(Stage::Decode));
//!     // ... decode work; drop records elapsed micros ...
//! }
//! assert_eq!(reg.snapshot().hists.len(), Stage::ALL.len());
//! ```

use crate::registry::{Hist, Registry};
use std::time::Instant;

/// The hot pipeline stages a serving node times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Frame + body decode off the socket.
    Decode,
    /// Digest-based shard/backend selection.
    Shard,
    /// The race-check run itself.
    Check,
    /// Verdict construction and caching.
    Verdict,
    /// Trace insertion into the store.
    StoreInsert,
    /// Fetching a trace from a peer node.
    PeerFetch,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Decode,
        Stage::Shard,
        Stage::Check,
        Stage::Verdict,
        Stage::StoreInsert,
        Stage::PeerFetch,
    ];

    /// The stable label value for this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Shard => "shard",
            Stage::Check => "check",
            Stage::Verdict => "verdict",
            Stage::StoreInsert => "store_insert",
            Stage::PeerFetch => "peer_fetch",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::Shard => 1,
            Stage::Check => 2,
            Stage::Verdict => 3,
            Stage::StoreInsert => 4,
            Stage::PeerFetch => 5,
        }
    }
}

/// Pre-registered per-stage histograms. Construct once (when the obs
/// knob is on) and clone freely — handles share cells.
#[derive(Debug, Clone)]
pub struct StageSpans {
    hists: [Hist; 6],
}

impl StageSpans {
    /// Registers one histogram per stage under `metric`, labeled
    /// `stage="<name>"`.
    pub fn new(registry: &Registry, metric: &str) -> Self {
        StageSpans {
            hists: Stage::ALL.map(|s| registry.hist_with(metric, &[("stage", s.name())])),
        }
    }

    /// Starts timing `stage`; the elapsed microseconds are recorded
    /// when the returned [`Span`] drops (or on [`Span::finish`]).
    #[inline]
    pub fn start(&self, stage: Stage) -> Span {
        Span {
            hist: self.hists[stage.index()].clone(),
            started: Instant::now(),
            done: false,
        }
    }

    /// Records an externally measured duration for `stage` — for call
    /// sites that already hold a timing and don't want a guard value.
    #[inline]
    pub fn record_micros(&self, stage: Stage, micros: u64) {
        self.hists[stage.index()].record(micros);
    }
}

/// A live span; records into its stage histogram exactly once, on
/// [`finish`](Span::finish) or drop.
#[derive(Debug)]
pub struct Span {
    hist: Hist,
    started: Instant,
    done: bool,
}

impl Span {
    /// Ends the span now and records the elapsed microseconds.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            self.hist
                .record(self.started.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_and_finish_once() {
        let reg = Registry::new();
        let spans = StageSpans::new(&reg, "stage_micros");
        {
            let _s = spans.start(Stage::Decode);
        }
        spans.start(Stage::Decode).finish();
        spans.record_micros(Stage::Check, 50);
        let snap = reg.snapshot();
        assert_eq!(
            snap.hist("stage_micros", &[("stage", "decode")])
                .unwrap()
                .count(),
            2
        );
        let check = snap.hist("stage_micros", &[("stage", "check")]).unwrap();
        assert_eq!(check.count(), 1);
        assert_eq!(check.max_micros(), 50);
        // Unused stages exist (pre-registered) but are empty.
        assert_eq!(
            snap.hist("stage_micros", &[("stage", "peer_fetch")])
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn stage_names_are_distinct() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
