//! Unified observability for the CLEAN stack.
//!
//! One crate, four pieces, shared by the detector runtime, the serving
//! daemon, the fleet router, and the bench harnesses:
//!
//! - [`Registry`] — a name-keyed metrics registry handing out lock-free
//!   [`Counter`] / [`Gauge`] / [`Hist`] handles. Counters spread over
//!   cache-line-padded per-thread shards (the detector's `StatsShard`
//!   idiom, generalized); registration is mutex-cold, updates are
//!   relaxed atomics.
//! - [`StageSpans`] — knob-gated timing spans over the hot pipeline
//!   stages ([`Stage`]). Off means not constructed: call sites pay one
//!   `Option` branch, nothing else.
//! - [`Journal`] — a bounded ring of notable events (evictions,
//!   failovers, bad frames), exposed as comment lines in the text
//!   exposition.
//! - [`Snapshot`] — plain values rendered to / parsed from the
//!   `CMET v1` text exposition ([`EXPOSITION_HEADER`]), with
//!   [`Snapshot::merge`] and [`Snapshot::with_label`] so a router can
//!   fan out METRICS to its backends and fold the answers under `node`
//!   labels.
//!
//! The canonical log2 latency histogram ([`LogHistogram`]) lives here
//! too, promoted from the soak harness so every layer shares one
//! quantile convention.

#![warn(missing_docs)]

mod hist;
mod journal;
mod registry;
mod snapshot;
mod span;

pub use hist::{LogHistogram, HISTOGRAM_BUCKETS};
pub use journal::{Event, Journal, DEFAULT_JOURNAL_CAP};
pub use registry::{Counter, Gauge, Hist, Registry, DEFAULT_SHARDS};
pub use snapshot::{metric_key, sanitize_label, ParseError, Snapshot, EXPOSITION_HEADER};
pub use span::{Span, Stage, StageSpans};

use std::sync::OnceLock;

/// The process-wide registry, for code without a natural owner to hang
/// a registry on (library-level warnings like `plan_stale`). Serving
/// components should own their registry instead and merge this one in
/// at exposition time.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
