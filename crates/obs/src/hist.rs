//! The canonical log2 latency histogram of the CLEAN stack.
//!
//! Promoted from the soak harness so every layer — serve, router,
//! benches — shares one histogram shape with one quantile convention:
//! a reported quantile is its bucket's inclusive upper bound clamped to
//! the observed maximum, i.e. conservative, never optimistic.

/// Bucket count of [`LogHistogram`] — one bucket per power of two of
/// microseconds, so bucket 63 absorbs everything above ~292 years.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 latency histogram over microseconds.
///
/// `record(v)` lands `v` in bucket `floor(log2(max(v, 1)))`; a quantile
/// is answered as its bucket's inclusive upper bound, clamped to the
/// true observed maximum. Merging is element-wise addition, so worker
/// threads keep private histograms and a harness folds them at the
/// end without locks. The atomic recording variant lives in the
/// registry ([`Hist`](crate::Hist)) and snapshots into this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index for a sample: `floor(log2(max(v, 1)))`, so
    /// 0..=1 µs → bucket 0, 2..=3 → 1, and so on.
    pub fn bucket(micros: u64) -> usize {
        63 - (micros | 1).leading_zeros() as usize
    }

    /// Rebuilds a histogram from its parts (the exposition parse path).
    /// The sample count is recomputed from the buckets, which is exact:
    /// every recorded sample lands in exactly one bucket.
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS], sum: u64, max: u64) -> Self {
        LogHistogram {
            count: buckets.iter().sum(),
            buckets,
            sum,
            max,
        }
    }

    /// Per-bucket sample counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Records one latency sample.
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::bucket(micros)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max
    }

    /// Arithmetic-mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a conservative upper bound in
    /// microseconds: the inclusive top of the first bucket whose
    /// cumulative count reaches `ceil(q * count)`, clamped to the true
    /// maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_micros(), 1000);
        // p100 is clamped to the observed max, not the bucket top.
        assert_eq!(h.quantile(1.0), 1000);
        // The median sample (3) lives in bucket [2, 3].
        assert_eq!(h.quantile(0.5), 3);
        // Every quantile is >= the true value at that rank.
        assert!(h.quantile(0.8) >= 100);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..50 {
            a.record(v);
        }
        for v in 50..100 {
            b.record(v * 100);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.max_micros(), 99 * 100);
        assert!(a.quantile(0.99) >= b.quantile(0.5));
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 7, 4096, 123_456] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_parts(*h.bucket_counts(), h.sum_micros(), h.max_micros());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.mean_micros(), h.mean_micros());
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 0);
        assert_eq!(LogHistogram::bucket(2), 1);
        assert_eq!(LogHistogram::bucket(3), 1);
        assert_eq!(LogHistogram::bucket(4), 2);
        assert_eq!(LogHistogram::bucket(u64::MAX), 63);
    }
}
