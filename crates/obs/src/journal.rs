//! A bounded ring-buffer journal of notable events.
//!
//! The journal keeps the last N events (evictions, failovers, bad
//! frames, suppression hits, load sheds) with a monotonic sequence
//! number, for post-mortem inspection through the METRICS exposition —
//! events render as `# event <seq> <kind> <detail>` comment lines, so
//! a parser merging expositions skips them for free.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default journal capacity.
pub const DEFAULT_JOURNAL_CAP: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Stable event kind, e.g. `eviction`, `failover`, `bad_frame`.
    pub kind: &'static str,
    /// Free-form detail; newlines are replaced with spaces on render.
    pub detail: String,
}

/// The bounded event journal. Recording takes a short mutex — events
/// are rare (evictions, failovers) so this is nowhere near a hot path.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    events: VecDeque<Event>,
    cap: usize,
    next_seq: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAP)
    }
}

impl Journal {
    /// A journal holding the last `cap` events (clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        Journal {
            inner: Mutex::new(JournalInner {
                events: VecDeque::new(),
                cap: cap.max(1),
                next_seq: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, detail: String) {
        let mut inner = self.inner.lock().expect("journal lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == inner.cap {
            inner.events.pop_front();
        }
        inner.events.push_back(Event { seq, kind, detail });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("journal lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Total events ever recorded (retained or evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("journal lock").next_seq
    }

    /// Renders the retained events as exposition comment bodies:
    /// `event <seq> <kind> <detail>` (the `# ` prefix is added by
    /// [`Snapshot::render`](crate::Snapshot::render)).
    pub fn render(&self) -> Vec<String> {
        self.events()
            .iter()
            .map(|e| {
                format!(
                    "event {} {} {}",
                    e.seq,
                    e.kind,
                    e.detail.replace(['\n', '\r'], " ")
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record("eviction", format!("digest={i}"));
        }
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(j.recorded(), 5);
        let lines = j.render();
        assert_eq!(lines[0], "event 2 eviction digest=2");
    }

    #[test]
    fn render_flattens_newlines() {
        let j = Journal::new(4);
        j.record("bad_frame", "line1\nline2".to_string());
        assert_eq!(j.render()[0], "event 0 bad_frame line1 line2");
    }
}
