//! # clean-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! CLEAN paper's evaluation (Section 6). Each experiment is a binary:
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Sec. 6.2.2 detection & determinism | `sec622_detection` |
//! | Figure 6 software-only CLEAN slowdown | `fig6_software_overhead` |
//! | Figure 7 shared-access frequency | `fig7_shared_access_freq` |
//! | Figure 8 vectorization impact | `fig8_vectorization` |
//! | Table 1 clock rollover | `table1_rollover` |
//! | Figure 9 hardware detection slowdown | `fig9_hw_overhead` |
//! | Figure 10 access breakdown | `fig10_access_breakdown` |
//! | Figure 11 epoch-size designs | `fig11_epoch_size` |
//!
//! Environment knobs (the host here is much smaller than the paper's
//! dual-socket Xeon): `CLEAN_THREADS` (default 4), `CLEAN_SCALE`
//! (`native`/`simlarge`/`simsmall`, default `simsmall`), `CLEAN_REPS`
//! (timed repetitions, default 2), `CLEAN_RUNS` (Sec 6.2.2 repetitions,
//! default 10; the paper uses 100), `CLEAN_SIM_ACCESSES` (simulated
//! shared accesses per thread, default 12000), `CLEAN_TRACE_DIR` (the
//! persistent trace store experiments record into and replay from,
//! default `target/traces`).

#![warn(missing_docs)]

pub mod soak;

use clean_core::TraceEvent;
use clean_trace::{read_trace, record_kernel_trace, RecordOptions};
use clean_workloads::Scale;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Reads the worker-thread count (`CLEAN_THREADS`, default 4).
pub fn env_threads() -> usize {
    std::env::var("CLEAN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Reads the input scale (`CLEAN_SCALE`, default simsmall).
pub fn env_scale() -> Scale {
    match std::env::var("CLEAN_SCALE").as_deref() {
        Ok("native") => Scale::Native,
        Ok("simlarge") => Scale::SimLarge,
        _ => Scale::SimSmall,
    }
}

/// Reads the timed-repetition count (`CLEAN_REPS`, default 2).
pub fn env_reps() -> usize {
    std::env::var("CLEAN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(1)
}

/// Reads the Sec 6.2.2 run count (`CLEAN_RUNS`, default 10).
pub fn env_runs() -> usize {
    std::env::var("CLEAN_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

/// Reads the per-thread simulated access count (`CLEAN_SIM_ACCESSES`,
/// default 40000 — large enough that metadata working sets stress the
/// simulated caches like the paper's simsmall inputs do).
pub fn env_sim_accesses() -> u64 {
    std::env::var("CLEAN_SIM_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

/// The persistent trace store directory (`CLEAN_TRACE_DIR`, default
/// `target/traces` under the workspace root, regardless of the working
/// directory cargo hands test and bench binaries).
pub fn trace_dir() -> PathBuf {
    std::env::var_os("CLEAN_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/traces"))
}

/// Returns the stored execution trace of workload `name`, recording it
/// into the trace store on first use and replaying the stored file on
/// every later run — experiments re-analyze one fixed interleaving
/// instead of regenerating it. A missing or unreadable (truncated,
/// corrupted) store entry is transparently re-recorded.
///
/// # Panics
///
/// Panics if the workload is unknown or the store is not writable.
pub fn cached_kernel_trace(name: &str, opts: &RecordOptions) -> Vec<TraceEvent> {
    cached_kernel_trace_in(&trace_dir(), name, opts)
}

/// [`cached_kernel_trace`] against an explicit store directory.
///
/// # Panics
///
/// Panics if the workload is unknown or the store is not writable.
pub fn cached_kernel_trace_in(dir: &Path, name: &str, opts: &RecordOptions) -> Vec<TraceEvent> {
    let racy = if opts.racy { "-racy" } else { "" };
    let path = dir.join(format!(
        "{name}-t{}-s{}{racy}.cltr",
        opts.threads, opts.seed
    ));
    if let Ok(events) = read_trace(&path) {
        return events;
    }
    std::fs::create_dir_all(dir).expect("create trace store directory");
    record_kernel_trace(name, &path, opts).expect("record workload trace");
    read_trace(&path).expect("read back freshly recorded trace")
}

/// Times `f` over `reps` repetitions and returns the minimum duration and
/// the last result.
pub fn measure<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// A fixed-width text table writer for the experiment binaries.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = widths[0]));
                } else {
                    out.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a slowdown factor like the paper ("7.8x").
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_trace_records_once_and_replays() {
        let dir = std::env::temp_dir().join(format!("clean-bench-store-{}", std::process::id()));
        // Pid reuse can resurrect a stale dir from a killed run; start
        // from a known-empty store or the entry counts below lie.
        std::fs::remove_dir_all(&dir).ok();
        let opts = RecordOptions {
            threads: 2,
            racy: true,
            seed: 5,
        };
        let first = cached_kernel_trace_in(&dir, "dedup", &opts);
        assert!(!first.is_empty());
        let stored = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(stored, 1);
        // Second call must replay the stored file, not re-record.
        let again = cached_kernel_trace_in(&dir, "dedup", &opts);
        assert_eq!(first, again);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // A corrupted store entry is re-recorded transparently.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        std::fs::write(entry.path(), b"CLTR\x01garbage").unwrap();
        let healed = cached_kernel_trace_in(&dir, "dedup", &opts);
        assert_eq!(first, healed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geomean_of_powers() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn measure_returns_result() {
        let (d, v) = measure(3, || 42);
        assert_eq!(v, 42);
        assert!(d <= Duration::from_secs(1));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "slowdown"]);
        t.row(vec!["lu_cb".into(), "22.00x".into()]);
        t.row(vec!["blackscholes".into(), "1.50x".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("lu_cb"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic]
    fn table_rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_x(7.8), "7.80x");
        assert_eq!(fmt_pct(0.104), "10.4%");
    }
}
