//! Building blocks for the `bench_soak` mixed-traffic soak harness.
//!
//! Everything here is in-repo on purpose — the soak run needs a latency
//! histogram, a seedable random stream, a traffic-mix sampler, and a
//! synthetic trace generator, and pulling an external crate in for any
//! of them would couple the SLO gates to code the repo does not
//! control.
//!
//! * [`LogHistogram`] — re-exported from `clean-obs`, where the
//!   original soak histogram now lives as the stack-wide canonical
//!   shape: fixed 64-bucket log2 over microsecond latencies, mergeable
//!   across worker threads, quantiles answered as bucket upper bounds
//!   (so a reported p99 is conservative, never optimistic).
//! * [`SplitMix64`] — the classic 64-bit mixing PRNG; one `u64` of state,
//!   deterministic, good enough to schedule traffic.
//! * [`OpClass`] / [`TrafficMix`] — the five soak operation classes and
//!   a weighted sampler over them.
//! * [`synth_events`] / [`synth_trace`] — seed-addressed synthetic
//!   traces: every distinct seed yields a distinct digest, and the racy
//!   flag decides whether the two threads collide.
//!
//! Seeds come from `CLEAN_TEST_SEED` (see [`env_seed`]) so a failing
//! soak prints a one-line repro that replays the exact same schedule.

use clean_core::{ThreadId, TraceEvent};
use clean_trace::encode_trace;

pub use clean_obs::{LogHistogram, HISTOGRAM_BUCKETS};

/// Reads the soak/test base seed (`CLEAN_TEST_SEED`, else `default`).
pub fn env_seed(default: u64) -> u64 {
    std::env::var("CLEAN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// SplitMix64: Steele, Lea & Flood's statistically solid one-word PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n,
        // irrelevant for traffic scheduling.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// The five operation classes a soak worker schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// ANALYZE of an already-stored corpus digest (cache-hot path).
    HotAnalyze,
    /// SUBMIT of a never-seen synthetic trace, then its first ANALYZE.
    ColdSubmit,
    /// Re-SUBMIT of a corpus trace the store already holds.
    DupSubmit,
    /// A deliberately malformed frame: bad magic / version / lying
    /// length / truncated body — the server must answer BAD_FRAME or
    /// hang up, never wedge.
    BadFrame,
    /// A half-written frame header followed by silence: the server's
    /// I/O timeout must reap the connection.
    SlowLoris,
}

impl OpClass {
    /// Every class, in weight order of [`TrafficMix::default`].
    pub const ALL: [OpClass; 5] = [
        OpClass::HotAnalyze,
        OpClass::ColdSubmit,
        OpClass::DupSubmit,
        OpClass::BadFrame,
        OpClass::SlowLoris,
    ];

    /// Stable snake_case label, used in stats output and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::HotAnalyze => "hot_analyze",
            OpClass::ColdSubmit => "cold_submit",
            OpClass::DupSubmit => "dup_submit",
            OpClass::BadFrame => "bad_frame",
            OpClass::SlowLoris => "slow_loris",
        }
    }
}

/// Weighted sampler over [`OpClass::ALL`].
#[derive(Debug, Clone)]
pub struct TrafficMix {
    /// Per-class weights, indexed like [`OpClass::ALL`].
    pub weights: [u32; 5],
}

impl Default for TrafficMix {
    /// The soak default: mostly cache-hot reads, a steady trickle of
    /// cold uploads and duplicates, occasional hostile clients.
    fn default() -> Self {
        TrafficMix {
            weights: [60, 20, 12, 6, 2],
        }
    }
}

impl TrafficMix {
    /// Samples one class proportionally to the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn pick(&self, rng: &mut SplitMix64) -> OpClass {
        let total: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "empty traffic mix");
        let mut roll = rng.below(total);
        for (class, &w) in OpClass::ALL.iter().zip(&self.weights) {
            let w = u64::from(w);
            if roll < w {
                return *class;
            }
            roll -= w;
        }
        unreachable!("roll < total")
    }
}

/// Synthetic two-thread event sequence addressed by `seed`: the seed is
/// folded into the address base, so distinct seeds produce distinct
/// digests. `racy` makes both threads hammer the same four words with
/// no synchronization (guaranteed WAW races); otherwise each thread
/// stays in its own page and the trace is clean.
pub fn synth_events(seed: u64, racy: bool) -> Vec<TraceEvent> {
    // 24 seed bits spread over word-aligned bases keeps addresses well
    // inside usize on every platform while separating seeds by 4 KiB.
    let base = 0x10_0000 + ((seed & 0xff_ffff) as usize) * 0x1000;
    let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
    let mut events = Vec::with_capacity(64);
    for i in 0..32usize {
        let off = 8 * (i % 4);
        if racy {
            // Alternate the writer per *round* of four words — per-event
            // alternation would pin each word to one thread (i % 2 and
            // i % 4 share parity) and race nothing.
            let tid = if (i / 4) % 2 == 0 { t0 } else { t1 };
            events.push(TraceEvent::Write {
                tid,
                addr: base + off,
                size: 8,
            });
        } else {
            events.push(TraceEvent::Write {
                tid: t0,
                addr: base + off,
                size: 8,
            });
            events.push(TraceEvent::Write {
                tid: t1,
                addr: base + 0x800 + off,
                size: 8,
            });
        }
    }
    events
}

/// [`synth_events`] encoded as `CLTR` bytes ready to SUBMIT.
///
/// # Panics
///
/// Panics only if trace encoding itself is broken.
pub fn synth_trace(seed: u64, racy: bool) -> Vec<u8> {
    encode_trace(&synth_events(seed, racy)).expect("encode synthetic trace")
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_trace::{digest_events, replay_sharded, EngineKind};

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        for _ in 0..100 {
            assert!(c.below(10) < 10);
        }
    }

    #[test]
    fn histogram_quantiles_are_conservative_upper_bounds() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_micros(), 1000);
        // p100 is clamped to the observed max, not the bucket top.
        assert_eq!(h.quantile(1.0), 1000);
        // The median sample (3) lives in bucket [2, 3].
        assert_eq!(h.quantile(0.5), 3);
        // Every quantile is >= the true value at that rank.
        assert!(h.quantile(0.8) >= 100);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..50 {
            a.record(v);
        }
        for v in 50..100 {
            b.record(v * 100);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.max_micros(), 99 * 100);
        assert!(a.quantile(0.99) >= b.quantile(0.5));
    }

    #[test]
    fn traffic_mix_respects_zero_weights() {
        let mix = TrafficMix {
            weights: [0, 0, 1, 0, 0],
        };
        let mut rng = SplitMix64::new(1);
        for _ in 0..50 {
            assert_eq!(mix.pick(&mut rng), OpClass::DupSubmit);
        }
    }

    #[test]
    fn traffic_mix_hits_every_weighted_class() {
        let mix = TrafficMix::default();
        let mut rng = SplitMix64::new(42);
        let mut hit = [false; 5];
        for _ in 0..5000 {
            let class = mix.pick(&mut rng);
            hit[OpClass::ALL.iter().position(|&c| c == class).unwrap()] = true;
        }
        assert_eq!(hit, [true; 5], "5000 draws must hit all five classes");
    }

    #[test]
    fn synth_traces_digest_by_seed_and_race_by_flag() {
        let racy = synth_events(1, true);
        let clean = synth_events(1, false);
        assert_ne!(digest_events(&racy), digest_events(&clean));
        assert_ne!(
            digest_events(&synth_events(1, true)),
            digest_events(&synth_events(2, true)),
            "distinct seeds must yield distinct digests"
        );
        assert_eq!(
            digest_events(&synth_events(3, true)),
            digest_events(&synth_events(3, true)),
            "same seed must be reproducible"
        );
        assert!(!replay_sharded(&racy, EngineKind::Clean, 2).is_empty());
        assert!(replay_sharded(&clean, EngineKind::Clean, 2).is_empty());
    }
}
