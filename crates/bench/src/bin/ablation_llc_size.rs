//! Ablation — line compaction vs LLC capacity.
//!
//! DESIGN.md calls out CLEAN's compact/expanded metadata organization
//! (Section 5.3) as the design choice that keeps metadata pressure at
//! 1:1 instead of 4:1. This sweep shrinks the shared L3 from the paper's
//! 16 MB downwards and measures CLEAN vs the uncompacted 4-byte-epoch
//! design on an LLC-heavy benchmark: the smaller the cache, the more the
//! compaction matters — the gap should widen monotonically.

use clean_bench::{env_sim_accesses, fmt_pct, Table};
use clean_sim::{EpochMode, HierarchyConfig, Machine, MachineConfig};
use clean_workloads::{benchmark, generate_trace, TraceGenConfig};

fn main() {
    let cfg = TraceGenConfig {
        accesses_per_thread: env_sim_accesses(),
        ..TraceGenConfig::default()
    };
    let bench = std::env::args().nth(1).unwrap_or_else(|| "lu_cb".into());
    let profile = benchmark(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench:?}");
        std::process::exit(1);
    });
    println!("== Ablation: metadata compaction vs LLC size ({bench}) ==\n");
    let trace = generate_trace(profile, &cfg);

    let mut t = Table::new(&[
        "L3 size",
        "CLEAN slowdown",
        "4B-epoch slowdown",
        "compaction saves",
    ]);
    let mut gaps = Vec::new();
    for mb in [16usize, 8, 4, 2, 1] {
        let h = HierarchyConfig::paper().with_l3_size(mb * 1024 * 1024);
        let run = |detection| {
            let mc = MachineConfig {
                hierarchy: h,
                detection,
                ..MachineConfig::baseline()
            };
            Machine::new(mc).run(&trace).cycles
        };
        let base = run(None);
        let clean = run(Some(EpochMode::CleanCompact)) as f64 / base as f64 - 1.0;
        let fixed4 = run(Some(EpochMode::Fixed4B)) as f64 / base as f64 - 1.0;
        gaps.push(fixed4 - clean);
        t.row(vec![
            format!("{mb} MB"),
            fmt_pct(clean),
            fmt_pct(fixed4),
            fmt_pct(fixed4 - clean),
        ]);
    }
    t.print();
    let max_gap = gaps.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\ncompaction saves up to {} of execution time. The saving grows as the\n\
         LLC shrinks until even CLEAN's 1:1 metadata no longer fits — at that\n\
         point both designs thrash and the relative gap narrows (both effects\n\
         are visible above).",
        fmt_pct(max_gap)
    );
}
