//! Runs every experiment of the evaluation in sequence (Section 6),
//! writing each one's report to stdout. Equivalent to invoking the
//! individual binaries by hand.
//!
//! Run with: `cargo run --release -p clean-bench --bin run_all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "sec622_detection",
    "fig6_software_overhead",
    "fig7_shared_access_freq",
    "fig8_vectorization",
    "table1_rollover",
    "fig9_hw_overhead",
    "fig10_access_breakdown",
    "fig11_epoch_size",
    "ablation_locking",
    "ablation_llc_size",
];

fn main() {
    let me = std::env::current_exe().expect("current executable path");
    let dir = me.parent().expect("executable directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n######################################################");
        println!("# {exp}");
        println!("######################################################\n");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            failures.push(*exp);
        }
    }
    println!("\n======================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
