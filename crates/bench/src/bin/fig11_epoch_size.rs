//! Figure 11 — performance of WAW/RAW detection with 1-byte and 4-byte
//! epoch designs (Section 6.3.2).
//!
//! The hypothetical 8-bit-epoch design (metadata = data size, no
//! expansion/miscalculation penalties) upper-bounds CLEAN; the
//! 4-bytes-per-byte design (all lines effectively expanded, but without
//! expansion transitions) shows what CLEAN's line compaction saves —
//! most dramatically for the high-LLC-miss ocean_cp/ocean_ncp/radix,
//! whose miss rates climb under 4x metadata pressure.

use clean_bench::{env_sim_accesses, fmt_pct, mean, Table};
use clean_sim::{EpochMode, Machine, MachineConfig};
use clean_workloads::{generate_trace, simulated_benchmarks, TraceGenConfig};

fn main() {
    let cfg = TraceGenConfig {
        accesses_per_thread: env_sim_accesses(),
        ..TraceGenConfig::default()
    };
    println!("== Figure 11: 1-byte vs CLEAN (compacted 4-byte) vs 4-byte epochs ==\n");

    let mut t = Table::new(&[
        "benchmark",
        "1B epochs",
        "CLEAN",
        "4B epochs",
        "LLC miss (CLEAN)",
        "LLC miss (4B)",
    ]);
    let (mut s1, mut sc, mut s4) = (Vec::new(), Vec::new(), Vec::new());
    for b in simulated_benchmarks() {
        let trace = generate_trace(b, &cfg);
        let base = Machine::new(MachineConfig::baseline()).run(&trace);
        let r1 = Machine::new(MachineConfig::with_detection(EpochMode::Fixed1B)).run(&trace);
        let rc = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
        let r4 = Machine::new(MachineConfig::with_detection(EpochMode::Fixed4B)).run(&trace);
        let f = |c: u64| c as f64 / base.cycles as f64 - 1.0;
        s1.push(f(r1.cycles));
        sc.push(f(rc.cycles));
        s4.push(f(r4.cycles));
        t.row(vec![
            b.name.into(),
            fmt_pct(f(r1.cycles)),
            fmt_pct(f(rc.cycles)),
            fmt_pct(f(r4.cycles)),
            fmt_pct(rc.mem.llc_miss_rate()),
            fmt_pct(r4.mem.llc_miss_rate()),
        ]);
    }
    t.row(vec![
        "average".into(),
        fmt_pct(mean(&s1)),
        fmt_pct(mean(&sc)),
        fmt_pct(mean(&s4)),
        String::new(),
        String::new(),
    ]);
    t.print();
    println!("\npaper shape: CLEAN close to the 1-byte upper bound; 4-byte epochs");
    println!("significantly worse, especially ocean_cp/ocean_ncp/radix (highest LLC miss rates)");
    println!(
        "shape check (1B ≤ CLEAN ≤ 4B on average): {}",
        mean(&s1) <= mean(&sc) && mean(&sc) <= mean(&s4)
    );
}
