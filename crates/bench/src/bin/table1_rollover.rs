//! Table 1 — the impact of clock rollover (Section 4.5).
//!
//! The paper's default epoch layout gives the clock 23 bits; benchmarks
//! that synchronize heavily (barnes, fmm, radiosity, facesim,
//! fluidanimate) roll those clocks over and pay occasional deterministic
//! metadata resets. Against a 28-bit configuration (no rollovers), the
//! execution-time decrease is at most 2.4%.
//!
//! **Scaling substitution:** a 23-bit clock only rolls over after ~8.4M
//! synchronization operations per thread — the paper's native inputs run
//! minutes; these models run milliseconds. The "default" configuration
//! here narrows the clock (`CLEAN_CLOCK_BITS`, default 8) so rollovers
//! occur at model scale, preserving the experiment's structure: the
//! sync-heavy benchmarks reset, the rest do not, and the cost is small.

use clean_bench::{env_reps, env_scale, env_threads, fmt_pct, measure, Table};
use clean_core::EpochLayout;
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, run_benchmark, KernelParams};

fn main() {
    let threads = env_threads();
    let scale = env_scale();
    let reps = env_reps();
    let clock_bits: u32 = std::env::var("CLEAN_CLOCK_BITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    println!("== Table 1: clock rollover impact ==");
    println!(
        "(default layout scaled to a {clock_bits}-bit clock; wide = 28-bit; {threads} threads, {scale:?})\n"
    );

    let mut t = Table::new(&[
        "benchmark",
        "rollovers",
        "rollovers/s",
        "time decrease w/o rollover",
    ]);
    let mut any_rollover = Vec::new();
    for b in race_free_benchmarks() {
        let mut resets = 0;
        let (d_default, _) = measure(reps, || {
            let rt = CleanRuntime::new(
                RuntimeConfig::new()
                    .heap_size(1 << 23)
                    .max_threads(8)
                    .layout(EpochLayout::with_clock_bits(clock_bits)),
            );
            run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
                .expect("race-free benchmark must complete");
            resets = rt.stats().rollover_resets;
        });
        let (d_wide, _) = measure(reps, || {
            // The 28-bit clock leaves 3 tid bits: at most 8 live threads.
            let rt = CleanRuntime::new(
                RuntimeConfig::new()
                    .heap_size(1 << 23)
                    .max_threads(8)
                    .layout(EpochLayout::wide_clock()),
            );
            run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
                .expect("race-free benchmark must complete");
            assert_eq!(rt.stats().rollover_resets, 0, "wide clock must not roll");
        });
        if resets > 0 {
            let decrease =
                (d_default.as_secs_f64() - d_wide.as_secs_f64()) / d_default.as_secs_f64();
            any_rollover.push(b.name);
            t.row(vec![
                b.name.into(),
                resets.to_string(),
                format!("{:.1}", resets as f64 / d_default.as_secs_f64()),
                fmt_pct(decrease.max(0.0)),
            ]);
        }
    }
    t.print();
    println!("\nbenchmarks with rollovers: {any_rollover:?}");
    println!("paper: barnes, fmm, radiosity, facesim, fluidanimate — decrease ≤ 2.4%");
}
