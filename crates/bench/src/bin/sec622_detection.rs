//! Section 6.2.2 — "Detected Races and Determinism".
//!
//! The paper runs every benchmark 100 times with the simlarge input:
//! the 17 unmodified (racy) benchmarks *always* end with a race
//! exception, and the race-free versions never throw and are always
//! deterministic (same output, same deterministic counters, same shared
//! access counts).
//!
//! This binary repeats both experiments on the workload models. Runs
//! default to `CLEAN_RUNS=10` per benchmark for time; set `CLEAN_RUNS=100
//! CLEAN_SCALE=simlarge` for the paper's full protocol.

use clean_bench::{env_runs, env_threads, Table};
use clean_runtime::{CleanError, CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, racy_benchmarks, run_benchmark, KernelParams, Scale};

fn runtime() -> CleanRuntime {
    CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 23).max_threads(16))
}

fn main() {
    let runs = env_runs();
    let threads = env_threads();
    let scale = match std::env::var("CLEAN_SCALE").as_deref() {
        Ok("native") => Scale::Native,
        Ok("simlarge") => Scale::SimLarge,
        _ => Scale::SimSmall,
    };
    println!("== Section 6.2.2: detected races and determinism ==");
    println!(
        "({runs} runs per benchmark, {threads} threads; paper: 100 runs, 8 threads, simlarge)\n"
    );

    // Experiment 1: racy (unmodified) benchmarks always raise exceptions.
    println!("-- racy (unmodified) versions: expect a race exception in EVERY run --");
    let mut t = Table::new(&["benchmark", "runs", "exceptions", "always?"]);
    let mut all_always = true;
    for b in racy_benchmarks() {
        let mut exceptions = 0;
        for run in 0..runs {
            let rt = runtime();
            let p = KernelParams::new()
                .threads(threads)
                .scale(scale)
                .seed(0x5eed ^ run as u64)
                .racy(true);
            let r = run_benchmark(b, &rt, &p);
            let excepted = matches!(r, Err(CleanError::Race(_)) | Err(CleanError::Poisoned))
                || rt.first_race().is_some();
            if excepted {
                exceptions += 1;
            }
        }
        let always = exceptions == runs;
        all_always &= always;
        t.row(vec![
            b.name.into(),
            runs.to_string(),
            exceptions.to_string(),
            if always { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    println!(
        "\npaper: all 17 racy benchmarks always end with an exception — reproduced: {}\n",
        if all_always { "YES" } else { "NO" }
    );

    // Experiment 2: race-free versions never throw and are deterministic.
    println!("-- race-free (modified) versions: expect no exception, identical outputs/digests --");
    let mut t = Table::new(&["benchmark", "runs", "exceptions", "deterministic?"]);
    let mut all_det = true;
    for b in race_free_benchmarks() {
        let mut exceptions = 0;
        let mut outputs = Vec::new();
        let mut digests = Vec::new();
        for _ in 0..runs {
            let rt = runtime();
            let p = KernelParams::new().threads(threads).scale(scale);
            match run_benchmark(b, &rt, &p) {
                Ok(h) => outputs.push(h),
                Err(_) => exceptions += 1,
            }
            digests.push(rt.stats().digest());
        }
        let det =
            outputs.windows(2).all(|w| w[0] == w[1]) && digests.windows(2).all(|w| w[0] == w[1]);
        all_det &= det && exceptions == 0;
        t.row(vec![
            b.name.into(),
            runs.to_string(),
            exceptions.to_string(),
            if det { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    println!(
        "\npaper: race-free versions never raise and are always deterministic — reproduced: {}",
        if all_det { "YES" } else { "NO" }
    );
}
