//! Diagnostic: per-kernel wall time under each runtime configuration.
//! Run with: `cargo run --release -p clean-bench --bin profile_kernels`

use clean_bench::env_threads;
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{run_kernel, KernelKind, KernelParams};
use std::time::Instant;

fn main() {
    let threads = env_threads();
    let kinds = [
        KernelKind::Stencil,
        KernelKind::LinAlg,
        KernelKind::NBody,
        KernelKind::TaskQueue,
        KernelKind::Molecular,
        KernelKind::MonteCarlo,
        KernelKind::Pipeline,
        KernelKind::KMeans,
        KernelKind::Sort,
        KernelKind::Anneal,
    ];
    for k in kinds {
        for (label, det, ds) in [
            ("base", false, false),
            ("det-sync", false, true),
            ("detect", true, false),
            ("full", true, true),
        ] {
            let rt = CleanRuntime::new(
                RuntimeConfig::new()
                    .heap_size(1 << 22)
                    .max_threads(12)
                    .detection(det)
                    .det_sync(ds),
            );
            let t0 = Instant::now();
            let r = run_kernel(k, &rt, &KernelParams::new().threads(threads));
            let el = t0.elapsed();
            println!(
                "{k:?} {label}: {:.1} ms accesses={} ok={}",
                el.as_secs_f64() * 1e3,
                rt.stats().shared_accesses(),
                r.is_ok()
            );
        }
    }
}
