//! Figure 8 — the impact of the multi-byte access vectorization
//! (Section 4.4).
//!
//! Race-detection slowdown with and without the optimization that checks
//! a multi-byte access with a single epoch comparison (plus wide-CAS
//! updates) when all its byte epochs are equal. The paper attributes the
//! optimization's success to >91.9% of shared accesses being ≥4 bytes and
//! >99.7% of accesses finding uniform epochs.

use clean_bench::{env_reps, env_scale, env_threads, fmt_pct, fmt_x, geomean, measure, Table};
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, run_benchmark, BenchProfile, KernelParams, Scale};

fn timed(
    b: &BenchProfile,
    threads: usize,
    scale: Scale,
    reps: usize,
    cfg: RuntimeConfig,
) -> (f64, f64) {
    let mut uniform_frac = 1.0;
    let (d, _) = measure(reps, || {
        let rt = CleanRuntime::new(cfg.clone());
        run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
            .expect("race-free benchmark must complete");
        if let Some(det) = rt.stats().detector {
            uniform_frac = det.fast_path_fraction();
        }
    });
    (d.as_secs_f64(), uniform_frac)
}

fn main() {
    let threads = env_threads();
    let scale = env_scale();
    let reps = env_reps();
    println!("== Figure 8: impact of the Section 4.4 vectorization ==");
    println!("({threads} threads, {scale:?} inputs)\n");

    let mut t = Table::new(&[
        "benchmark",
        "no-vec",
        "vectorized",
        "gain",
        "uniform-epochs",
    ]);
    let (mut novec, mut vec_) = (Vec::new(), Vec::new());
    for b in race_free_benchmarks() {
        let base = RuntimeConfig::baseline().heap_size(1 << 23).max_threads(16);
        let (t_base, _) = timed(b, threads, scale, reps, base);
        let det_cfg = RuntimeConfig::new()
            .heap_size(1 << 23)
            .max_threads(16)
            .det_sync(false);
        let (t_novec, _) = timed(b, threads, scale, reps, det_cfg.clone().vectorized(false));
        let (t_vec, uniform) = timed(b, threads, scale, reps, det_cfg.vectorized(true));
        let (s_novec, s_vec) = (t_novec / t_base, t_vec / t_base);
        novec.push(s_novec);
        vec_.push(s_vec);
        t.row(vec![
            b.name.into(),
            fmt_x(s_novec),
            fmt_x(s_vec),
            fmt_x(s_novec / s_vec),
            fmt_pct(uniform),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        fmt_x(geomean(&novec)),
        fmt_x(geomean(&vec_)),
        fmt_x(geomean(&novec) / geomean(&vec_)),
        String::new(),
    ]);
    t.print();
    println!("\npaper shape: vectorization brings noticeable gains everywhere;");
    println!("uniform-epoch fraction near 100% (paper: >99.7% in every benchmark)");
}
