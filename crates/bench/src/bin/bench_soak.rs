//! Mixed-traffic soak harness for `clean-serve` with SLO gates.
//!
//! Starts an in-process digest-sharded fleet (3 nodes by default) behind
//! the CSRV router, then drives it with a weighted mix of traffic for a
//! wall-clock duration: cache-hot re-analyzes, cold uploads of
//! never-seen synthetic traces, duplicate submissions, deliberately
//! malformed frames, and slow-loris half-frames. Halfway through the
//! run a `CSUP v1` suppression policy is pushed live through the router
//! and every later verdict on the targeted digest must come back with
//! its races demoted to warnings.
//!
//! Every verdict observed by any worker is checked against a direct
//! `replay_sharded` ground truth — the soak fails on a single
//! divergence. Worker-side stats land in a `clean-obs` registry
//! (per-class `soak_ops_total` counters, `soak_client_micros`
//! histograms, a `divergence_total` counter), and the latency SLO
//! gates read the server-side `serve_latency_micros` histograms out of
//! the fleet's own `METRICS` exposition — the soak validates the
//! observability path itself, not a private client-side timer. The run
//! writes `BENCH_soak.json` (override with `--out`), optionally the
//! merged `CMET v1` exposition (`--metrics-out FILE`, for CI greps),
//! and exits nonzero when an SLO gate trips:
//!
//! * unexpected-error rate above `--max-error-rate` (default 1%),
//! * any verdict divergence,
//! * no suppressed verdict observed after the policy flip,
//! * an empty or request-free fleet METRICS exposition,
//! * hot-analyze (server-side ANALYZE) p99 above `--p99-limit-ms`, or
//! * a per-class p99 regression against `--check-baseline FILE`: each of
//!   the `hot_p99_micros`, `cold_p99_micros` and `dup_p99_micros` keys
//!   recorded there gates its class (ANALYZE, cold SUBMIT, deduplicated
//!   SUBMIT — server-side service latency) at one log2 bucket of
//!   quantization headroom plus 25% plus a 2 ms floor.
//!
//! The schedule derives from one seed (`--seed` / `CLEAN_TEST_SEED`);
//! failures print the one-line repro command.

use clean_baselines::FoundRace;
use clean_bench::soak::{
    env_seed, synth_events, synth_trace, LogHistogram, OpClass, SplitMix64, TrafficMix,
};
use clean_bench::{env_threads, trace_dir};
use clean_obs::{Counter, Hist, Registry, Snapshot};
use clean_serve::client::Client;
use clean_serve::protocol::{Response, MAGIC, VERSION};
use clean_serve::router::{Router, RouterConfig};
use clean_serve::server::{Server, ServerConfig, ServerHandle};
use clean_trace::{
    digest_events, read_trace, record_kernel_trace, replay_sharded, EngineKind, RecordOptions,
    TraceDigest,
};
use std::collections::HashSet;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The engines hot traffic alternates between.
const ENGINES: [EngineKind; 2] = [EngineKind::Clean, EngineKind::FastTrack];

/// Server/router I/O timeout — must be far below the slow-loris stall
/// so the reap is observable within one op.
const IO_TIMEOUT_MILLIS: u64 = 300;

struct CorpusTrace {
    name: &'static str,
    bytes: Vec<u8>,
    digest: TraceDigest,
    /// Direct `replay_sharded` race set per engine, in `ENGINES` order.
    truth: [HashSet<FoundRace>; 2],
}

const KERNELS: [(&str, bool); 4] = [
    ("dedup", true),
    ("streamcluster", true),
    ("fft", false),
    ("blackscholes", false),
];

fn record_corpus(dir: &std::path::Path) -> Vec<CorpusTrace> {
    KERNELS
        .iter()
        .map(|&(name, racy)| {
            let path = dir.join(format!("soak-{name}-{racy}.cltr"));
            record_kernel_trace(
                name,
                &path,
                &RecordOptions {
                    threads: 4,
                    racy,
                    seed: 42,
                },
            )
            .expect("record kernel trace");
            let events = read_trace(&path).expect("read back recorded trace");
            let bytes = std::fs::read(&path).expect("read recorded trace bytes");
            std::fs::remove_file(&path).ok();
            let truth = ENGINES.map(|engine| {
                replay_sharded(&events, engine, 4)
                    .into_iter()
                    .collect::<HashSet<_>>()
            });
            CorpusTrace {
                name,
                bytes,
                digest: digest_events(&events),
                truth,
            }
        })
        .collect()
}

fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Pre-registered metric handles for one worker: the op loop records
/// through these without ever touching the registry mutex. Handles are
/// keyed by name, so every worker's cells share the same counters.
struct WorkerCells {
    /// Per-class ok counters, indexed like [`OpClass::ALL`].
    ok: [Counter; 5],
    /// Per-class unexpected-error counters.
    err: [Counter; 5],
    /// Per-class client-observed round-trip latency.
    hist: [Hist; 5],
    /// Verdicts that disagreed with the replay ground truth.
    divergences: Counter,
    /// Races demoted to warnings across all observed verdicts.
    suppressed: Counter,
}

impl WorkerCells {
    fn new(registry: &Registry) -> Self {
        let labeled = |outcome: &str| {
            OpClass::ALL.map(|c| {
                registry.counter_with(
                    "soak_ops_total",
                    &[("class", c.name()), ("outcome", outcome)],
                )
            })
        };
        WorkerCells {
            ok: labeled("ok"),
            err: labeled("err"),
            hist: OpClass::ALL
                .map(|c| registry.hist_with("soak_client_micros", &[("class", c.name())])),
            divergences: registry.counter("divergence_total"),
            suppressed: registry.counter("soak_suppressed_verdict_races"),
        }
    }
}

struct WorkerReport {
    cells: WorkerCells,
    samples: Vec<String>,
}

/// Everything a worker shares with the harness, by reference.
struct Shared<'a> {
    target: SocketAddr,
    corpus: &'a [CorpusTrace],
    stop: &'a AtomicBool,
    policy_active: &'a AtomicBool,
    cold_counter: &'a AtomicU64,
    registry: &'a Registry,
    suppress_digest: TraceDigest,
    seed: u64,
}

fn class_index(class: OpClass) -> usize {
    OpClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class in ALL")
}

fn ensure_client(slot: &mut Option<Client>, target: SocketAddr) -> Result<&mut Client, String> {
    if slot.is_none() {
        *slot = Some(Client::connect(target).map_err(|e| format!("connect: {e}"))?);
    }
    Ok(slot.as_mut().expect("just connected"))
}

fn served_set(races: &[clean_serve::protocol::WireRace]) -> HashSet<FoundRace> {
    races.iter().map(|r| r.to_found()).collect()
}

/// One worker: schedules ops from the shared mix until `stop`,
/// recording outcomes through pre-registered metric handles so the hot
/// path takes no locks. Returns its failure samples.
fn run_worker(shared: &Shared<'_>, worker: usize) -> Vec<String> {
    let mut rng = SplitMix64::new(
        shared
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(worker as u64 + 1)),
    );
    let mix = TrafficMix::default();
    let mut report = WorkerReport {
        cells: WorkerCells::new(shared.registry),
        samples: Vec::new(),
    };
    let mut client: Option<Client> = None;

    while !shared.stop.load(Ordering::Relaxed) {
        let class = mix.pick(&mut rng);
        let t0 = Instant::now();
        let outcome = match class {
            OpClass::HotAnalyze => op_hot_analyze(shared, &mut rng, &mut client, &mut report),
            OpClass::ColdSubmit => op_cold_submit(shared, &mut rng, &mut client, &mut report),
            OpClass::DupSubmit => op_dup_submit(shared, &mut rng, &mut client),
            OpClass::BadFrame => op_bad_frame(shared, &mut rng),
            OpClass::SlowLoris => op_slow_loris(shared),
        };
        let micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = class_index(class);
        match outcome {
            Ok(()) => {
                report.cells.ok[idx].inc();
                report.cells.hist[idx].record(micros);
            }
            Err(msg) => {
                report.cells.err[idx].inc();
                // A failed round trip poisons request/response framing.
                client = None;
                if report.samples.len() < 5 {
                    report.samples.push(format!("{}: {msg}", class.name()));
                }
            }
        }
    }
    report.samples
}

fn op_hot_analyze(
    shared: &Shared<'_>,
    rng: &mut SplitMix64,
    client: &mut Option<Client>,
    report: &mut WorkerReport,
) -> Result<(), String> {
    let trace = &shared.corpus[rng.below(shared.corpus.len() as u64) as usize];
    let (engine_idx, engine) = {
        let i = rng.below(ENGINES.len() as u64) as usize;
        (i, ENGINES[i])
    };
    // Read the flag BEFORE sending: the POLICY set is synchronous and
    // fleet-wide, so a request issued after the flip must see it.
    let expect_suppressed = shared.policy_active.load(Ordering::Acquire)
        && trace.digest == shared.suppress_digest
        && engine == EngineKind::Clean;
    let c = ensure_client(client, shared.target)?;
    match c
        .analyze_with_retry(trace.digest, engine, 100)
        .map_err(|e| format!("hot analyze: {e}"))?
    {
        Response::Verdict { digest, races, .. } => {
            if digest != trace.digest {
                return Err(format!("verdict for wrong digest {digest}"));
            }
            let served = served_set(&races);
            if served != trace.truth[engine_idx] {
                report.cells.divergences.inc();
                if report.samples.len() < 5 {
                    report.samples.push(format!(
                        "DIVERGENCE {} {}: served {} races, truth {}",
                        trace.name,
                        engine.name(),
                        served.len(),
                        trace.truth[engine_idx].len()
                    ));
                }
            }
            let suppressed = races.iter().filter(|r| r.suppressed).count() as u64;
            report.cells.suppressed.add(suppressed);
            if expect_suppressed && suppressed == 0 {
                report.cells.divergences.inc();
                if report.samples.len() < 5 {
                    report.samples.push(format!(
                        "SUPPRESSION MISS {}: policy active but no race demoted",
                        trace.name
                    ));
                }
            }
            Ok(())
        }
        other => Err(format!("hot analyze reply: {other:?}")),
    }
}

fn op_cold_submit(
    shared: &Shared<'_>,
    rng: &mut SplitMix64,
    client: &mut Option<Client>,
    report: &mut WorkerReport,
) -> Result<(), String> {
    // The global counter keeps synthetic seeds unique across workers;
    // synth_events folds 24 seed bits into addresses, far above any
    // plausible cold-op count for one soak.
    let cold_seed = shared
        .seed
        .wrapping_add(shared.cold_counter.fetch_add(1, Ordering::Relaxed));
    let racy = rng.below(2) == 0;
    let events = synth_events(cold_seed, racy);
    let truth: HashSet<FoundRace> = replay_sharded(&events, EngineKind::Clean, 2)
        .into_iter()
        .collect();
    let c = ensure_client(client, shared.target)?;
    let digest = match c
        .submit(synth_trace(cold_seed, racy))
        .map_err(|e| format!("cold submit: {e}"))?
    {
        Response::Submitted { digest, .. } => digest,
        other => return Err(format!("cold submit reply: {other:?}")),
    };
    match c
        .analyze_with_retry(digest, EngineKind::Clean, 100)
        .map_err(|e| format!("cold analyze: {e}"))?
    {
        Response::Verdict { races, .. } => {
            if served_set(&races) != truth {
                report.cells.divergences.inc();
                if report.samples.len() < 5 {
                    report.samples.push(format!(
                        "DIVERGENCE synthetic seed {cold_seed}: served {} races, truth {}",
                        races.len(),
                        truth.len()
                    ));
                }
            }
            Ok(())
        }
        other => Err(format!("cold analyze reply: {other:?}")),
    }
}

fn op_dup_submit(
    shared: &Shared<'_>,
    rng: &mut SplitMix64,
    client: &mut Option<Client>,
) -> Result<(), String> {
    let trace = &shared.corpus[rng.below(shared.corpus.len() as u64) as usize];
    let c = ensure_client(client, shared.target)?;
    match c
        .submit(trace.bytes.clone())
        .map_err(|e| format!("dup submit: {e}"))?
    {
        Response::Submitted { digest, dedup, .. } => {
            if digest != trace.digest {
                return Err(format!("dup submit re-digested {} as {digest}", trace.name));
            }
            if !dedup {
                return Err(format!("dup submit of {} was not deduplicated", trace.name));
            }
            Ok(())
        }
        other => Err(format!("dup submit reply: {other:?}")),
    }
}

/// Success = the server answers BAD_FRAME or hangs up; a read timeout
/// means the connection wedged, which is the failure being hunted.
fn expect_rejection(stream: TcpStream, context: &str) -> Result<(), String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("{context}: set timeout: {e}"))?;
    let mut reader = BufReader::new(stream);
    match Response::read(&mut reader) {
        Ok(Some(Response::Error { .. })) | Ok(None) => Ok(()),
        Ok(Some(other)) => Err(format!("{context}: unexpected reply {other:?}")),
        Err(e) => match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => Ok(()),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                Err(format!("{context}: server wedged (read timed out)"))
            }
            _ => Err(format!("{context}: {e}")),
        },
    }
}

/// The 0x03 STATUS opcode, used where a hostile frame needs a real verb
/// so only the poisoned field is at fault.
const OP_STATUS_BYTE: u8 = 0x03;

/// Builds a CSRV frame header (+ body) from explicit parts, so hostile
/// frames track the live protocol [`VERSION`] instead of hard-coding a
/// stale one (a version bump must not silently turn every shape into
/// the same version-mismatch rejection).
fn raw_frame(magic: &[u8; 4], version: u8, opcode: u8, len: u32, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(10 + body.len());
    frame.extend_from_slice(magic);
    frame.push(version);
    frame.push(opcode);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

fn op_bad_frame(shared: &Shared<'_>, rng: &mut SplitMix64) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(shared.target).map_err(|e| format!("bad-frame connect: {e}"))?;
    let shape = rng.below(4);
    let frame: Vec<u8> = match shape {
        // Wrong magic.
        0 => raw_frame(b"XSRV", VERSION, OP_STATUS_BYTE, 0, &[]),
        // Wrong protocol version.
        1 => raw_frame(&MAGIC, VERSION.wrapping_add(0x60), OP_STATUS_BYTE, 0, &[]),
        // Unknown opcode.
        2 => raw_frame(&MAGIC, VERSION, 0x7f, 0, &[]),
        // Lying length: STATUS promises 8 body bytes, delivers 3.
        _ => raw_frame(&MAGIC, VERSION, OP_STATUS_BYTE, 8, b"abc"),
    };
    // The peer may reject and reset before the write finishes; that is
    // a success for this op, not a transport failure.
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
    if shape == 3 {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    expect_rejection(stream, "bad-frame")
}

fn op_slow_loris(shared: &Shared<'_>) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(shared.target).map_err(|e| format!("slow-loris connect: {e}"))?;
    // Half a header, then silence: the server's I/O timeout must reap
    // this connection instead of letting it camp on an acceptor.
    let _ = stream.write_all(&[MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION]);
    let _ = stream.flush();
    std::thread::sleep(Duration::from_millis(2 * IO_TIMEOUT_MILLIS));
    expect_rejection(stream, "slow-loris")
}

/// Folds every histogram of family `name` whose metric key carries all
/// `needles` (label fragments like `verb="analyze"`) into one — the
/// cross-node merge of one labeled histogram out of the router's
/// node-stamped exposition.
fn fleet_hist(snap: &Snapshot, name: &str, needles: &[&str]) -> LogHistogram {
    let mut out = LogHistogram::new();
    for (key, hist) in &snap.hists {
        let of_family =
            key == name || (key.starts_with(name) && key[name.len()..].starts_with('{'));
        if of_family && needles.iter().all(|n| key.contains(n)) {
            out.merge(hist);
        }
    }
    out
}

/// Minimal positive-integer field extraction from our own JSON output.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

struct Args {
    secs: u64,
    nodes: usize,
    clients: usize,
    seed: u64,
    out: PathBuf,
    metrics_out: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
    max_error_rate: f64,
    p99_limit_ms: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 60,
        nodes: 3,
        clients: env_threads(),
        seed: env_seed(0xC1EA_50A4),
        out: PathBuf::from("BENCH_soak.json"),
        metrics_out: None,
        check_baseline: None,
        max_error_rate: 0.01,
        p99_limit_ms: None,
    };
    let mut it = std::env::args().skip(1);
    let usage = "usage: bench_soak [--secs N] [--nodes N] [--clients N] [--seed N] \
                 [--out FILE] [--metrics-out FILE] [--check-baseline FILE] \
                 [--max-error-rate F] [--p99-limit-ms F]";
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{usage}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--secs" => args.secs = next(&mut it, "--secs").parse().expect("--secs"),
            "--nodes" => args.nodes = next(&mut it, "--nodes").parse().expect("--nodes"),
            "--clients" => args.clients = next(&mut it, "--clients").parse().expect("--clients"),
            "--seed" => args.seed = next(&mut it, "--seed").parse().expect("--seed"),
            "--out" => args.out = PathBuf::from(next(&mut it, "--out")),
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(next(&mut it, "--metrics-out")));
            }
            "--check-baseline" => {
                args.check_baseline = Some(PathBuf::from(next(&mut it, "--check-baseline")));
            }
            "--max-error-rate" => {
                args.max_error_rate = next(&mut it, "--max-error-rate")
                    .parse()
                    .expect("--max-error-rate");
            }
            "--p99-limit-ms" => {
                args.p99_limit_ms = Some(
                    next(&mut it, "--p99-limit-ms")
                        .parse()
                        .expect("--p99-limit-ms"),
                );
            }
            other => {
                eprintln!("unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs >= 1, "--secs must be at least 1");
    assert!(args.nodes >= 1, "--nodes must be at least 1");
    assert!(args.clients >= 1, "--clients must be at least 1");
    args
}

fn main() {
    let args = parse_args();
    println!(
        "== bench_soak: {}s mixed-traffic soak, {} nodes, {} clients, seed {} ==\n",
        args.secs, args.nodes, args.clients, args.seed
    );
    let repro = format!(
        "CLEAN_TEST_SEED={} cargo run --release -p clean-bench --bin bench_soak -- \
         --secs {} --nodes {} --clients {}",
        args.seed, args.secs, args.nodes, args.clients
    );

    let dir = trace_dir();
    std::fs::create_dir_all(&dir).expect("create trace directory");
    let corpus = record_corpus(&dir);
    // The suppression target: a racy corpus digest plus the address
    // span of its Clean races, so the CSUP rule demotes all of them.
    let target_trace = corpus
        .iter()
        .find(|t| !t.truth[0].is_empty())
        .expect("corpus needs a racy trace");
    let (lo, hi) = target_trace.truth[0]
        .iter()
        .fold((usize::MAX, 0usize), |(lo, hi), r| {
            (lo.min(r.addr), hi.max(r.addr))
        });
    let policy_text = format!(
        "CSUP v1\n# soak: demote the known {} races\naddr {lo:#x}..{hi:#x}\n",
        target_trace.name
    );

    // ---- the fleet: N nodes, every sibling a FETCH peer, one router ----
    let store_root = dir.join(format!("soak-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let addrs = reserve_addrs(args.nodes);
    let nodes: Vec<ServerHandle> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| a.clone())
                .collect();
            Server::start(
                ServerConfig::new(store_root.join(format!("node-{i}")))
                    .addr(addr.clone())
                    .peers(peers)
                    .workers(args.clients.min(8))
                    .queue_cap(4 * args.clients)
                    .io_timeout_millis(IO_TIMEOUT_MILLIS),
            )
            .expect("start fleet node")
        })
        .collect();
    let router = Router::start(RouterConfig::new(addrs).io_timeout_millis(IO_TIMEOUT_MILLIS))
        .expect("start router");
    let target = router.addr();

    // Seed the corpus so hot traffic has verdicts to hit.
    let mut seed_client = Client::connect(target).expect("connect seed client");
    for trace in &corpus {
        match seed_client
            .submit(trace.bytes.clone())
            .expect("seed submit")
        {
            Response::Submitted { digest, .. } => assert_eq!(digest, trace.digest),
            other => panic!("seed submit failed: {other:?}"),
        }
    }

    let stop = AtomicBool::new(false);
    let policy_active = AtomicBool::new(false);
    let cold_counter = AtomicU64::new(1);
    // The harness registry: every worker records through it, and the
    // key gates below read it back as a snapshot. Registering the gate
    // counters up front guarantees they appear (as zeros) in the
    // exposition even if no worker ever bumps them.
    let registry = Registry::new();
    let _ = registry.counter("divergence_total");
    let _ = registry.counter("soak_suppressed_verdict_races");
    let shared = Shared {
        target,
        corpus: &corpus,
        stop: &stop,
        policy_active: &policy_active,
        cold_counter: &cold_counter,
        registry: &registry,
        suppress_digest: target_trace.digest,
        seed: args.seed,
    };

    let t0 = Instant::now();
    let worker_samples: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|w| {
                let shared = &shared;
                s.spawn(move || run_worker(shared, w))
            })
            .collect();

        // Harness timeline: run clean for half the soak, push the
        // suppression policy fleet-wide, run the second half, stop.
        std::thread::sleep(Duration::from_millis(args.secs * 500));
        match seed_client
            .set_policy(policy_text.clone())
            .expect("policy flip")
        {
            Response::Policy { rules, .. } => assert_eq!(rules, 1, "one soak rule"),
            other => panic!("policy flip rejected: {other:?}"),
        }
        policy_active.store(true, Ordering::Release);
        println!(
            "[{:>5.1}s] policy live: suppressing {} races in {:#x}..{:#x}",
            t0.elapsed().as_secs_f64(),
            target_trace.name,
            lo,
            hi
        );
        std::thread::sleep(Duration::from_millis(args.secs * 500));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    // ---- read the per-worker stats back out of the registry ----
    let soak_snap = registry.snapshot();
    let class_stats: Vec<(u64, u64, LogHistogram)> = OpClass::ALL
        .iter()
        .map(|class| {
            let count = |outcome| {
                soak_snap
                    .counter(
                        "soak_ops_total",
                        &[("class", class.name()), ("outcome", outcome)],
                    )
                    .unwrap_or(0)
            };
            let hist = soak_snap
                .hist("soak_client_micros", &[("class", class.name())])
                .cloned()
                .unwrap_or_default();
            (count("ok"), count("err"), hist)
        })
        .collect();
    let divergences = soak_snap.counter("divergence_total", &[]).unwrap_or(0);
    let suppressed_seen = soak_snap
        .counter("soak_suppressed_verdict_races", &[])
        .unwrap_or(0);
    let mut samples: Vec<String> = Vec::new();
    for worker in &worker_samples {
        for s in worker {
            if samples.len() < 10 {
                samples.push(s.clone());
            }
        }
    }
    let total_ok: u64 = class_stats.iter().map(|(ok, _, _)| ok).sum();
    let total_err: u64 = class_stats.iter().map(|(_, err, _)| err).sum();
    let total_ops = total_ok + total_err;
    let error_rate = if total_ops == 0 {
        1.0
    } else {
        total_err as f64 / total_ops as f64
    };

    // ---- the latency SLO source: the fleet's own METRICS wire ----
    // One exposition fetched through the router covers every node; the
    // p99 gates below read the server-side service histograms out of
    // it, so a broken observability path fails the soak outright.
    let metrics_text = seed_client.metrics().expect("final fleet METRICS");
    let fleet_snap = Snapshot::parse(&metrics_text).expect("parse fleet METRICS exposition");
    let hot_srv = fleet_hist(&fleet_snap, "serve_latency_micros", &["verb=\"analyze\""]);
    let cold_srv = fleet_hist(
        &fleet_snap,
        "serve_latency_micros",
        &["verb=\"submit\"", "dedup=\"false\""],
    );
    let dup_srv = fleet_hist(
        &fleet_snap,
        "serve_latency_micros",
        &["verb=\"submit\"", "dedup=\"true\""],
    );
    let hot_p99 = hot_srv.quantile(0.99);
    let cold_p99 = cold_srv.quantile(0.99);
    let dup_p99 = dup_srv.quantile(0.99);
    let requests_total = fleet_snap.counter_family_total("serve_requests_total");
    let pool_hits = fleet_snap.counter_family_total("router_pool_hits");

    let stats = seed_client.stats().expect("final fleet stats");
    match seed_client.policy().expect("final policy read") {
        Response::Policy { rules, .. } => assert_eq!(rules, 1, "policy must still be live"),
        other => panic!("policy read failed: {other:?}"),
    }
    match seed_client.shutdown().expect("fleet shutdown") {
        Response::ShuttingDown => {}
        other => panic!("fleet shutdown failed: {other:?}"),
    }
    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&store_root);

    // ---- report ----
    let mut table = clean_bench::Table::new(&[
        "class", "ops", "errors", "p50us", "p99us", "p999us", "maxus",
    ]);
    for (class, (ok, err, hist)) in OpClass::ALL.iter().zip(&class_stats) {
        table.row(vec![
            class.name().into(),
            ok.to_string(),
            err.to_string(),
            hist.quantile(0.50).to_string(),
            hist.quantile(0.99).to_string(),
            hist.quantile(0.999).to_string(),
            hist.max_micros().to_string(),
        ]);
    }
    table.print();
    println!(
        "\n{total_ops} ops in {elapsed:.1}s ({:.0} ops/s), error rate {:.4}, \
         {divergences} divergences, {suppressed_seen} suppressed verdict races",
        total_ops as f64 / elapsed,
        error_rate
    );
    println!(
        "fleet counters: coalesced {}, shed {}, forwards {}, fetches {}, \
         evictions {}, suppressed_hits {}, requests {requests_total}, pool hits {pool_hits}",
        stats.jobs_coalesced,
        stats.jobs_rejected,
        stats.forwards,
        stats.fetches,
        stats.store_evictions,
        stats.suppressed_hits
    );
    println!(
        "server-side p99 (from METRICS): analyze {hot_p99}us over {} samples, \
         cold submit {cold_p99}us, dup submit {dup_p99}us",
        hot_srv.count()
    );

    let mut class_json = String::new();
    for (i, (class, (ok, err, hist))) in OpClass::ALL.iter().zip(&class_stats).enumerate() {
        class_json.push_str(&format!(
            "    \"{}\": {{\"ops\": {}, \"errors\": {}, \"p50_micros\": {}, \
             \"p99_micros\": {}, \"p999_micros\": {}, \"max_micros\": {}, \"mean_micros\": {}}}{}\n",
            class.name(),
            ok,
            err,
            hist.quantile(0.50),
            hist.quantile(0.99),
            hist.quantile(0.999),
            hist.max_micros(),
            hist.mean_micros(),
            if i + 1 < OpClass::ALL.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"soak\",\n  \"seed\": {},\n  \"secs\": {},\n  \
         \"nodes\": {},\n  \"clients\": {},\n  \"total_ops\": {},\n  \
         \"ops_per_sec\": {:.1},\n  \"error_rate\": {:.6},\n  \"divergences\": {},\n  \
         \"suppressed_verdict_races\": {},\n  \"hot_p99_micros\": {},\n  \
         \"cold_p99_micros\": {},\n  \"dup_p99_micros\": {},\n  \
         \"jobs_coalesced\": {},\n  \"jobs_rejected\": {},\n  \"forwards\": {},\n  \
         \"fetches\": {},\n  \"store_evictions\": {},\n  \"suppressed_hits\": {},\n  \
         \"serve_requests_total\": {requests_total},\n  \"router_pool_hits\": {pool_hits},\n  \
         \"classes\": {{\n{class_json}  }}\n}}\n",
        args.seed,
        args.secs,
        args.nodes,
        args.clients,
        total_ops,
        total_ops as f64 / elapsed,
        error_rate,
        divergences,
        suppressed_seen,
        hot_p99,
        cold_p99,
        dup_p99,
        stats.jobs_coalesced,
        stats.jobs_rejected,
        stats.forwards,
        stats.fetches,
        stats.store_evictions,
        stats.suppressed_hits,
    );
    std::fs::write(&args.out, &json).expect("write result JSON");
    println!("wrote {}", args.out.display());
    if let Some(path) = &args.metrics_out {
        // One `CMET v1` exposition holding both sides of the soak: the
        // node-stamped fleet metrics and the harness's own counters
        // (divergence_total included, zero or not) — what CI greps.
        let mut combined = fleet_snap.clone();
        combined.merge(&soak_snap);
        std::fs::write(path, combined.render(&[])).expect("write metrics exposition");
        println!("wrote {}", path.display());
    }

    // ---- SLO gates ----
    let mut failures: Vec<String> = Vec::new();
    if requests_total == 0 {
        failures.push("fleet METRICS exposition reported zero serve_requests_total".into());
    }
    if hot_srv.count() == 0 {
        failures.push("fleet METRICS exposition carried no analyze latency samples".into());
    }
    if error_rate > args.max_error_rate {
        failures.push(format!(
            "error rate {error_rate:.4} exceeds ceiling {:.4}",
            args.max_error_rate
        ));
    }
    if divergences > 0 {
        failures.push(format!("{divergences} verdict divergences (must be 0)"));
    }
    if suppressed_seen == 0 {
        failures.push("no suppressed verdict observed after the policy flip".into());
    }
    if stats.suppressed_hits == 0 {
        failures.push("fleet suppressed_hits counter stayed 0".into());
    }
    if let Some(limit_ms) = args.p99_limit_ms {
        let limit = (limit_ms * 1000.0) as u64;
        if hot_p99 > limit {
            failures.push(format!(
                "hot-analyze p99 {hot_p99}us exceeds --p99-limit-ms {limit_ms}"
            ));
        }
    }
    if let Some(baseline_path) = &args.check_baseline {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        // Quantiles are log2-bucket upper bounds, so the smallest real
        // step above a baseline is a 2x bucket jump. Allow one bucket
        // of quantization headroom, then 25% + a 2 ms absolute floor on
        // top; a genuine regression (2+ buckets) still trips the gate.
        // Each latency-sensitive class gates independently: a cold-path
        // regression must not hide behind a healthy hot path.
        for (what, key, p99) in [
            ("hot-analyze", "hot_p99_micros", hot_p99),
            ("cold-submit", "cold_p99_micros", cold_p99),
            ("dup-submit", "dup_p99_micros", dup_p99),
        ] {
            let baseline = json_u64(&text, key)
                .unwrap_or_else(|| panic!("no {key} in {}", baseline_path.display()));
            let bucket_up = 2 * (baseline + 1) - 1;
            let ceiling = bucket_up + bucket_up / 4 + 2_000;
            if p99 > ceiling {
                failures.push(format!(
                    "{what} p99 {p99}us regressed past {ceiling}us \
                     (baseline {baseline}us + one log2 bucket + 25% + 2ms)"
                ));
            } else {
                println!("baseline check ok: {what} p99 {p99}us <= {ceiling}us");
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("\nSLO FAILURES:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        for s in &samples {
            eprintln!("  sample: {s}");
        }
        eprintln!("\nrepro: {repro}");
        std::process::exit(1);
    }
    println!(
        "\nheadline: {:.0} mixed ops/s sustained for {elapsed:.0}s with \
         server-side p99 analyze latency {}us (read off the METRICS wire) and zero divergence",
        total_ops as f64 / elapsed,
        hot_p99
    );
}
