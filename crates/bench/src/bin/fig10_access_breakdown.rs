//! Figure 10 — the breakdown of memory accesses (Section 6.3.2).
//!
//! Left side of each paper bar: accesses by the complexity of their race
//! check (private / fast / VC load / update / VC load & update / expand).
//! Right side: accesses to compact vs expanded metadata lines.
//!
//! Shapes to check: on average >50% of accesses resolve on the fast path
//! and ~90% are quick (private + fast); line expansions are vanishingly
//! rare (<0.02% of accesses in every paper benchmark); dedup is the one
//! workload whose accesses hit mostly expanded lines.

use clean_bench::{env_sim_accesses, fmt_pct, mean, Table};
use clean_sim::{EpochMode, Machine, MachineConfig};
use clean_workloads::{generate_trace, simulated_benchmarks, TraceGenConfig};

fn main() {
    let cfg = TraceGenConfig {
        accesses_per_thread: env_sim_accesses(),
        ..TraceGenConfig::default()
    };
    println!("== Figure 10: breakdown of memory accesses under hardware CLEAN ==\n");

    let mut t = Table::new(&[
        "benchmark",
        "private",
        "fast",
        "VC load",
        "update",
        "VC+upd",
        "expand",
        "compact",
        "expanded",
    ]);
    let (mut fasts, mut quicks, mut compacts) = (Vec::new(), Vec::new(), Vec::new());
    let mut dedup_expanded = 0.0;
    for b in simulated_benchmarks() {
        let trace = generate_trace(b, &cfg);
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
        let hw = r.hw.expect("detection on");
        let total = hw.total() as f64;
        let checked = (hw.compact_accesses + hw.expanded_accesses).max(1) as f64;
        let expanded_frac = hw.expanded_accesses as f64 / checked;
        if b.name == "dedup" {
            dedup_expanded = expanded_frac;
        }
        fasts.push(hw.fast as f64 / total);
        quicks.push(hw.quick_fraction());
        compacts.push(1.0 - expanded_frac);
        t.row(vec![
            b.name.into(),
            fmt_pct(hw.private as f64 / total),
            fmt_pct(hw.fast as f64 / total),
            fmt_pct(hw.vc_load as f64 / total),
            fmt_pct(hw.update as f64 / total),
            fmt_pct(hw.vc_load_update as f64 / total),
            fmt_pct(hw.expand as f64 / total),
            fmt_pct(1.0 - expanded_frac),
            fmt_pct(expanded_frac),
        ]);
    }
    t.print();
    println!(
        "\naverages: fast {}, quick (private+fast) {}, compact {}",
        fmt_pct(mean(&fasts)),
        fmt_pct(mean(&quicks)),
        fmt_pct(mean(&compacts))
    );
    println!("paper: fast 54.2%, quick ~90%, compact-or-private 94.3%; dedup mostly expanded");
    println!(
        "dedup expanded-line accesses: {} ({})",
        fmt_pct(dedup_expanded),
        if dedup_expanded > 0.5 {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}
