//! Figure 9 — hardware-supported race detection performance
//! (Section 6.3.2).
//!
//! Simulated execution time with the CLEAN hardware check unit active,
//! normalized to the same machine with no detection. The paper reports an
//! average slowdown of 10.4% and a maximum of 46.7% (dedup, whose
//! byte-granular writes put most accesses on expanded metadata lines).

use clean_bench::{env_sim_accesses, fmt_pct, mean, Table};
use clean_sim::{EpochMode, Machine, MachineConfig};
use clean_workloads::{generate_trace, simulated_benchmarks, TraceGenConfig};

fn main() {
    let cfg = TraceGenConfig {
        accesses_per_thread: env_sim_accesses(),
        ..TraceGenConfig::default()
    };
    println!("== Figure 9: hardware-supported race detection slowdown ==");
    println!(
        "(8 simulated cores, {} shared accesses/thread; paper: simsmall, facesim omitted)\n",
        cfg.accesses_per_thread
    );

    let mut t = Table::new(&["benchmark", "base (Mcycles)", "CLEAN (Mcycles)", "slowdown"]);
    let mut slowdowns = Vec::new();
    let mut worst = ("", 0.0f64);
    for b in simulated_benchmarks() {
        let trace = generate_trace(b, &cfg);
        let base = Machine::new(MachineConfig::baseline()).run(&trace);
        let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
        let over = det.cycles as f64 / base.cycles as f64 - 1.0;
        slowdowns.push(over);
        if over > worst.1 {
            worst = (b.name, over);
        }
        t.row(vec![
            b.name.into(),
            format!("{:.2}", base.cycles as f64 / 1e6),
            format!("{:.2}", det.cycles as f64 / 1e6),
            fmt_pct(over),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        fmt_pct(mean(&slowdowns)),
    ]);
    t.print();
    println!("\npaper: average 10.4%, max 46.7% (dedup)");
    println!(
        "measured: average {}, max {} ({})",
        fmt_pct(mean(&slowdowns)),
        fmt_pct(worst.1),
        worst.0
    );
}
