//! Service-throughput benchmark for `clean-serve`.
//!
//! Starts an in-process daemon, records a small corpus of racy and clean
//! workload-kernel traces, then measures the three regimes a long-lived
//! analysis service actually sees:
//!
//! * **cold** — first SUBMIT + ANALYZE of every `(trace, engine)` pair:
//!   bounded by replay throughput, every request a cache miss;
//! * **hot** — `CLEAN_THREADS` concurrent clients re-requesting the same
//!   verdicts for many rounds: bounded by the protocol + verdict cache,
//!   every request a hit;
//! * **resubmit** — clients re-uploading traces the store already holds:
//!   bounded by digest validation, every upload deduplicated.
//!
//! The run fails if the STATS counters disagree with the regime (a hot
//! round that misses the cache means memoization broke) or if a racy
//! trace yields no races. Results land in `BENCH_serve.json` (override
//! with `--out`); `--small` selects the quick CI profile. `CLEAN_THREADS`
//! scales the client fan-out.

use clean_bench::{env_threads, fmt_pct, trace_dir, Table};
use clean_serve::client::Client;
use clean_serve::protocol::Response;
use clean_serve::server::{Server, ServerConfig};
use clean_trace::{digest_file, record_kernel_trace, EngineKind, RecordOptions, TraceDigest};
use std::path::PathBuf;
use std::time::Instant;

/// One recorded corpus entry.
struct CorpusTrace {
    name: &'static str,
    racy: bool,
    bytes: Vec<u8>,
    digest: TraceDigest,
}

const KERNELS: [(&str, bool); 4] = [
    ("dedup", true),
    ("streamcluster", true),
    ("fft", false),
    ("blackscholes", false),
];

/// Records the kernel corpus into `dir` and returns the encoded traces.
fn record_corpus(dir: &std::path::Path) -> Vec<CorpusTrace> {
    KERNELS
        .iter()
        .map(|&(name, racy)| {
            let path = dir.join(format!("serve-{name}-{racy}.cltr"));
            record_kernel_trace(
                name,
                &path,
                &RecordOptions {
                    threads: 4,
                    racy,
                    seed: 42,
                },
            )
            .expect("record kernel trace");
            let digest = digest_file(&path).expect("digest recorded trace");
            let bytes = std::fs::read(&path).expect("read recorded trace");
            std::fs::remove_file(&path).ok();
            CorpusTrace {
                name,
                racy,
                bytes,
                digest,
            }
        })
        .collect()
}

fn submit(client: &mut Client, trace: &[u8]) -> (TraceDigest, bool) {
    match client.submit(trace.to_vec()).expect("submit round trip") {
        Response::Submitted { digest, dedup, .. } => (digest, dedup),
        other => panic!("submit rejected: {other:?}"),
    }
}

fn main() {
    let mut small = false;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; usage: bench_serve [--small] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let clients = env_threads();
    let rounds: usize = if small { 25 } else { 250 };
    let engines = [EngineKind::Clean, EngineKind::FastTrack];
    println!(
        "== bench_serve: service throughput ({} profile, {clients} clients, {rounds} hot rounds) ==\n",
        if small { "small" } else { "full" }
    );

    let dir = trace_dir();
    std::fs::create_dir_all(&dir).expect("create trace directory");
    let corpus = record_corpus(&dir);
    let corpus_bytes: usize = corpus.iter().map(|t| t.bytes.len()).sum();

    let store_dir = dir.join(format!("serve-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = Server::start(
        ServerConfig::new(&store_dir)
            .workers(clients.min(8))
            .queue_cap(4 * clients.max(1)),
    )
    .expect("start in-process server");
    let addr = server.addr();

    // ---- cold: first submit + first analyze of every (trace, engine) ----
    let mut seed_client = Client::connect(addr).expect("connect seed client");
    let t0 = Instant::now();
    for trace in &corpus {
        let (digest, dedup) = submit(&mut seed_client, &trace.bytes);
        assert_eq!(digest, trace.digest, "store digest must match recorder");
        assert!(!dedup, "first submit of {} cannot dedup", trace.name);
    }
    let submit_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for trace in &corpus {
        for &engine in &engines {
            match seed_client
                .analyze_with_retry(trace.digest, engine, 100)
                .expect("cold analyze")
            {
                Response::Verdict { cached, races, .. } => {
                    assert!(!cached, "cold analyze of {} must miss", trace.name);
                    if trace.racy && engine == EngineKind::Clean {
                        assert!(!races.is_empty(), "racy {} must report races", trace.name);
                    }
                }
                other => panic!("cold analyze failed: {other:?}"),
            }
        }
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_verdicts = corpus.len() * engines.len();
    let stats_cold = seed_client.stats().expect("stats after cold phase");
    assert_eq!(
        stats_cold.cache_hits, 0,
        "cold phase must not hit the cache"
    );

    // ---- hot: concurrent clients replaying the same requests ----
    let corpus_ref = &corpus;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect hot client");
                for round in 0..rounds {
                    for trace in corpus_ref {
                        let engine = engines[(c + round) % engines.len()];
                        match client
                            .analyze_with_retry(trace.digest, engine, 100)
                            .expect("hot analyze")
                        {
                            Response::Verdict { .. } => {}
                            other => panic!("hot analyze failed: {other:?}"),
                        }
                    }
                }
            });
        }
    });
    let hot_secs = t0.elapsed().as_secs_f64();
    let hot_verdicts = clients * rounds * corpus.len();

    // ---- resubmit: every upload hits the digest store ----
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect resubmit client");
                for trace in corpus_ref {
                    let (_, dedup) = submit(&mut client, &trace.bytes);
                    assert!(dedup, "resubmit of {} must dedup", trace.name);
                }
            });
        }
    });
    let resubmit_secs = t0.elapsed().as_secs_f64();
    let resubmit_count = clients * corpus.len();

    let stats = seed_client.stats().expect("final stats");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&store_dir);

    // Memoization must have served the entire hot phase from the cache.
    assert_eq!(
        stats.cache_misses as usize, cold_verdicts,
        "only the cold phase may miss"
    );
    assert!(
        stats.cache_hits as usize >= hot_verdicts,
        "hot phase must be all cache hits"
    );
    assert_eq!(stats.store_traces as usize, corpus.len());
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64;

    let mut t = Table::new(&["phase", "requests", "secs", "req/s"]);
    for (phase, n, secs) in [
        ("cold submit", corpus.len(), submit_secs),
        ("cold analyze", cold_verdicts, cold_secs),
        ("hot analyze", hot_verdicts, hot_secs),
        ("resubmit", resubmit_count, resubmit_secs),
    ] {
        t.row(vec![
            phase.into(),
            n.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", n as f64 / secs),
        ]);
    }
    t.print();
    println!(
        "\ncorpus {} traces / {:.1} MiB, cache hit rate {}, {} dedup uploads",
        corpus.len(),
        corpus_bytes as f64 / (1 << 20) as f64,
        fmt_pct(hit_rate),
        stats.submit_dedup_hits,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"profile\": \"{}\",\n  \"clients\": {},\n  \"rounds\": {},\n  \"corpus_traces\": {},\n  \"corpus_bytes\": {},\n  \"cold_submit_secs\": {:.4},\n  \"cold_analyze_secs\": {:.4},\n  \"hot_analyze_secs\": {:.4},\n  \"resubmit_secs\": {:.4},\n  \"hot_verdicts_per_sec\": {:.1},\n  \"cache_hit_rate\": {:.4},\n  \"submit_dedup_hits\": {},\n  \"jobs_completed\": {},\n  \"jobs_rejected\": {}\n}}\n",
        if small { "small" } else { "full" },
        clients,
        rounds,
        corpus.len(),
        corpus_bytes,
        submit_secs,
        cold_secs,
        hot_secs,
        resubmit_secs,
        hot_verdicts as f64 / hot_secs,
        hit_rate,
        stats.submit_dedup_hits,
        stats.jobs_completed,
        stats.jobs_rejected,
    );
    std::fs::write(&out, &json).expect("write result JSON");
    println!("wrote {}", out.display());
    println!(
        "headline: {:.0} cached verdicts/s across {clients} clients",
        hot_verdicts as f64 / hot_secs
    );
}
