//! Service-throughput benchmark for `clean-serve`.
//!
//! Starts an in-process daemon, records a small corpus of racy and clean
//! workload-kernel traces, then measures the three regimes a long-lived
//! analysis service actually sees:
//!
//! * **cold** — first SUBMIT + ANALYZE of every `(trace, engine)` pair:
//!   bounded by replay throughput, every request a cache miss;
//! * **hot** — `CLEAN_THREADS` concurrent clients re-requesting the same
//!   verdicts for many rounds: bounded by the protocol + verdict cache,
//!   every request a hit;
//! * **resubmit** — clients re-uploading traces the store already holds:
//!   bounded by digest validation, every upload deduplicated;
//! * **warm restart** — a second daemon on the same store directory:
//!   every verdict must come back from the persisted cache without a
//!   single replay;
//! * **fleet** — the same hot workload through a CSRV router fronting a
//!   3-node digest-sharded fleet, against the 1-node baseline.
//!
//! The run fails if the STATS counters disagree with the regime (a hot
//! round that misses the cache means memoization broke) or if a racy
//! trace yields no races. The daemon's `METRICS` exposition is fetched
//! alongside STATS in both the single-node and fleet phases and must
//! agree with it counter-for-counter — the bench validates the
//! observability wire, not just the service. Results land in
//! `BENCH_serve.json` (override with `--out`); `--small` selects the
//! quick CI profile. `CLEAN_THREADS` scales the client fan-out.

use clean_bench::{env_threads, fmt_pct, trace_dir, Table};
use clean_obs::Snapshot;
use clean_serve::client::Client;
use clean_serve::protocol::Response;
use clean_serve::router::{Router, RouterConfig};
use clean_serve::server::{Server, ServerConfig, ServerHandle};
use clean_trace::{digest_file, record_kernel_trace, EngineKind, RecordOptions, TraceDigest};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Instant;

/// One recorded corpus entry.
struct CorpusTrace {
    name: &'static str,
    racy: bool,
    bytes: Vec<u8>,
    digest: TraceDigest,
}

const KERNELS: [(&str, bool); 4] = [
    ("dedup", true),
    ("streamcluster", true),
    ("fft", false),
    ("blackscholes", false),
];

/// Records the kernel corpus into `dir` and returns the encoded traces.
fn record_corpus(dir: &std::path::Path) -> Vec<CorpusTrace> {
    KERNELS
        .iter()
        .map(|&(name, racy)| {
            let path = dir.join(format!("serve-{name}-{racy}.cltr"));
            record_kernel_trace(
                name,
                &path,
                &RecordOptions {
                    threads: 4,
                    racy,
                    seed: 42,
                },
            )
            .expect("record kernel trace");
            let digest = digest_file(&path).expect("digest recorded trace");
            let bytes = std::fs::read(&path).expect("read recorded trace");
            std::fs::remove_file(&path).ok();
            CorpusTrace {
                name,
                racy,
                bytes,
                digest,
            }
        })
        .collect()
}

fn submit(client: &mut Client, trace: &[u8]) -> (TraceDigest, bool) {
    match client.submit(trace.to_vec()).expect("submit round trip") {
        Response::Submitted { digest, dedup, .. } => (digest, dedup),
        other => panic!("submit rejected: {other:?}"),
    }
}

/// Reserves `n` loopback addresses so fleet nodes can name each other
/// as peers before any of them binds.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn main() {
    let mut small = false;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown flag {other}; usage: bench_serve [--small] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let clients = env_threads();
    let rounds: usize = if small { 25 } else { 250 };
    let engines = [EngineKind::Clean, EngineKind::FastTrack];
    println!(
        "== bench_serve: service throughput ({} profile, {clients} clients, {rounds} hot rounds) ==\n",
        if small { "small" } else { "full" }
    );

    let dir = trace_dir();
    std::fs::create_dir_all(&dir).expect("create trace directory");
    let corpus = record_corpus(&dir);
    let corpus_bytes: usize = corpus.iter().map(|t| t.bytes.len()).sum();

    let store_dir = dir.join(format!("serve-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = Server::start(
        ServerConfig::new(&store_dir)
            .workers(clients.min(8))
            .queue_cap(4 * clients.max(1)),
    )
    .expect("start in-process server");
    let addr = server.addr();

    // ---- cold: first submit + first analyze of every (trace, engine) ----
    let mut seed_client = Client::connect(addr).expect("connect seed client");
    let t0 = Instant::now();
    for trace in &corpus {
        let (digest, dedup) = submit(&mut seed_client, &trace.bytes);
        assert_eq!(digest, trace.digest, "store digest must match recorder");
        assert!(!dedup, "first submit of {} cannot dedup", trace.name);
    }
    let submit_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for trace in &corpus {
        for &engine in &engines {
            match seed_client
                .analyze_with_retry(trace.digest, engine, 100)
                .expect("cold analyze")
            {
                Response::Verdict { cached, races, .. } => {
                    assert!(!cached, "cold analyze of {} must miss", trace.name);
                    if trace.racy && engine == EngineKind::Clean {
                        assert!(!races.is_empty(), "racy {} must report races", trace.name);
                    }
                }
                other => panic!("cold analyze failed: {other:?}"),
            }
        }
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_verdicts = corpus.len() * engines.len();
    let stats_cold = seed_client.stats().expect("stats after cold phase");
    assert_eq!(
        stats_cold.cache_hits, 0,
        "cold phase must not hit the cache"
    );

    // ---- hot: concurrent clients replaying the same requests ----
    let corpus_ref = &corpus;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect hot client");
                for round in 0..rounds {
                    for trace in corpus_ref {
                        let engine = engines[(c + round) % engines.len()];
                        match client
                            .analyze_with_retry(trace.digest, engine, 100)
                            .expect("hot analyze")
                        {
                            Response::Verdict { .. } => {}
                            other => panic!("hot analyze failed: {other:?}"),
                        }
                    }
                }
            });
        }
    });
    let hot_secs = t0.elapsed().as_secs_f64();
    let hot_verdicts = clients * rounds * corpus.len();

    // ---- resubmit: every upload hits the digest store ----
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect resubmit client");
                for trace in corpus_ref {
                    let (_, dedup) = submit(&mut client, &trace.bytes);
                    assert!(dedup, "resubmit of {} must dedup", trace.name);
                }
            });
        }
    });
    let resubmit_secs = t0.elapsed().as_secs_f64();
    let resubmit_count = clients * corpus.len();

    let stats = seed_client.stats().expect("final stats");
    // The METRICS exposition must tell the same story as the STATS
    // wire reply: same registry cells, two renderings.
    let metrics = Snapshot::parse(&seed_client.metrics().expect("final METRICS"))
        .expect("parse METRICS exposition");
    assert_eq!(
        metrics.counter("cache_hits", &[]),
        Some(stats.cache_hits),
        "METRICS cache_hits must match STATS"
    );
    assert_eq!(
        metrics.counter("cache_misses", &[]),
        Some(stats.cache_misses),
        "METRICS cache_misses must match STATS"
    );
    assert_eq!(
        metrics.counter("submits", &[]),
        Some(stats.submits),
        "METRICS submits must match STATS"
    );
    let analyze_hist = metrics
        .hist("serve_latency_micros", &[("verb", "analyze")])
        .expect("analyze latency histogram in METRICS");
    assert!(
        analyze_hist.count() as usize >= hot_verdicts,
        "every hot analyze must land in the service latency histogram"
    );
    server.shutdown();
    server.join();

    // ---- warm restart: a new daemon on the same store serves every
    // verdict from the persisted cache, no replays ----
    let t0 = Instant::now();
    let warm = Server::start(ServerConfig::new(&store_dir).workers(clients.min(8)))
        .expect("warm-restart server");
    let mut warm_client = Client::connect(warm.addr()).expect("connect warm client");
    for trace in &corpus {
        for &engine in &engines {
            match warm_client
                .analyze_with_retry(trace.digest, engine, 100)
                .expect("warm analyze")
            {
                Response::Verdict { cached, .. } => {
                    assert!(cached, "warm restart must serve {} from cache", trace.name)
                }
                other => panic!("warm analyze failed: {other:?}"),
            }
        }
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    let warm_stats = warm_client.stats().expect("warm stats");
    assert_eq!(warm_stats.jobs_completed, 0, "warm restart must not replay");
    assert_eq!(
        warm_stats.cache_persist_hits as usize, cold_verdicts,
        "every warm verdict must come from the persisted cache"
    );
    warm.shutdown();
    warm.join();
    let _ = std::fs::remove_dir_all(&store_dir);

    // ---- fleet: the hot regime again, through a router fronting a
    // 3-node digest-sharded fleet ----
    let fleet_dir = dir.join(format!("serve-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fleet_dir);
    let fleet_nodes = 3usize;
    let addrs = reserve_addrs(fleet_nodes);
    let nodes: Vec<ServerHandle> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| a.clone())
                .collect();
            Server::start(
                ServerConfig::new(fleet_dir.join(format!("node-{i}")))
                    .addr(addr.clone())
                    .peers(peers)
                    .workers(clients.min(8))
                    .queue_cap(4 * clients.max(1)),
            )
            .expect("start fleet node")
        })
        .collect();
    let router = Router::start(RouterConfig::new(addrs)).expect("start router");
    let router_addr = router.addr();

    let mut fleet_client = Client::connect(router_addr).expect("connect fleet client");
    for trace in &corpus {
        let (digest, dedup) = submit(&mut fleet_client, &trace.bytes);
        assert_eq!(digest, trace.digest);
        assert!(!dedup, "first fleet submit of {} cannot dedup", trace.name);
    }
    for trace in &corpus {
        for &engine in &engines {
            match fleet_client
                .analyze_with_retry(trace.digest, engine, 100)
                .expect("fleet cold analyze")
            {
                Response::Verdict { .. } => {}
                other => panic!("fleet cold analyze failed: {other:?}"),
            }
        }
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(router_addr).expect("connect fleet hot client");
                for round in 0..rounds {
                    for trace in corpus_ref {
                        let engine = engines[(c + round) % engines.len()];
                        match client
                            .analyze_with_retry(trace.digest, engine, 100)
                            .expect("fleet hot analyze")
                        {
                            Response::Verdict { .. } => {}
                            other => panic!("fleet hot analyze failed: {other:?}"),
                        }
                    }
                }
            });
        }
    });
    let fleet_secs = t0.elapsed().as_secs_f64();

    let fleet_stats = fleet_client.stats().expect("fleet stats");
    // The router's merged exposition: node-stamped backend snapshots
    // plus its own counters. Cross-node sums must agree with the
    // merged STATS reply, and the hot phase must have reused pooled
    // backend connections instead of dialing per forward.
    let fleet_metrics = Snapshot::parse(&fleet_client.metrics().expect("fleet METRICS"))
        .expect("parse fleet METRICS exposition");
    assert_eq!(
        fleet_metrics.counter_family_total("cache_misses"),
        fleet_stats.cache_misses,
        "node-summed METRICS cache_misses must match merged STATS"
    );
    assert_eq!(
        fleet_metrics.counter_family_total("submits"),
        fleet_stats.submits,
        "node-summed METRICS submits must match merged STATS"
    );
    let fleet_pool_hits = fleet_metrics.counter_family_total("router_pool_hits");
    assert!(
        fleet_pool_hits > 0,
        "the fleet hot phase must reuse pooled backend connections"
    );
    assert_eq!(
        fleet_stats.store_traces as usize,
        corpus.len() * 2,
        "each trace lives on its primary and one replica"
    );
    assert_eq!(
        fleet_stats.cache_misses as usize, cold_verdicts,
        "only the fleet's cold analyzes may miss"
    );
    assert_eq!(fleet_stats.fetches, 0, "a healthy fleet never peer-fetches");
    assert!(fleet_stats.forwards > 0, "the router must be forwarding");
    match fleet_client.shutdown().expect("fleet shutdown") {
        Response::ShuttingDown => {}
        other => panic!("fleet shutdown failed: {other:?}"),
    }
    router.join();
    for node in nodes {
        node.join();
    }
    let _ = std::fs::remove_dir_all(&fleet_dir);

    // Memoization must have served the entire hot phase from the cache.
    assert_eq!(
        stats.cache_misses as usize, cold_verdicts,
        "only the cold phase may miss"
    );
    assert!(
        stats.cache_hits as usize >= hot_verdicts,
        "hot phase must be all cache hits"
    );
    assert_eq!(stats.store_traces as usize, corpus.len());
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64;

    let mut t = Table::new(&["phase", "requests", "secs", "req/s"]);
    for (phase, n, secs) in [
        ("cold submit", corpus.len(), submit_secs),
        ("cold analyze", cold_verdicts, cold_secs),
        ("hot analyze", hot_verdicts, hot_secs),
        ("resubmit", resubmit_count, resubmit_secs),
        ("warm restart", cold_verdicts, warm_secs),
        ("fleet hot (3n)", hot_verdicts, fleet_secs),
    ] {
        t.row(vec![
            phase.into(),
            n.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", n as f64 / secs),
        ]);
    }
    t.print();
    println!(
        "\ncorpus {} traces / {:.1} MiB, cache hit rate {}, {} dedup uploads",
        corpus.len(),
        corpus_bytes as f64 / (1 << 20) as f64,
        fmt_pct(hit_rate),
        stats.submit_dedup_hits,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"profile\": \"{}\",\n  \"clients\": {},\n  \"rounds\": {},\n  \"corpus_traces\": {},\n  \"corpus_bytes\": {},\n  \"cold_submit_secs\": {:.4},\n  \"cold_analyze_secs\": {:.4},\n  \"hot_analyze_secs\": {:.4},\n  \"resubmit_secs\": {:.4},\n  \"hot_verdicts_per_sec\": {:.1},\n  \"cache_hit_rate\": {:.4},\n  \"submit_dedup_hits\": {},\n  \"jobs_completed\": {},\n  \"jobs_rejected\": {},\n  \"warm_restart_secs\": {:.4},\n  \"warm_persist_hits\": {},\n  \"fleet_nodes\": {},\n  \"fleet_hot_secs\": {:.4},\n  \"fleet_hot_verdicts_per_sec\": {:.1},\n  \"fleet_forwards\": {},\n  \"fleet_pool_hits\": {},\n  \"fleet_store_traces\": {}\n}}\n",
        if small { "small" } else { "full" },
        clients,
        rounds,
        corpus.len(),
        corpus_bytes,
        submit_secs,
        cold_secs,
        hot_secs,
        resubmit_secs,
        hot_verdicts as f64 / hot_secs,
        hit_rate,
        stats.submit_dedup_hits,
        stats.jobs_completed,
        stats.jobs_rejected,
        warm_secs,
        warm_stats.cache_persist_hits,
        fleet_nodes,
        fleet_secs,
        hot_verdicts as f64 / fleet_secs,
        fleet_stats.forwards,
        fleet_pool_hits,
        fleet_stats.store_traces,
    );
    std::fs::write(&out, &json).expect("write result JSON");
    println!("wrote {}", out.display());
    println!(
        "headline: {:.0} cached verdicts/s across {clients} clients \
         ({:.0}/s through the 3-node fleet router)",
        hot_verdicts as f64 / hot_secs,
        hot_verdicts as f64 / fleet_secs
    );
}
