//! Ablation — lock-free vs lock-based check atomicity (Section 3.2).
//!
//! CLEAN keeps concurrent race checks sound *without* locking: write
//! checks publish epochs with compare-and-swap, and check/access ordering
//! (check-before-write, check-after-read) rules out RAW/WAR confusion.
//! The conventional alternative serializes checks with locks; the paper
//! cites prior work attributing more than 40% of total detection overhead
//! to that locking. This experiment swaps CLEAN's CAS scheme for a
//! striped per-check lock table and measures the difference.

use clean_bench::{env_reps, env_scale, env_threads, fmt_pct, fmt_x, geomean, measure, Table};
use clean_core::AtomicityMode;
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, run_benchmark, KernelParams};

fn main() {
    let threads = env_threads();
    let scale = env_scale();
    let reps = env_reps();
    println!("== Ablation: lock-free (CAS) vs per-check-locking atomicity ==");
    println!("({threads} threads, {scale:?} inputs)\n");

    let mut t = Table::new(&["benchmark", "lock-free", "per-check locks", "locking share"]);
    let (mut free, mut locked) = (Vec::new(), Vec::new());
    for b in race_free_benchmarks() {
        let time_with = |mode: AtomicityMode| {
            let (d, _) = measure(reps, || {
                let rt = CleanRuntime::new(
                    RuntimeConfig::new()
                        .heap_size(1 << 23)
                        .max_threads(16)
                        .det_sync(false)
                        .atomicity(mode),
                );
                run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
                    .expect("race-free benchmark must complete");
            });
            d.as_secs_f64()
        };
        let base = {
            let (d, _) = measure(reps, || {
                let rt =
                    CleanRuntime::new(RuntimeConfig::baseline().heap_size(1 << 23).max_threads(16));
                run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
                    .expect("race-free benchmark must complete");
            });
            d.as_secs_f64()
        };
        let s_free = time_with(AtomicityMode::LockFree) / base;
        let s_locked = time_with(AtomicityMode::PerCheckLocking) / base;
        free.push(s_free);
        locked.push(s_locked);
        // Fraction of the lock-based detection overhead that the locking
        // itself causes (the paper's ">40%" quantity).
        let share = ((s_locked - s_free) / (s_locked - 1.0).max(1e-9)).clamp(0.0, 1.0);
        t.row(vec![
            b.name.into(),
            fmt_x(s_free),
            fmt_x(s_locked),
            fmt_pct(share),
        ]);
    }
    let g_free = geomean(&free);
    let g_locked = geomean(&locked);
    t.row(vec![
        "geomean".into(),
        fmt_x(g_free),
        fmt_x(g_locked),
        fmt_pct(((g_locked - g_free) / (g_locked - 1.0).max(1e-9)).clamp(0.0, 1.0)),
    ]);
    t.print();
    println!("\npaper context: prior detectors attribute >40% of detection overhead to locking;");
    println!("CLEAN's CAS scheme avoids it entirely (Section 4.3).");
}
