//! Figure 6 — software-only CLEAN performance.
//!
//! Execution time under CLEAN normalized to the nondeterministic run,
//! with each mechanism also measured in isolation. The paper reports an
//! average 7.8x for full CLEAN, dominated by the 5.8x of precise WAW/RAW
//! detection; deterministic synchronization alone is cheap for most
//! benchmarks but visible for the sync-heavy fmm/radiosity/fluidanimate.
//!
//! The shape to check: detection >> det-sync everywhere; lu_cb/lu_ncb
//! worst (most shared-access-bound); Monte Carlo codes cheapest.

use clean_bench::{env_reps, env_scale, env_threads, fmt_x, geomean, measure, Table};
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, run_benchmark, BenchProfile, KernelParams, Scale};

fn run_config(
    b: &BenchProfile,
    threads: usize,
    scale: Scale,
    detection: bool,
    det_sync: bool,
    reps: usize,
) -> f64 {
    let (d, _) = measure(reps, || {
        let rt = CleanRuntime::new(
            RuntimeConfig::new()
                .heap_size(1 << 23)
                .max_threads(16)
                .detection(detection)
                .det_sync(det_sync),
        );
        run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
            .expect("race-free benchmark must complete");
    });
    d.as_secs_f64()
}

fn main() {
    let threads = env_threads();
    let scale = env_scale();
    let reps = env_reps();
    println!("== Figure 6: software-only CLEAN slowdown (normalized to nondeterministic run) ==");
    println!(
        "({threads} threads, {scale:?} inputs, best of {reps} runs; paper: 8 threads, native)\n"
    );

    let mut t = Table::new(&["benchmark", "base(ms)", "det-sync", "detection", "CLEAN"]);
    let (mut ds, mut det, mut full) = (Vec::new(), Vec::new(), Vec::new());
    for b in race_free_benchmarks() {
        let base = run_config(b, threads, scale, false, false, reps);
        let t_ds = run_config(b, threads, scale, false, true, reps) / base;
        let t_det = run_config(b, threads, scale, true, false, reps) / base;
        let t_full = run_config(b, threads, scale, true, true, reps) / base;
        ds.push(t_ds);
        det.push(t_det);
        full.push(t_full);
        t.row(vec![
            b.name.into(),
            format!("{:.1}", base * 1e3),
            fmt_x(t_ds),
            fmt_x(t_det),
            fmt_x(t_full),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        String::new(),
        fmt_x(geomean(&ds)),
        fmt_x(geomean(&det)),
        fmt_x(geomean(&full)),
    ]);
    t.print();
    println!("\npaper (avg): det-sync small, detection 5.8x, CLEAN 7.8x");
    println!(
        "measured geomeans: det-sync {}, detection {}, CLEAN {}",
        fmt_x(geomean(&ds)),
        fmt_x(geomean(&det)),
        fmt_x(geomean(&full))
    );
    println!("shape notes: detection slowdown tracks shared-access frequency (lu codes");
    println!("at the top); the paper's det-sync outliers (fmm/radiosity/fluidanimate)");
    println!("are the worst det-sync rows here too. On a single-core host the det-sync");
    println!("column is inflated — every Kendo turn pays an OS reschedule (see EXPERIMENTS.md).");
}
