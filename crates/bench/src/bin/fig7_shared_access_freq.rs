//! Figure 7 — the frequency of shared accesses.
//!
//! Shared accesses per second of the baseline (nondeterministic,
//! undetected) run. The paper's point: software detection cost tracks
//! this frequency, and lu_cb/lu_ncb — the two worst performers of
//! Figure 6 — access shared data far more frequently than the rest.

use clean_bench::{env_reps, env_scale, env_threads, measure, Table};
use clean_runtime::{CleanRuntime, RuntimeConfig};
use clean_workloads::{race_free_benchmarks, run_benchmark, KernelParams};

fn main() {
    let threads = env_threads();
    let scale = env_scale();
    let reps = env_reps();
    println!("== Figure 7: shared accesses per second of the baseline run ==");
    println!("({threads} threads, {scale:?} inputs)\n");

    let mut rows: Vec<(String, f64)> = Vec::new();
    for b in race_free_benchmarks() {
        let mut accesses = 0u64;
        let (d, _) = measure(reps, || {
            let rt =
                CleanRuntime::new(RuntimeConfig::baseline().heap_size(1 << 23).max_threads(16));
            run_benchmark(b, &rt, &KernelParams::new().threads(threads).scale(scale))
                .expect("race-free benchmark must complete");
            accesses = rt.stats().shared_accesses();
        });
        rows.push((b.name.to_string(), accesses as f64 / d.as_secs_f64()));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut t = Table::new(&["benchmark", "shared accesses/s (M)"]);
    for (name, rate) in &rows {
        t.row(vec![name.clone(), format!("{:.2}", rate / 1e6)]);
    }
    t.print();
    let top2: Vec<&str> = rows.iter().take(2).map(|(n, _)| n.as_str()).collect();
    println!(
        "\npaper shape: lu_cb and lu_ncb highest — measured top-2: {top2:?} ({})",
        if top2.iter().all(|n| n.starts_with("lu_")) {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}
