//! Fast-path ablation benchmark — the check-pipeline hot path, online
//! and offline.
//!
//! **Online**: multi-threaded checked-access throughput through the
//! detector's `check_*_with` entry points, ablating the fast-path knobs
//! (SFR write-set filter, thread-local shadow-page cache, sharded
//! statistics, deferred per-thread filter-hit stats) one at a time and
//! together, over two workload profiles:
//!
//! * `sfr_local` — a small per-thread working set rewritten many times
//!   per synchronization-free region (the redundancy the write filter
//!   targets); headline "checked-write throughput" number.
//! * `stream` — a sequential sweep over a working set larger than the
//!   filter, plus a per-thread hot accumulator rewritten every few
//!   accesses (the loop-carried sum every real sweep has) — the sweep
//!   itself defeats the filter, the accumulator is what it catches.
//!
//! **Plan**: checked-write throughput with a compiled static check plan
//! installed versus without, per action class — `plan_private` (whole
//! footprint provably elidable), `plan_stride` (range-coalesced filter
//! entries recover the filter-defeating sweep), `plan_batch` (wide
//! accesses through the chunked epoch-compare loop). Headline
//! `plan_speedup` is the `plan_private` ratio.
//!
//! **Obs**: the observability-bridge ablation — the `sfr_local` shape
//! under the all-on knobs with and without a `DetectorObs` counters
//! bundle attached. The bridge mirrors only at SFR drains, so attaching
//! it must cost under 2% throughput; detached it is one untaken branch
//! per drain (0%, asserted by construction, reported for the record).
//!
//! **Offline**: a synthetic multi-thread trace (~1 GiB at the full
//! profile) replayed through the CLEAN engine two ways — the naive
//! baseline (`replay_file_sharded`: one worker per shard, each decoding
//! the whole file) versus the work-stealing streaming pipeline
//! (`replay_file_stealing`: chunk-table parallel decode off the shared
//! mmap, pre-sharded batches fanned to per-shard queues). A decode-worker
//! sweep (1, 2, 4) times the pipeline at each width; every run must
//! report identical races.
//!
//! Results land in `BENCH_hotpath.json` (override with `--out`).
//! `--check-baseline <file>` re-reads a checked-in result and fails the
//! run (exit 1) if either speedup ratio regressed by more than 20%.
//! `--small` selects the quick CI profile. `CLEAN_THREADS` and
//! `CLEAN_REPS` scale the online part as for the other experiments.

use clean_bench::{env_reps, env_threads, fmt_pct, fmt_x, measure, trace_dir, Table};
use clean_core::{
    CheckPlan, CleanDetector, CompiledPlan, DetectorConfig, DetectorObs, PlanAction, PlanEntry,
    ThreadCheckState, ThreadId, TraceEvent, VectorClock, Witness,
};
use clean_trace::{
    replay_file_sharded, replay_file_stealing, replay_file_stealing_with, scan_trace, EngineKind,
    TraceWriter,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One knob setting of the online ablation.
struct KnobConfig {
    name: &'static str,
    write_filter: bool,
    page_cache: bool,
    sharded_stats: bool,
    deferred_stats: bool,
}

const CONFIGS: [KnobConfig; 6] = [
    KnobConfig {
        name: "all_off",
        write_filter: false,
        page_cache: false,
        sharded_stats: false,
        deferred_stats: false,
    },
    KnobConfig {
        name: "filter",
        write_filter: true,
        page_cache: false,
        sharded_stats: false,
        deferred_stats: false,
    },
    KnobConfig {
        // Filter hits with the three stats bumps batched into the
        // per-thread state instead of shared atomics: isolates the cost
        // of the atomics on the otherwise share-nothing hit path.
        name: "filter+deferred",
        write_filter: true,
        page_cache: false,
        sharded_stats: false,
        deferred_stats: true,
    },
    KnobConfig {
        name: "page_cache",
        write_filter: false,
        page_cache: true,
        sharded_stats: false,
        deferred_stats: false,
    },
    KnobConfig {
        name: "sharded_stats",
        write_filter: false,
        page_cache: false,
        sharded_stats: true,
        deferred_stats: false,
    },
    KnobConfig {
        name: "all_on",
        write_filter: true,
        page_cache: true,
        sharded_stats: true,
        deferred_stats: true,
    },
];

/// An online workload shape. Each thread owns a disjoint `region`-byte
/// slice of the heap and, per synchronization-free region, writes its
/// `words` 8-byte slots `revisits` times before incrementing its epoch.
struct Profile {
    name: &'static str,
    /// Per-thread heap slice (also the base stride between threads).
    region: usize,
    /// Words touched per sweep.
    words: usize,
    /// Bytes per access.
    access: usize,
    /// Sweeps per SFR: >1 creates the redundancy the filter exploits.
    revisits: usize,
    /// Every `hot_every` sweep accesses, rewrite the thread's first word
    /// — the loop-carried accumulator. 0 disables it. This is what gives
    /// the filter something to catch on a streaming sweep.
    hot_every: usize,
}

/// `sfr_local` fits the 128-slot filter without collisions (64 16-byte
/// words inside the thread's own 4 KiB shadow page — the filter indexes
/// by `addr >> 3`, so wider strides must stay under 1 KiB of slots);
/// `stream` sweeps 32 KiB of 8-byte words so every filter slot is
/// evicted long before it is revisited.
const PROFILES: [Profile; 2] = [
    Profile {
        name: "sfr_local",
        region: 4096,
        words: 64,
        access: 16,
        revisits: 32,
        hot_every: 0,
    },
    Profile {
        name: "stream",
        region: 32768,
        words: 4096,
        access: 8,
        revisits: 1,
        hot_every: 8,
    },
];

/// Measured numbers for one (profile, config) cell.
struct CellResult {
    maccesses_per_sec: f64,
    filter_hit_rate: f64,
}

/// Runs one profile under one knob config and returns the throughput of
/// the best of `reps` timed repetitions. When `obs_registry` is set, a
/// [`DetectorObs`] counters bundle on that registry is attached to the
/// detector (the observability-ablation cells); `None` leaves the
/// detector exactly as shipped.
fn run_online_cell(
    profile: &Profile,
    cfg: &KnobConfig,
    threads: usize,
    ops_per_thread: u64,
    reps: usize,
    obs_registry: Option<&clean_obs::Registry>,
) -> CellResult {
    let sweep_ops = profile.words * profile.revisits;
    let hot_ops = sweep_ops.checked_div(profile.hot_every).unwrap_or(0);
    let phase_ops = (sweep_ops + hot_ops) as u64;
    let phases = (ops_per_thread / phase_ops).max(1);
    let accesses = phases * phase_ops * threads as u64;
    let (best, snap) = measure(reps, || {
        let mut det = CleanDetector::new(
            threads * profile.region,
            DetectorConfig::new()
                .write_filter(cfg.write_filter)
                .page_cache(cfg.page_cache)
                .sharded_stats(cfg.sharded_stats)
                .deferred_stats(cfg.deferred_stats),
        );
        if let Some(registry) = obs_registry {
            det.attach_obs(DetectorObs::new(registry));
        }
        let det = &det;
        let layout = det.layout();
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    let tid = ThreadId::new(t as u16);
                    let mut vc = VectorClock::new(threads, layout);
                    let mut state = ThreadCheckState::new();
                    let base = t * profile.region;
                    for _ in 0..phases {
                        let mut since_hot = 0;
                        for _ in 0..profile.revisits {
                            for w in 0..profile.words {
                                det.check_write_with(
                                    &vc,
                                    tid,
                                    base + w * profile.access,
                                    profile.access,
                                    &mut state,
                                )
                                .expect("disjoint per-thread regions are race-free");
                                since_hot += 1;
                                if profile.hot_every > 0 && since_hot == profile.hot_every {
                                    // The loop-carried accumulator: the
                                    // thread's first word, rewritten over
                                    // and over — filter food even when
                                    // the sweep itself never revisits.
                                    since_hot = 0;
                                    det.check_write_with(&vc, tid, base, 8, &mut state)
                                        .expect("own accumulator is race-free");
                                }
                            }
                        }
                        // SFR boundary: epoch bump + stats drain + filter
                        // flush, as the runtime does on every release.
                        vc.increment(tid).expect("phase count below rollover");
                        det.drain_check_state(tid, &mut state);
                        state.on_epoch_increment();
                    }
                });
            }
        });
        det.stats()
    });
    assert_eq!(
        snap.total_checked(),
        accesses,
        "every access must be checked exactly once regardless of knobs"
    );
    assert_eq!(snap.races_reported, 0, "workload is race-free");
    CellResult {
        maccesses_per_sec: accesses as f64 / best.as_secs_f64() / 1e6,
        filter_hit_rate: snap.filter_hits as f64 / snap.total_checked() as f64,
    }
}

/// One static-check-plan workload shape: each thread sweeps its own
/// disjoint `region`-byte slice `revisits` times per SFR, and the whole
/// footprint is covered by plan entries of one action class. Throughput
/// is measured with the plan installed versus without (both under the
/// `all_on` fast-path knobs), isolating what each plan action buys.
struct PlanProfile {
    name: &'static str,
    /// Per-thread heap slice (also the base stride between threads).
    region: usize,
    /// Words touched per sweep.
    words: usize,
    /// Bytes per access.
    access: usize,
    /// Sweeps per SFR.
    revisits: usize,
    /// The action class covering every thread's region.
    action: PlanAction,
}

/// `plan_private` is the thread-private-heavy shape (every check provably
/// elidable); `plan_stride` is the filter-defeating sequential sweep the
/// range-coalesced filter entries recover (32 KiB of 8-byte words evicts
/// the 128 direct-mapped slots long before a revisit); `plan_batch`
/// routes wide accesses through the chunked epoch-compare loop.
const PLAN_PROFILES: [PlanProfile; 3] = [
    PlanProfile {
        name: "plan_private",
        region: 4096,
        words: 64,
        access: 16,
        revisits: 32,
        action: PlanAction::Elide,
    },
    PlanProfile {
        name: "plan_stride",
        region: 32768,
        words: 4096,
        access: 8,
        revisits: 4,
        action: PlanAction::Coalesce,
    },
    PlanProfile {
        name: "plan_batch",
        region: 32768,
        words: 512,
        access: 64,
        revisits: 4,
        action: PlanAction::Batch,
    },
];

/// Builds the compiled plan covering every thread's region with the
/// profile's action class (elide entries carry the per-owner witness).
fn plan_for(profile: &PlanProfile, threads: usize) -> Arc<CompiledPlan> {
    let entries = (0..threads)
        .map(|t| {
            let lo = t * profile.region;
            let witness = match profile.action {
                PlanAction::Elide => Some(Witness {
                    owner: t as u32,
                    observed: (profile.words * profile.revisits) as u64,
                    foreign: 0,
                }),
                _ => None,
            };
            PlanEntry {
                lo,
                hi: lo + profile.region,
                action: profile.action,
                witness,
            }
        })
        .collect();
    let compiled = CheckPlan {
        profile: None,
        entries,
    }
    .compile()
    .expect("bench plans carry sound witnesses");
    Arc::new(compiled)
}

/// Runs one plan profile with or without the plan installed (all other
/// fast-path knobs on) and returns Macc/s of the best of `reps` runs.
fn run_plan_cell(
    profile: &PlanProfile,
    plan: Option<Arc<CompiledPlan>>,
    threads: usize,
    ops_per_thread: u64,
    reps: usize,
) -> f64 {
    let sweep_ops = (profile.words * profile.revisits) as u64;
    let phases = (ops_per_thread / sweep_ops).max(1);
    let accesses = phases * sweep_ops * threads as u64;
    let (best, snap) = measure(reps, || {
        let det = CleanDetector::new(
            threads * profile.region,
            DetectorConfig::new().check_plan(plan.clone()),
        );
        let det = &det;
        let layout = det.layout();
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    let tid = ThreadId::new(t as u16);
                    let mut vc = VectorClock::new(threads, layout);
                    let mut state = ThreadCheckState::new();
                    let base = t * profile.region;
                    for _ in 0..phases {
                        for _ in 0..profile.revisits {
                            for w in 0..profile.words {
                                det.check_write_with(
                                    &vc,
                                    tid,
                                    base + w * profile.access,
                                    profile.access,
                                    &mut state,
                                )
                                .expect("disjoint per-thread regions are race-free");
                            }
                        }
                        vc.increment(tid).expect("phase count below rollover");
                        det.drain_check_state(tid, &mut state);
                        state.on_epoch_increment();
                    }
                });
            }
        });
        det.stats()
    });
    // Elided checks are skipped by design, never lost: what was not
    // checked must be accounted for by the elision counter.
    assert_eq!(
        snap.total_checked() + snap.plan_elided,
        accesses,
        "{}: every access is either checked or provably elided",
        profile.name
    );
    assert_eq!(snap.races_reported, 0, "workload is race-free");
    if let Some(p) = &plan {
        match profile.action {
            PlanAction::Elide => assert_eq!(
                snap.plan_elided, accesses,
                "{}: the whole footprint is elidable",
                profile.name
            ),
            PlanAction::Batch => assert!(
                snap.plan_batched > 0,
                "{}: batch spans must route through the chunked compare",
                profile.name
            ),
            PlanAction::Coalesce => assert!(
                snap.filter_hits > 0,
                "{}: coalesced ranges must answer revisited sweeps",
                profile.name
            ),
        }
        let _ = p;
    }
    accesses as f64 / best.as_secs_f64() / 1e6
}

/// Deterministic synthetic trace for the offline comparison: `threads`
/// workers each sweep a private 64 KiB region (writes with a 25% read
/// mix), release their own lock every 64 ops and a shared lock every
/// 4096 ops, plus one seeded WAW pair early on so the race lists the two
/// replay engines must agree on are non-empty.
fn generate_events(
    total: u64,
    threads: usize,
    mut sink: impl FnMut(&TraceEvent) -> io::Result<()>,
) -> io::Result<()> {
    const REGION: usize = 64 * 1024;
    const STRIDE: usize = 1 << 20;
    const RACY_ADDR: usize = 8 << 20;
    let mut emitted = 0u64;
    let mut k = vec![0u64; threads];
    let mut racy_done = false;
    let mut emit = |ev: &TraceEvent, emitted: &mut u64| -> io::Result<bool> {
        if *emitted >= total {
            return Ok(false);
        }
        sink(ev)?;
        *emitted += 1;
        Ok(true)
    };
    loop {
        for (t, counter) in k.iter_mut().enumerate() {
            let tid = ThreadId::new(t as u16);
            let step = *counter;
            *counter += 1;
            if !racy_done && emitted > 512 {
                // Unordered same-address writes by two threads: a WAW
                // race every CLEAN replay must flag identically.
                racy_done = true;
                let a = TraceEvent::Write {
                    tid: ThreadId::new(0),
                    addr: RACY_ADDR,
                    size: 8,
                };
                let b = TraceEvent::Write {
                    tid: ThreadId::new(1),
                    addr: RACY_ADDR,
                    size: 8,
                };
                if !emit(&a, &mut emitted)? || !emit(&b, &mut emitted)? {
                    return Ok(());
                }
            }
            if step > 0 && step.is_multiple_of(4096) {
                let lock = 1000;
                if !emit(&TraceEvent::Acquire { tid, lock }, &mut emitted)?
                    || !emit(&TraceEvent::Release { tid, lock }, &mut emitted)?
                {
                    return Ok(());
                }
            } else if step > 0 && step.is_multiple_of(64) {
                let lock = t as u32;
                if !emit(&TraceEvent::Acquire { tid, lock }, &mut emitted)?
                    || !emit(&TraceEvent::Release { tid, lock }, &mut emitted)?
                {
                    return Ok(());
                }
            }
            let addr = t * STRIDE + (step as usize * 4) % REGION;
            let ev = if step % 4 == 3 {
                TraceEvent::Read { tid, addr, size: 4 }
            } else {
                TraceEvent::Write { tid, addr, size: 4 }
            };
            if !emit(&ev, &mut emitted)? {
                return Ok(());
            }
        }
    }
}

/// Writes a synthetic trace of exactly `events` events to `path` and
/// returns the stream byte size.
fn write_synthetic_trace(path: &Path, events: u64, threads: usize) -> io::Result<u64> {
    let mut w = TraceWriter::create(path).map_err(io::Error::other)?;
    generate_events(events, threads, |ev| w.write_event(ev))?;
    Ok(w.finish()?.bytes)
}

/// Offline comparison results.
struct OfflineResult {
    events: u64,
    bytes: u64,
    shards: usize,
    workers: usize,
    naive_secs: f64,
    stealing_secs: f64,
    batches: u64,
    steals: u64,
    used_mmap: bool,
    /// Decode workers the headline stealing run actually used.
    decode_workers: u64,
    /// Whether the trace's chunk table drove parallel decode.
    used_table: bool,
    /// `(decode_workers, seconds)` for the decode-width sweep.
    decode_sweep: Vec<(usize, f64)>,
    races_found: usize,
    races_agree: bool,
}

fn run_offline(target_bytes: u64, threads: usize) -> OfflineResult {
    let shards = 8;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, shards);
    let dir = trace_dir();
    std::fs::create_dir_all(&dir).expect("create trace store directory");

    // Probe the encoder's bytes/event on a prefix, then size the real
    // trace to the byte target.
    let probe_path = dir.join("hotpath-probe.cltr");
    const PROBE_EVENTS: u64 = 1 << 20;
    let probe_bytes =
        write_synthetic_trace(&probe_path, PROBE_EVENTS, threads).expect("write probe trace");
    std::fs::remove_file(&probe_path).ok();
    let bpe = probe_bytes as f64 / PROBE_EVENTS as f64;
    let events = ((target_bytes as f64 / bpe) as u64).max(PROBE_EVENTS);

    let path = dir.join("hotpath-synthetic.cltr");
    println!(
        "  generating {events} events (~{:.0} MiB at {bpe:.1} B/event) ...",
        events as f64 * bpe / (1 << 20) as f64
    );
    let bytes = write_synthetic_trace(&path, events, threads).expect("write synthetic trace");

    let scan = scan_trace(&path).expect("scan synthetic trace");
    assert_eq!(scan.events, events);

    println!("  naive per-shard full-decode replay ({shards} shards) ...");
    let t0 = Instant::now();
    let (naive_races, _) = replay_file_sharded(&path, EngineKind::Clean, shards, scan.threads)
        .expect("naive sharded replay");
    let naive_secs = t0.elapsed().as_secs_f64();

    println!("  work-stealing streaming replay ({shards} shards, {workers} workers) ...");
    let t0 = Instant::now();
    let (steal_races, stats) =
        replay_file_stealing(&path, EngineKind::Clean, shards, workers, scan.threads)
            .expect("work-stealing replay");
    let stealing_secs = t0.elapsed().as_secs_f64();

    let races_agree = naive_races == steal_races;
    assert!(races_agree, "offline replay verdicts diverged");
    assert!(
        !steal_races.is_empty(),
        "the seeded WAW pair must be reported"
    );

    // Decode-width sweep over the chunk-table parallel decoder: same
    // replay, different numbers of decode workers, identical verdicts.
    let mut decode_sweep = Vec::new();
    for dw in [1usize, 2, 4] {
        println!("  stealing replay with {dw} decode worker(s) ...");
        let t0 = Instant::now();
        let (races, s) =
            replay_file_stealing_with(&path, EngineKind::Clean, shards, workers, dw, scan.threads)
                .expect("decode-sweep replay");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(races, steal_races, "decode sweep at {dw} diverged");
        assert!(s.used_table, "synthetic trace must carry a chunk table");
        decode_sweep.push((dw, secs));
    }

    std::fs::remove_file(&path).ok();

    OfflineResult {
        events,
        bytes,
        shards,
        workers,
        naive_secs,
        stealing_secs,
        batches: stats.batches,
        steals: stats.steals,
        used_mmap: stats.used_mmap,
        decode_workers: stats.decode_workers,
        used_table: stats.used_table,
        decode_sweep,
        races_found: steal_races.len(),
        races_agree,
    }
}

/// Extracts the first `"key": <number>` occurrence from a JSON string —
/// enough structure awareness for the flat keys this binary emits.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut small = false;
    let mut out = PathBuf::from("BENCH_hotpath.json");
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--check-baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().expect("--check-baseline needs a path"),
                ));
            }
            other => {
                eprintln!("unknown flag {other}; usage: bench_hotpath [--small] [--out FILE] [--check-baseline FILE]");
                std::process::exit(2);
            }
        }
    }

    let threads = env_threads();
    let reps = env_reps();
    let ops_per_thread: u64 = if small { 1 << 18 } else { 1 << 22 };
    let offline_bytes: u64 = if small { 24 << 20 } else { 1 << 30 };
    println!(
        "== bench_hotpath: fast-path ablation ({} profile, {threads} threads, best of {reps}) ==\n",
        if small { "small" } else { "full" }
    );

    // ---- online ablation ----
    let mut json_profiles = Vec::new();
    let mut online_speedup = 0.0;
    for profile in &PROFILES {
        println!("online profile `{}`:", profile.name);
        let mut t = Table::new(&["config", "Macc/s", "filter hits", "vs all_off"]);
        let mut cells = Vec::new();
        let mut base_rate = 0.0;
        for cfg in &CONFIGS {
            let cell = run_online_cell(profile, cfg, threads, ops_per_thread, reps, None);
            // Every profile carries *some* write redundancy (revisits or
            // the hot accumulator): a filter that never engages means the
            // knob is not wired through, not a hostile workload.
            if cfg.write_filter {
                assert!(
                    cell.filter_hit_rate > 0.0,
                    "{}/{}: write filter enabled but never hit",
                    profile.name,
                    cfg.name
                );
            }
            if cfg.name == "all_off" {
                base_rate = cell.maccesses_per_sec;
            }
            t.row(vec![
                cfg.name.into(),
                format!("{:.1}", cell.maccesses_per_sec),
                fmt_pct(cell.filter_hit_rate),
                fmt_x(cell.maccesses_per_sec / base_rate),
            ]);
            cells.push((cfg.name, cell));
        }
        t.print();
        println!();
        let all_on = cells.last().expect("all_on is last").1.maccesses_per_sec;
        let speedup = all_on / base_rate;
        if profile.name == "sfr_local" {
            online_speedup = speedup;
        }
        let cfg_json: Vec<String> = cells
            .iter()
            .map(|(name, c)| {
                format!(
                    "{{\"name\": \"{name}\", \"maccesses_per_sec\": {:.3}, \"filter_hit_rate\": {:.4}}}",
                    c.maccesses_per_sec, c.filter_hit_rate
                )
            })
            .collect();
        json_profiles.push(format!(
            "    {{\"name\": \"{}\", \"accesses_per_thread\": {}, \"speedup_all_on\": {:.3}, \"configs\": [\n      {}\n    ]}}",
            profile.name,
            ops_per_thread,
            speedup,
            cfg_json.join(",\n      ")
        ));
    }

    // ---- observability ablation ----
    // The detector obs bridge mirrors counters only at SFR drains (and
    // race reports), never per access, so attaching it must cost under
    // 2% on the drain-heaviest shape; detached, the check path is the
    // shipped code plus one untaken branch per drain — 0% by
    // construction, reported as such.
    println!("observability bridge (obs-on vs obs-off, sfr_local all_on knobs):");
    let all_on = CONFIGS.last().expect("all_on is last");
    let obs_registry = clean_obs::Registry::new();
    // The true cost is a handful of counter ops per multi-thousand-access
    // SFR drain — far below run-to-run machine drift. Alternate the two
    // arms across rounds and take each arm's best so slow frequency or
    // thermal drift hits both sides equally instead of whichever arm ran
    // second.
    let mut obs_off = run_online_cell(&PROFILES[0], all_on, threads, ops_per_thread, reps, None);
    let mut obs_on = run_online_cell(
        &PROFILES[0],
        all_on,
        threads,
        ops_per_thread,
        reps,
        Some(&obs_registry),
    );
    for _ in 1..3 {
        let off = run_online_cell(&PROFILES[0], all_on, threads, ops_per_thread, reps, None);
        if off.maccesses_per_sec > obs_off.maccesses_per_sec {
            obs_off = off;
        }
        let on = run_online_cell(
            &PROFILES[0],
            all_on,
            threads,
            ops_per_thread,
            reps,
            Some(&obs_registry),
        );
        if on.maccesses_per_sec > obs_on.maccesses_per_sec {
            obs_on = on;
        }
    }
    let obs_snap = obs_registry.snapshot();
    assert!(
        obs_snap.counter("detector_sfr_drains", &[]).unwrap_or(0) > 0,
        "obs-on cell must actually mirror drains into the registry"
    );
    // Best-of over interleaved rounds already filters scheduler noise;
    // any residual negative cost is noise, clamp it.
    let obs_cost = (1.0 - obs_on.maccesses_per_sec / obs_off.maccesses_per_sec).max(0.0);
    println!(
        "  obs-off {:.1} Macc/s vs obs-on {:.1} Macc/s -> {:.2}% attach cost (budget 2%), 0% detached\n",
        obs_off.maccesses_per_sec,
        obs_on.maccesses_per_sec,
        obs_cost * 100.0
    );
    assert!(
        obs_cost < 0.02,
        "attaching DetectorObs cost {:.2}% throughput, over the 2% budget",
        obs_cost * 100.0
    );

    // ---- static check-plan ablation ----
    println!("static check plan (plan-on vs plan-off, all_on knobs):");
    let mut t = Table::new(&["profile", "plan-off Macc/s", "plan-on Macc/s", "speedup"]);
    let mut json_plans = Vec::new();
    let mut plan_speedup = 0.0;
    for profile in &PLAN_PROFILES {
        let plan = plan_for(profile, threads);
        let off_rate = run_plan_cell(profile, None, threads, ops_per_thread, reps);
        let on_rate = run_plan_cell(profile, Some(plan), threads, ops_per_thread, reps);
        let speedup = on_rate / off_rate;
        if profile.name == "plan_private" {
            plan_speedup = speedup;
        }
        t.row(vec![
            profile.name.into(),
            format!("{off_rate:.1}"),
            format!("{on_rate:.1}"),
            fmt_x(speedup),
        ]);
        json_plans.push(format!(
            "    {{\"name\": \"{}\", \"plan_off_maccesses_per_sec\": {off_rate:.3}, \"plan_on_maccesses_per_sec\": {on_rate:.3}, \"speedup\": {speedup:.3}}}",
            profile.name
        ));
    }
    t.print();
    println!();

    // ---- offline replay comparison ----
    println!("offline replay (CLEAN engine):");
    let off = run_offline(offline_bytes, 4);
    let offline_speedup = off.naive_secs / off.stealing_secs;
    println!(
        "  naive {:.2}s vs stealing {:.2}s -> {} ({} events, {:.0} MiB, {} batches, {} steals, {}, {})\n",
        off.naive_secs,
        off.stealing_secs,
        fmt_x(offline_speedup),
        off.events,
        off.bytes as f64 / (1 << 20) as f64,
        off.batches,
        off.steals,
        if off.used_mmap { "mmap" } else { "buffered" },
        if off.used_table {
            format!("table decode x{}", off.decode_workers)
        } else {
            "sequential decode".to_string()
        },
    );
    let mut sweep_at_4 = 0.0;
    for &(dw, secs) in &off.decode_sweep {
        let speedup = off.naive_secs / secs;
        println!(
            "  decode sweep: {dw} worker(s) {secs:.2}s -> {}",
            fmt_x(speedup)
        );
        if dw == 4 {
            sweep_at_4 = speedup;
        }
    }
    println!();
    if !small {
        // The pre-table pipeline peaked at 1.57x on this trace; the
        // chunk-table decoder must beat that, not just match it.
        assert!(
            sweep_at_4 > 1.57,
            "offline speedup at 4 decode workers ({}) fell below the 1.57x pre-table baseline",
            fmt_x(sweep_at_4)
        );
    }

    // ---- JSON report ----
    let sweep_json: Vec<String> = off
        .decode_sweep
        .iter()
        .map(|&(dw, secs)| {
            format!(
                "{{\"decode_workers\": {dw}, \"secs\": {secs:.3}, \"speedup\": {:.3}}}",
                off.naive_secs / secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"hotpath\",\n  \"profile\": \"{}\",\n  \"threads\": {},\n  \"reps\": {},\n  \"online_speedup\": {:.3},\n  \"offline_speedup\": {:.3},\n  \"plan_speedup\": {:.3},\n  \"obs\": {{\n    \"off_maccesses_per_sec\": {:.3},\n    \"on_maccesses_per_sec\": {:.3},\n    \"on_cost\": {:.4},\n    \"off_cost\": 0.0\n  }},\n  \"verdicts_diverged\": {},\n  \"online_profiles\": [\n{}\n  ],\n  \"plan_profiles\": [\n{}\n  ],\n  \"offline\": {{\n    \"events\": {},\n    \"bytes\": {},\n    \"shards\": {},\n    \"workers\": {},\n    \"decode_workers\": {},\n    \"used_table\": {},\n    \"naive_secs\": {:.3},\n    \"stealing_secs\": {:.3},\n    \"batches\": {},\n    \"steals\": {},\n    \"used_mmap\": {},\n    \"races_found\": {},\n    \"races_agree\": {},\n    \"decode_sweep\": [\n      {}\n    ]\n  }}\n}}\n",
        if small { "small" } else { "full" },
        threads,
        reps,
        online_speedup,
        offline_speedup,
        plan_speedup,
        obs_off.maccesses_per_sec,
        obs_on.maccesses_per_sec,
        obs_cost,
        !off.races_agree,
        json_profiles.join(",\n"),
        json_plans.join(",\n"),
        off.events,
        off.bytes,
        off.shards,
        off.workers,
        off.decode_workers,
        off.used_table,
        off.naive_secs,
        off.stealing_secs,
        off.batches,
        off.steals,
        off.used_mmap,
        off.races_found,
        off.races_agree,
        sweep_json.join(",\n      "),
    );
    std::fs::write(&out, &json).expect("write result JSON");
    println!("wrote {}", out.display());
    println!(
        "headline: online (sfr_local all_on vs all_off) {}, offline (stealing+mmap vs naive) {}, plan (plan_private on vs off) {}, obs attach cost {:.2}%",
        fmt_x(online_speedup),
        fmt_x(offline_speedup),
        fmt_x(plan_speedup),
        obs_cost * 100.0
    );

    // ---- regression gate ----
    if let Some(base) = baseline {
        let text = std::fs::read_to_string(&base).expect("read baseline JSON");
        let base_online = json_f64(&text, "online_speedup").expect("baseline online_speedup");
        let base_offline = json_f64(&text, "offline_speedup").expect("baseline offline_speedup");
        let base_plan = json_f64(&text, "plan_speedup").expect("baseline plan_speedup");
        let mut failed = false;
        for (what, now, was) in [
            ("online_speedup", online_speedup, base_online),
            ("offline_speedup", offline_speedup, base_offline),
            ("plan_speedup", plan_speedup, base_plan),
        ] {
            let floor = was * 0.8;
            let verdict = if now < floor { "REGRESSED" } else { "ok" };
            println!(
                "baseline check {what}: now {} vs baseline {} (floor {}) -> {verdict}",
                fmt_x(now),
                fmt_x(was),
                fmt_x(floor)
            );
            failed |= now < floor;
        }
        if failed {
            eprintln!(
                "speedup regressed by more than 20% against {}",
                base.display()
            );
            std::process::exit(1);
        }
    }
}
