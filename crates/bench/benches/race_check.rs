//! Criterion microbenchmarks of the CLEAN race check (the per-access cost
//! the software slowdown of Figure 6 is made of): single- and multi-byte
//! checks, with and without the Section 4.4 vectorization, plus the
//! vector-clock and shadow-memory primitives.

use clean_core::{
    CleanDetector, DetectorConfig, Epoch, EpochLayout, ShadowMemory, ThreadId, VectorClock,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_checks(c: &mut Criterion) {
    let layout = EpochLayout::paper_default();
    let mut vc = VectorClock::new(8, layout);
    vc.increment(ThreadId::new(0)).unwrap();
    let t0 = ThreadId::new(0);

    let mut g = c.benchmark_group("race_check");
    for (name, vectorized, size) in [
        ("write_u8", true, 1usize),
        ("write_u32_vec", true, 4),
        ("write_u64_vec", true, 8),
        ("write_u64_novec", false, 8),
    ] {
        let det = CleanDetector::new(1 << 16, DetectorConfig::new().vectorized(vectorized));
        // Pre-publish so the steady state skips updates (common case).
        det.check_write(&vc, t0, 0, size).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| det.check_write(black_box(&vc), t0, black_box(0), size))
        });
    }
    for (name, vectorized) in [("read_u64_vec", true), ("read_u64_novec", false)] {
        let det = CleanDetector::new(1 << 16, DetectorConfig::new().vectorized(vectorized));
        det.check_write(&vc, t0, 0, 8).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| det.check_read(black_box(&vc), t0, black_box(0), 8))
        });
    }
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let layout = EpochLayout::paper_default();
    let mut g = c.benchmark_group("primitives");
    g.bench_function("vc_join_8", |b| {
        let mut a = VectorClock::new(8, layout);
        let mut other = VectorClock::new(8, layout);
        other.increment(ThreadId::new(3)).unwrap();
        b.iter(|| a.join(black_box(&other)));
    });
    g.bench_function("vc_races_with", |b| {
        let vc = VectorClock::new(8, layout);
        let e = layout.pack(ThreadId::new(2), 5);
        b.iter(|| vc.races_with(black_box(e)));
    });
    g.bench_function("shadow_load", |b| {
        let s = ShadowMemory::new(1 << 16);
        s.store(64, Epoch::from_raw(7));
        b.iter(|| s.load(black_box(64)));
    });
    g.bench_function("shadow_cas", |b| {
        let s = ShadowMemory::new(1 << 16);
        b.iter_batched(
            || (),
            |_| {
                let cur = s.load(64);
                let _ = s.compare_exchange(64, cur, Epoch::from_raw(cur.raw().wrapping_add(1)));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_checks, bench_primitives);
criterion_main!(benches);
