//! Criterion comparison of per-event analysis cost across detector
//! algorithms: CLEAN (WAW/RAW epochs only) vs FastTrack (full precise)
//! vs the classic two-vector-clock detector vs the TSan-like imprecise
//! detector — the Section 7 cost argument in microbenchmark form.
//!
//! Two inputs: a synthetic lock-disciplined trace, and a recorded racy
//! dedup execution pulled from the persistent trace store
//! (`CLEAN_TRACE_DIR`) — recorded once, replayed on every run.

use clean_baselines::{
    CleanEngine, FastTrack, TraceDetector, TraceEvent, TsanLike, VcFullDetector,
};
use clean_bench::cached_kernel_trace;
use clean_core::ThreadId;
use clean_trace::{required_threads, RecordOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A lock-disciplined trace with heavy read sharing — the pattern whose
/// WAR checks cost FastTrack its read vector clocks.
fn make_trace(events: usize, threads: u16) -> Vec<TraceEvent> {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut trace = Vec::with_capacity(events);
    for _ in 0..events {
        let tid = ThreadId::new(rng.gen_range(0..threads));
        let addr = rng.gen_range(0..256usize) * 4;
        match rng.gen_range(0..10u8) {
            0 => trace.push(TraceEvent::Acquire {
                tid,
                lock: rng.gen_range(0..4),
            }),
            1 => trace.push(TraceEvent::Release {
                tid,
                lock: rng.gen_range(0..4),
            }),
            2..=4 => trace.push(TraceEvent::Write { tid, addr, size: 4 }),
            _ => trace.push(TraceEvent::Read { tid, addr, size: 4 }),
        }
    }
    trace
}

fn bench_detectors(c: &mut Criterion) {
    let trace = make_trace(4096, 8);
    let mut g = c.benchmark_group("trace_detectors");
    g.bench_function("clean", |b| {
        let mut d = CleanEngine::new(8);
        b.iter(|| {
            d.reset();
            for e in &trace {
                black_box(d.process(e));
            }
        })
    });
    g.bench_function("fasttrack", |b| {
        let mut d = FastTrack::new(8);
        b.iter(|| {
            d.reset();
            for e in &trace {
                black_box(d.process(e));
            }
        })
    });
    g.bench_function("vc_full", |b| {
        let mut d = VcFullDetector::new(8);
        b.iter(|| {
            d.reset();
            for e in &trace {
                black_box(d.process(e));
            }
        })
    });
    g.bench_function("tsan_like", |b| {
        let mut d = TsanLike::new(8);
        b.iter(|| {
            d.reset();
            for e in &trace {
                black_box(d.process(e));
            }
        })
    });
    g.finish();
}

/// Same comparison over a real recorded execution: the stored racy dedup
/// trace (byte-granular accesses, pipeline synchronization).
fn bench_detectors_stored(c: &mut Criterion) {
    let trace = cached_kernel_trace(
        "dedup",
        &RecordOptions {
            threads: 4,
            racy: true,
            seed: 7,
        },
    );
    let threads = required_threads(&trace);
    let mut g = c.benchmark_group("trace_detectors_stored_dedup");
    let mut run = |name: &str, d: &mut dyn TraceDetector| {
        g.bench_function(name, |b| {
            b.iter(|| {
                d.reset();
                for e in &trace {
                    black_box(d.process(e));
                }
            })
        });
    };
    run("clean", &mut CleanEngine::new(threads));
    run("fasttrack", &mut FastTrack::new(threads));
    run("vc_full", &mut VcFullDetector::new(threads));
    run("tsan_like", &mut TsanLike::new(threads));
    g.finish();
}

criterion_group!(benches, bench_detectors, bench_detectors_stored);
criterion_main!(benches);
