//! Property-based tests of the core invariants: vector-clock algebra,
//! epoch packing, shadow-memory consistency against a model, and
//! vectorized/non-vectorized detector equivalence.

use clean_core::{
    CleanDetector, DetectorConfig, Epoch, EpochLayout, RolloverCoordinator, ShadowMemory, ThreadId,
    VectorClock,
};
use proptest::prelude::*;
use std::collections::HashMap;

const N: usize = 4;

/// Byte range the rollover scripts access; the false-negative probe uses
/// an address beyond it, untouched by any script access.
const SCRIPT_RANGE: usize = 256;
const PROBE_ADDR: usize = SCRIPT_RANGE + 64;

/// Outcome of driving one lock-synchronized access script across clock
/// rollovers (see [`run_rollover_script`]).
struct RolloverRun {
    /// Access indices at which a deterministic reset fired.
    reset_indices: Vec<usize>,
    /// Resets the coordinator performed (must match `reset_indices`).
    resets: u64,
    /// Race reports from the detector — the script is fully synchronized,
    /// so every one is a stale-epoch false positive.
    false_positives: usize,
    det: CleanDetector,
    vcs: Vec<VectorClock>,
    global: VectorClock,
    coord: RolloverCoordinator,
}

/// Increments `vcs[i]`, performing the Section 4.5 deterministic reset
/// when the clock is saturated: request the reset, rendezvous at the sync
/// point (clearing shadow memory and the lock clock), reset the other
/// threads' clocks as their own sync points would, then retry.
fn increment_with_reset(
    i: usize,
    vcs: &mut [VectorClock],
    global: &mut VectorClock,
    det: &CleanDetector,
    coord: &RolloverCoordinator,
) -> bool {
    let t = ThreadId::new(i as u16);
    if vcs[i].increment(t).is_ok() {
        return false;
    }
    coord.request_reset();
    coord.sync_point(&mut vcs[i], || {
        det.reset_metadata();
        global.reset();
    });
    for (j, vc) in vcs.iter_mut().enumerate() {
        if j != i {
            vc.reset();
        }
    }
    vcs[i]
        .increment(t)
        .expect("a freshly reset clock cannot saturate");
    true
}

/// Drives a fully lock-synchronized access script — acquire (join the
/// global release clock), start a new SFR (increment), access, release
/// (publish into the global clock) — under a tiny clock layout so the
/// script crosses the rollover boundary, handling each saturation with
/// the deterministic reset protocol.
fn run_rollover_script(bits: u32, script: &[(u16, usize, usize, bool)]) -> RolloverRun {
    let layout = EpochLayout::with_clock_bits(bits);
    let det = CleanDetector::new(512, DetectorConfig::new().layout(layout));
    let coord = RolloverCoordinator::new();
    // The sequential driver stands in for all modeled threads: when it
    // reaches the rendezvous every other thread is (by construction)
    // already at a synchronization point.
    coord.register_thread();
    let mut vcs: Vec<VectorClock> = (0..N).map(|_| VectorClock::new(N, layout)).collect();
    let mut global = VectorClock::new(N, layout);
    let mut reset_indices = Vec::new();
    let mut false_positives = 0;
    for (k, &(tid, addr, size, is_write)) in script.iter().enumerate() {
        let i = (tid as usize) % N;
        let t = ThreadId::new(i as u16);
        vcs[i].join(&global);
        if increment_with_reset(i, &mut vcs, &mut global, &det, &coord) {
            reset_indices.push(k);
        }
        let addr = addr.min(SCRIPT_RANGE - size);
        let res = if is_write {
            det.check_write(&vcs[i], t, addr, size)
        } else {
            det.check_read(&vcs[i], t, addr, size)
        };
        if res.is_err() {
            false_positives += 1;
        }
        global.join(&vcs[i]);
    }
    RolloverRun {
        reset_indices,
        resets: coord.resets_performed(),
        false_positives,
        det,
        vcs,
        global,
        coord,
    }
}

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..1000, N).prop_map(|clocks| {
        let mut vc = VectorClock::new(N, EpochLayout::paper_default());
        for (i, c) in clocks.into_iter().enumerate() {
            vc.set_clock(ThreadId::new(i as u16), c);
        }
        vc
    })
}

proptest! {
    #[test]
    fn epoch_pack_roundtrip(tid in 0u16..=255, clock in 0u32..(1 << 23)) {
        let layout = EpochLayout::paper_default();
        let e = layout.pack(ThreadId::new(tid), clock);
        prop_assert_eq!(layout.tid(e), ThreadId::new(tid));
        prop_assert_eq!(layout.clock(e), clock);
    }

    #[test]
    fn epoch_roundtrip_any_layout(bits in 1u32..=30, tid_seed in 0u32..u32::MAX, clock_seed in 0u32..u32::MAX) {
        let layout = EpochLayout::with_clock_bits(bits);
        let tid = ThreadId::new((tid_seed as usize % layout.max_threads()) as u16);
        let clock = clock_seed % (layout.max_clock() + 1);
        let e = layout.pack(tid, clock);
        prop_assert_eq!(layout.tid(e), tid);
        prop_assert_eq!(layout.clock(e), clock);
    }

    #[test]
    fn join_is_commutative(a in arb_vc(), b in arb_vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn join_is_associative(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in arb_vc(), b in arb_vc()) {
        let mut j = a.clone();
        j.join(&b);
        let mut jj = j.clone();
        jj.join(&b);
        prop_assert_eq!(&j, &jj);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn races_with_iff_clock_exceeds_element(vc in arb_vc(), tid in 0u16..(N as u16), clock in 0u32..1000) {
        let layout = EpochLayout::paper_default();
        let e = layout.pack(ThreadId::new(tid), clock);
        let races = vc.races_with(e);
        prop_assert_eq!(races, clock > vc.clock_of(ThreadId::new(tid)));
    }

    #[test]
    fn join_absorbs_write_epochs(mut reader in arb_vc(), writer in arb_vc(), tid in 0u16..(N as u16)) {
        // After joining the writer's clock, none of the writer's epochs race.
        let e = writer.write_epoch(ThreadId::new(tid));
        reader.join(&writer);
        prop_assert!(!reader.races_with(e));
    }

    #[test]
    fn shadow_matches_hashmap_model(
        ops in proptest::collection::vec(
            (0usize..8192, 0u32..5000, prop::bool::ANY), 1..200),
    ) {
        let shadow = ShadowMemory::new(8192);
        let mut model: HashMap<usize, u32> = HashMap::new();
        for (addr, val, use_cas) in ops {
            if use_cas {
                let cur = *model.get(&addr).unwrap_or(&0);
                let ok = shadow
                    .compare_exchange(addr, Epoch::from_raw(cur), Epoch::from_raw(val))
                    .is_ok();
                prop_assert!(ok, "model-matched CAS must succeed");
                model.insert(addr, val);
            } else {
                shadow.store(addr, Epoch::from_raw(val));
                model.insert(addr, val);
            }
            prop_assert_eq!(shadow.load(addr).raw(), model[&addr]);
        }
    }

    #[test]
    fn shadow_reset_clears_everything(
        addrs in proptest::collection::vec(0usize..4096, 1..50),
    ) {
        let shadow = ShadowMemory::new(4096);
        for (i, a) in addrs.iter().enumerate() {
            shadow.store(*a, Epoch::from_raw(i as u32 + 1));
        }
        shadow.reset();
        for a in &addrs {
            prop_assert_eq!(shadow.load(*a), Epoch::ZERO);
        }
    }

    /// Vectorized and per-byte detectors must return identical verdicts on
    /// any sequential access script with synchronization modelled by
    /// explicit vector-clock joins.
    #[test]
    fn vectorized_equals_scalar_detection(
        script in proptest::collection::vec(
            (0u16..(N as u16), 0usize..128, 1usize..=8, prop::bool::ANY, prop::bool::ANY),
            1..120),
    ) {
        let det_v = CleanDetector::new(256, DetectorConfig::new().vectorized(true));
        let det_s = CleanDetector::new(256, DetectorConfig::new().vectorized(false));
        let layout = EpochLayout::paper_default();
        let mut vcs: Vec<VectorClock> =
            (0..N).map(|_| VectorClock::new(N, layout)).collect();
        for (i, vc) in vcs.iter_mut().enumerate() {
            vc.increment(ThreadId::new(i as u16)).unwrap();
        }
        let mut global = VectorClock::new(N, layout);
        for (tid, addr, size, is_write, sync_first) in script {
            let t = ThreadId::new(tid);
            let i = tid as usize;
            if sync_first {
                // Model a global lock: release-acquire through `global`.
                global.join(&vcs[i]);
                vcs[i].join(&global);
                vcs[i].increment(t).unwrap();
            }
            let addr = addr.min(256 - size);
            let (rv, rs) = if is_write {
                (det_v.check_write(&vcs[i], t, addr, size),
                 det_s.check_write(&vcs[i], t, addr, size))
            } else {
                (det_v.check_read(&vcs[i], t, addr, size),
                 det_s.check_read(&vcs[i], t, addr, size))
            };
            prop_assert_eq!(rv.is_err(), rs.is_err(),
                "verdict mismatch at {:?} addr {} size {}", t, addr, size);
            if rv.is_err() {
                // Both stopped: a real execution would end here; stop the
                // script like the race exception would.
                break;
            }
        }
    }

    /// A fully lock-synchronized script stays race-free across any number
    /// of deterministic rollover resets: stale epochs surviving a reset
    /// would surface here as false positives.
    #[test]
    fn rollover_reset_produces_no_false_positives(
        bits in 3u32..=5,
        script in proptest::collection::vec(
            (0u16..(N as u16), 0usize..SCRIPT_RANGE, 1usize..=8, prop::bool::ANY),
            1..250),
    ) {
        let run = run_rollover_script(bits, &script);
        prop_assert_eq!(run.false_positives, 0,
            "synchronized accesses raced after {} resets", run.resets);
        prop_assert_eq!(run.resets, run.reset_indices.len() as u64);
        // Long scripts under tiny clocks must actually cross the boundary:
        // every access increments one thread, so more than N * max_clock
        // SFRs cannot fit in one epoch generation.
        let capacity = N as u64 * u64::from(EpochLayout::with_clock_bits(bits).max_clock());
        if script.len() as u64 > capacity {
            prop_assert!(run.resets > 0, "no reset in {} accesses", script.len());
        }
    }

    /// After the resets, detection stays live: the reset must not leave
    /// clocks or shadow state that mask a genuinely unsynchronized pair
    /// (a stale-epoch false negative).
    #[test]
    fn rollover_reset_produces_no_false_negatives(
        bits in 3u32..=5,
        script in proptest::collection::vec(
            (0u16..(N as u16), 0usize..SCRIPT_RANGE, 1usize..=8, prop::bool::ANY),
            64..250),
    ) {
        let mut run = run_rollover_script(bits, &script);
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        // Two new SFRs with no release/acquire between them. Thread 1
        // increments first: if either increment triggers a reset, the
        // writer (thread 0) still enters the probe with a fresh epoch.
        increment_with_reset(1, &mut run.vcs, &mut run.global, &run.det, &run.coord);
        increment_with_reset(0, &mut run.vcs, &mut run.global, &run.det, &run.coord);
        // ...racing on an address no script access ever touched.
        prop_assert!(run.det.check_write(&run.vcs[0], a, PROBE_ADDR, 8).is_ok(),
            "first write to a fresh address cannot race");
        let waw = run.det.check_write(&run.vcs[1], b, PROBE_ADDR, 8);
        prop_assert!(waw.is_err(), "unsynchronized WAW missed after {} resets", run.resets);
        let raw = run.det.check_read(&run.vcs[1], b, PROBE_ADDR, 8);
        prop_assert!(raw.is_err(), "unsynchronized RAW missed after {} resets", run.resets);
    }

    /// Reset points are globally deterministic (Section 4.5): replaying
    /// the same synchronization-point sequence fires the resets at the
    /// same accesses and leaves identical metadata.
    #[test]
    fn rollover_reset_points_are_deterministic(
        bits in 3u32..=5,
        script in proptest::collection::vec(
            (0u16..(N as u16), 0usize..SCRIPT_RANGE, 1usize..=8, prop::bool::ANY),
            1..250),
    ) {
        let one = run_rollover_script(bits, &script);
        let two = run_rollover_script(bits, &script);
        prop_assert_eq!(&one.reset_indices, &two.reset_indices);
        prop_assert_eq!(one.resets, two.resets);
        for addr in (0..SCRIPT_RANGE).step_by(16) {
            prop_assert_eq!(one.det.epoch_at(addr), two.det.epoch_at(addr),
                "shadow diverged at {}", addr);
        }
    }
}
