//! Property-based tests of the core invariants: vector-clock algebra,
//! epoch packing, shadow-memory consistency against a model, and
//! vectorized/non-vectorized detector equivalence.

use clean_core::{
    CleanDetector, DetectorConfig, Epoch, EpochLayout, ShadowMemory, ThreadId, VectorClock,
};
use proptest::prelude::*;
use std::collections::HashMap;

const N: usize = 4;

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..1000, N).prop_map(|clocks| {
        let mut vc = VectorClock::new(N, EpochLayout::paper_default());
        for (i, c) in clocks.into_iter().enumerate() {
            vc.set_clock(ThreadId::new(i as u16), c);
        }
        vc
    })
}

proptest! {
    #[test]
    fn epoch_pack_roundtrip(tid in 0u16..=255, clock in 0u32..(1 << 23)) {
        let layout = EpochLayout::paper_default();
        let e = layout.pack(ThreadId::new(tid), clock);
        prop_assert_eq!(layout.tid(e), ThreadId::new(tid));
        prop_assert_eq!(layout.clock(e), clock);
    }

    #[test]
    fn epoch_roundtrip_any_layout(bits in 1u32..=30, tid_seed in 0u32..u32::MAX, clock_seed in 0u32..u32::MAX) {
        let layout = EpochLayout::with_clock_bits(bits);
        let tid = ThreadId::new((tid_seed as usize % layout.max_threads()) as u16);
        let clock = clock_seed % (layout.max_clock() + 1);
        let e = layout.pack(tid, clock);
        prop_assert_eq!(layout.tid(e), tid);
        prop_assert_eq!(layout.clock(e), clock);
    }

    #[test]
    fn join_is_commutative(a in arb_vc(), b in arb_vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn join_is_associative(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in arb_vc(), b in arb_vc()) {
        let mut j = a.clone();
        j.join(&b);
        let mut jj = j.clone();
        jj.join(&b);
        prop_assert_eq!(&j, &jj);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn races_with_iff_clock_exceeds_element(vc in arb_vc(), tid in 0u16..(N as u16), clock in 0u32..1000) {
        let layout = EpochLayout::paper_default();
        let e = layout.pack(ThreadId::new(tid), clock);
        let races = vc.races_with(e);
        prop_assert_eq!(races, clock > vc.clock_of(ThreadId::new(tid)));
    }

    #[test]
    fn join_absorbs_write_epochs(mut reader in arb_vc(), writer in arb_vc(), tid in 0u16..(N as u16)) {
        // After joining the writer's clock, none of the writer's epochs race.
        let e = writer.write_epoch(ThreadId::new(tid));
        reader.join(&writer);
        prop_assert!(!reader.races_with(e));
    }

    #[test]
    fn shadow_matches_hashmap_model(
        ops in proptest::collection::vec(
            (0usize..8192, 0u32..5000, prop::bool::ANY), 1..200),
    ) {
        let shadow = ShadowMemory::new(8192);
        let mut model: HashMap<usize, u32> = HashMap::new();
        for (addr, val, use_cas) in ops {
            if use_cas {
                let cur = *model.get(&addr).unwrap_or(&0);
                let ok = shadow
                    .compare_exchange(addr, Epoch::from_raw(cur), Epoch::from_raw(val))
                    .is_ok();
                prop_assert!(ok, "model-matched CAS must succeed");
                model.insert(addr, val);
            } else {
                shadow.store(addr, Epoch::from_raw(val));
                model.insert(addr, val);
            }
            prop_assert_eq!(shadow.load(addr).raw(), model[&addr]);
        }
    }

    #[test]
    fn shadow_reset_clears_everything(
        addrs in proptest::collection::vec(0usize..4096, 1..50),
    ) {
        let shadow = ShadowMemory::new(4096);
        for (i, a) in addrs.iter().enumerate() {
            shadow.store(*a, Epoch::from_raw(i as u32 + 1));
        }
        shadow.reset();
        for a in &addrs {
            prop_assert_eq!(shadow.load(*a), Epoch::ZERO);
        }
    }

    /// Vectorized and per-byte detectors must return identical verdicts on
    /// any sequential access script with synchronization modelled by
    /// explicit vector-clock joins.
    #[test]
    fn vectorized_equals_scalar_detection(
        script in proptest::collection::vec(
            (0u16..(N as u16), 0usize..128, 1usize..=8, prop::bool::ANY, prop::bool::ANY),
            1..120),
    ) {
        let det_v = CleanDetector::new(256, DetectorConfig::new().vectorized(true));
        let det_s = CleanDetector::new(256, DetectorConfig::new().vectorized(false));
        let layout = EpochLayout::paper_default();
        let mut vcs: Vec<VectorClock> =
            (0..N).map(|_| VectorClock::new(N, layout)).collect();
        for (i, vc) in vcs.iter_mut().enumerate() {
            vc.increment(ThreadId::new(i as u16)).unwrap();
        }
        let mut global = VectorClock::new(N, layout);
        for (tid, addr, size, is_write, sync_first) in script {
            let t = ThreadId::new(tid);
            let i = tid as usize;
            if sync_first {
                // Model a global lock: release-acquire through `global`.
                global.join(&vcs[i]);
                vcs[i].join(&global);
                vcs[i].increment(t).unwrap();
            }
            let addr = addr.min(256 - size);
            let (rv, rs) = if is_write {
                (det_v.check_write(&vcs[i], t, addr, size),
                 det_s.check_write(&vcs[i], t, addr, size))
            } else {
                (det_v.check_read(&vcs[i], t, addr, size),
                 det_s.check_read(&vcs[i], t, addr, size))
            };
            prop_assert_eq!(rv.is_err(), rs.is_err(),
                "verdict mismatch at {:?} addr {} size {}", t, addr, size);
            if rv.is_err() {
                // Both stopped: a real execution would end here; stop the
                // script like the race exception would.
                break;
            }
        }
    }
}
