//! A serialized record of a monitored execution's events.
//!
//! Race-detection engines (the `clean-baselines` crate) analyze these
//! streams offline, and the CLEAN runtime can record one during a live
//! execution (`RuntimeConfig::record_trace`), enabling cross-validation:
//! the online detector's verdict must agree with the offline engines'
//! verdict on the recorded interleaving.

use crate::epoch::ThreadId;

/// Identifier of a lock in a trace.
pub type LockId = u32;

/// One event of a monitored execution, in a global serialization order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `tid` reads `size` bytes at `addr`.
    Read {
        /// Accessing thread.
        tid: ThreadId,
        /// Byte address.
        addr: usize,
        /// Access width in bytes.
        size: usize,
    },
    /// `tid` writes `size` bytes at `addr`.
    Write {
        /// Accessing thread.
        tid: ThreadId,
        /// Byte address.
        addr: usize,
        /// Access width in bytes.
        size: usize,
    },
    /// `tid` acquires `lock`.
    Acquire {
        /// Acquiring thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// `tid` releases `lock`.
    Release {
        /// Releasing thread.
        tid: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// `parent` creates `child`.
    Fork {
        /// Creating thread.
        parent: ThreadId,
        /// Created thread.
        child: ThreadId,
    },
    /// `parent` joins `child`.
    Join {
        /// Joining thread.
        parent: ThreadId,
        /// Joined (finished) thread.
        child: ThreadId,
    },
}

impl TraceEvent {
    /// The thread performing this event (the parent, for fork/join).
    pub fn tid(&self) -> ThreadId {
        match *self {
            TraceEvent::Read { tid, .. }
            | TraceEvent::Write { tid, .. }
            | TraceEvent::Acquire { tid, .. }
            | TraceEvent::Release { tid, .. } => tid,
            TraceEvent::Fork { parent, .. } | TraceEvent::Join { parent, .. } => parent,
        }
    }

    /// Returns true for memory (read/write) events.
    pub fn is_memory(&self) -> bool {
        matches!(self, TraceEvent::Read { .. } | TraceEvent::Write { .. })
    }
}

/// A streaming consumer of execution events.
///
/// The CLEAN runtime forwards every recorded [`TraceEvent`] to a sink as
/// it happens, so executions of unbounded length can be captured (e.g. to
/// disk) without the unbounded in-memory `Vec` that
/// `RuntimeConfig::record_trace` otherwise accumulates. Implementations
/// must be thread-safe: monitored threads call [`record_event`] concurrently
/// in an order consistent with the execution's serialization.
///
/// [`record_event`]: EventSink::record_event
pub trait EventSink: Send + Sync {
    /// Consumes one event of the monitored execution.
    fn record_event(&self, event: &TraceEvent);
}

impl<S: EventSink + ?Sized> EventSink for std::sync::Arc<S> {
    fn record_event(&self, event: &TraceEvent) {
        (**self).record_event(event);
    }
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn record_event(&self, event: &TraceEvent) {
        (**self).record_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_extraction() {
        let t = ThreadId::new(3);
        assert_eq!(
            TraceEvent::Read {
                tid: t,
                addr: 0,
                size: 1
            }
            .tid(),
            t
        );
        assert_eq!(
            TraceEvent::Fork {
                parent: t,
                child: ThreadId::new(4)
            }
            .tid(),
            t
        );
    }

    #[test]
    fn memory_classification() {
        let t = ThreadId::new(0);
        assert!(TraceEvent::Write {
            tid: t,
            addr: 0,
            size: 4
        }
        .is_memory());
        assert!(!TraceEvent::Acquire { tid: t, lock: 0 }.is_memory());
    }
}
