//! # clean-core
//!
//! The core of **CLEAN** — *"CLEAN: A Race Detector with Cleaner
//! Semantics"* (Segulja & Abdelrahman, ISCA 2015) — a precise detector for
//! write-after-write (WAW) and read-after-write (RAW) data races.
//!
//! CLEAN's insight is that stopping an execution only on WAW and RAW races
//! suffices to guarantee that synchronization-free regions (SFRs) appear to
//! execute in isolation and that their writes appear atomic, for *all*
//! executions — racy or not. Combined with deterministic synchronization
//! (see the `clean-sync` crate), exception-free executions are also
//! deterministic. The race type CLEAN deliberately does not detect — WAR —
//! is exactly the one that makes full precise detection (FastTrack)
//! expensive, because it requires read vector clocks.
//!
//! This crate provides the building blocks:
//!
//! * [`Epoch`] / [`EpochLayout`]: the packed (thread id, clock) word stored
//!   per shared byte (Sections 2.3, 4.1, 4.5),
//! * [`VectorClock`]: epoch-valued vector clocks (Section 4.1),
//! * [`ShadowMemory`]: the fixed-layout, lazily-allocated epoch table with
//!   O(1) deterministic reset (Sections 4.2, 4.5),
//! * [`CleanDetector`]: the Figure 2 race check with CAS-based lock-free
//!   atomicity and the multi-byte vectorization (Sections 4.3, 4.4),
//! * [`RolloverCoordinator`]: globally deterministic metadata resets
//!   (Section 4.5),
//! * [`RaceReport`] / [`RaceKind`]: the precise race exception payload.
//!
//! # Quick example
//!
//! ```
//! use clean_core::{CleanDetector, DetectorConfig, ThreadId, VectorClock};
//!
//! let det = CleanDetector::new(4096, DetectorConfig::new());
//! let layout = det.layout();
//! let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
//! let mut vc0 = VectorClock::new(2, layout);
//! let mut vc1 = VectorClock::new(2, layout);
//!
//! // Thread 0 writes x after a sync operation.
//! vc0.increment(t0)?;
//! det.check_write(&vc0, t0, 0x80, 4)?;
//!
//! // Thread 1 reads x without synchronizing: a RAW race exception.
//! assert!(det.check_read(&vc1, t1, 0x80, 4).is_err());
//!
//! // Had thread 1 acquired a lock released by thread 0 (joining its
//! // vector clock), the read would be ordered and race-free:
//! vc1.join(&vc0);
//! det.check_read(&vc1, t1, 0x80, 4)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod detector;
mod epoch;
mod filter;
mod report;
mod rollover;
mod shadow;
mod stats;
mod trace_event;

pub use clock::{ClockRolloverError, VectorClock};
pub use detector::{
    AtomicityMode, CleanDetector, DetectorConfig, DetectorObs, DEFAULT_STATS_SHARDS,
    WIDE_CAS_EPOCHS,
};
pub use epoch::{Epoch, EpochLayout, ThreadId};
pub use filter::{PendingStats, SfrWriteFilter, ThreadCheckState, FILTER_SLOTS, RANGE_SLOTS};
pub use report::{AccessKind, RaceKind, RaceReport};
pub use rollover::RolloverCoordinator;
pub use shadow::{ShadowMemory, ShadowPageCache, ShadowStats, BATCH_CHUNK, PAGE_EPOCHS};
pub use stats::{DetectorStats, StatsShard, StatsSnapshot};
pub use trace_event::{EventSink, LockId, TraceEvent};

// The static check-plan subsystem lives in its own leaf crate
// (`clean-plan`); re-export the detector-facing types so consumers can
// build and install plans without a separate dependency.
pub use clean_plan::{
    CheckPlan, CompiledPlan, Coverage, PlanAction, PlanDecision, PlanEntry, PlanError,
    PlanObserver, PlanProfile, Witness,
};
