//! Race exceptions and reports (Section 3.1: "a race exception is thrown if
//! and only if a WAW or a RAW race occurs, at which point the execution
//! stops").

use crate::epoch::{Epoch, EpochLayout, ThreadId};
use core::fmt;

/// The kind of data race CLEAN detects.
///
/// WAR races are deliberately absent: CLEAN *chooses* not to detect them
/// (Section 3.1), which is what removes the need for read vector clocks and
/// per-access locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Write-after-write: two unordered writes to the same byte.
    WriteAfterWrite,
    /// Read-after-write: a read not ordered after the last write.
    ReadAfterWrite,
}

impl RaceKind {
    /// Short conventional name ("WAW" / "RAW").
    pub const fn as_str(self) -> &'static str {
        match self {
            RaceKind::WriteAfterWrite => "WAW",
            RaceKind::ReadAfterWrite => "RAW",
        }
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of memory access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from shared memory.
    Read,
    /// A store to shared memory.
    Write,
}

impl AccessKind {
    /// Returns true for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// The race kind an unordered prior write constitutes for this access.
    pub const fn race_kind(self) -> RaceKind {
        match self {
            AccessKind::Read => RaceKind::ReadAfterWrite,
            AccessKind::Write => RaceKind::WriteAfterWrite,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// A precise report of a detected WAW or RAW race — the payload of CLEAN's
/// race exception.
///
/// # Examples
///
/// ```
/// use clean_core::{AccessKind, RaceKind, RaceReport, ThreadId, Epoch, EpochLayout};
/// let layout = EpochLayout::default();
/// let report = RaceReport {
///     kind: RaceKind::ReadAfterWrite,
///     addr: 0x40,
///     size: 4,
///     current_tid: ThreadId::new(1),
///     current_clock: 0,
///     previous: layout.pack(ThreadId::new(0), 3),
///     layout,
/// };
/// assert_eq!(report.previous_tid(), ThreadId::new(0));
/// assert!(report.to_string().contains("RAW"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// Whether the race is a WAW or a RAW.
    pub kind: RaceKind,
    /// Base address of the racy access.
    pub addr: usize,
    /// Size in bytes of the racy access.
    pub size: usize,
    /// Thread performing the current (second) access.
    pub current_tid: ThreadId,
    /// The current thread's scalar clock at the time of the access.
    pub current_clock: u32,
    /// Epoch of the previous (racing) write.
    pub previous: Epoch,
    /// Layout with which [`previous`](Self::previous) is decoded.
    pub layout: EpochLayout,
}

impl RaceReport {
    /// Thread that performed the previous, racing write.
    pub fn previous_tid(&self) -> ThreadId {
        self.layout.tid(self.previous)
    }

    /// Scalar clock of the previous, racing write.
    pub fn previous_clock(&self) -> u32 {
        self.layout.clock(self.previous)
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race at {:#x} (+{}B): {} at clock {} conflicts with write by {} at clock {}",
            self.kind,
            self.addr,
            self.size,
            self.current_tid,
            self.current_clock,
            self.previous_tid(),
            self.previous_clock(),
        )
    }
}

impl std::error::Error for RaceReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_kind_names() {
        assert_eq!(RaceKind::WriteAfterWrite.as_str(), "WAW");
        assert_eq!(RaceKind::ReadAfterWrite.as_str(), "RAW");
        assert_eq!(RaceKind::WriteAfterWrite.to_string(), "WAW");
    }

    #[test]
    fn access_kind_maps_to_race_kind() {
        assert_eq!(AccessKind::Read.race_kind(), RaceKind::ReadAfterWrite);
        assert_eq!(AccessKind::Write.race_kind(), RaceKind::WriteAfterWrite);
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn report_decodes_previous_epoch() {
        let layout = EpochLayout::paper_default();
        let r = RaceReport {
            kind: RaceKind::WriteAfterWrite,
            addr: 0x100,
            size: 8,
            current_tid: ThreadId::new(2),
            current_clock: 5,
            previous: layout.pack(ThreadId::new(7), 9),
            layout,
        };
        assert_eq!(r.previous_tid(), ThreadId::new(7));
        assert_eq!(r.previous_clock(), 9);
        let s = r.to_string();
        assert!(s.contains("WAW"), "{s}");
        assert!(s.contains("0x100"), "{s}");
        assert!(s.contains("T2"), "{s}");
        assert!(s.contains("T7"), "{s}");
    }
}
