//! Deterministic clock-rollover handling (Section 4.5).
//!
//! The clock component of a fixed-size epoch is finite; when a thread's
//! scalar clock is about to overflow, CLEAN brings the execution to a halt
//! at the next *globally deterministic execution point* — when every
//! running thread is trying to execute a synchronization operation (or has
//! finished). At that point all epochs and vector clocks are reset and the
//! execution resumes. Because resets happen at deterministic points and
//! only at SFR boundaries, per-phase SFR isolation, write-atomicity and
//! determinism compose into whole-execution guarantees.
//!
//! [`RolloverCoordinator`] implements the rendezvous: threads register on
//! start, deregister on exit, and call [`RolloverCoordinator::sync_point`]
//! on every synchronization operation. When a reset has been requested the
//! call parks the thread; the last thread to park performs the global reset
//! (shadow memory, lock clocks) and every participant resets its own vector
//! clock before resuming.

use crate::clock::VectorClock;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[derive(Debug)]
struct RendezvousState {
    /// Threads currently registered as running.
    active: usize,
    /// Threads currently parked waiting for the reset.
    parked: usize,
    /// Completed reset phases; parking threads wait for this to advance.
    phase: u64,
}

/// Coordinates globally deterministic metadata resets (Section 4.5).
///
/// # Examples
///
/// ```
/// use clean_core::{EpochLayout, RolloverCoordinator, VectorClock};
/// let coord = RolloverCoordinator::new();
/// coord.register_thread();
/// let mut vc = VectorClock::new(1, EpochLayout::default());
/// vc.increment(clean_core::ThreadId::new(0)).unwrap();
/// coord.request_reset();
/// // Single thread: the sync point performs the reset immediately.
/// coord.sync_point(&mut vc, || { /* reset shadow + lock clocks here */ });
/// assert_eq!(vc.clock_of(clean_core::ThreadId::new(0)), 0);
/// assert_eq!(coord.resets_performed(), 1);
/// ```
#[derive(Debug)]
pub struct RolloverCoordinator {
    reset_requested: AtomicBool,
    resets: AtomicU64,
    state: Mutex<RendezvousState>,
    cv: Condvar,
}

impl RolloverCoordinator {
    /// Creates a coordinator with no registered threads.
    pub fn new() -> Self {
        RolloverCoordinator {
            reset_requested: AtomicBool::new(false),
            resets: AtomicU64::new(0),
            state: Mutex::new(RendezvousState {
                active: 0,
                parked: 0,
                phase: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a newly started thread as a rendezvous participant.
    pub fn register_thread(&self) {
        self.state.lock().active += 1;
    }

    /// Deregisters a finishing thread.
    ///
    /// A finished thread counts as "trying to synchronize forever", so if a
    /// reset is pending and everyone else is already parked, deregistering
    /// completes the rendezvous (the *last parker* performs no global reset
    /// here — it is woken and performs it; see `sync_point`).
    pub fn deregister_thread(&self) {
        let mut st = self.state.lock();
        debug_assert!(st.active > 0, "deregister without register");
        st.active -= 1;
        // If the remaining parked threads now constitute everyone, wake one
        // of them to act as the reset performer.
        if self.reset_requested.load(Ordering::Acquire) && st.parked == st.active && st.parked > 0 {
            self.cv.notify_all();
        }
    }

    /// Number of currently registered threads.
    pub fn active_threads(&self) -> usize {
        self.state.lock().active
    }

    /// Requests a deterministic reset at the next global sync point.
    /// Called by a thread whose clock is about to roll over.
    pub fn request_reset(&self) {
        self.reset_requested.store(true, Ordering::Release);
    }

    /// Returns true if a reset is pending.
    pub fn reset_pending(&self) -> bool {
        self.reset_requested.load(Ordering::Acquire)
    }

    /// Number of deterministic resets performed so far (Table 1's
    /// "# Rollovers" measurement).
    pub fn resets_performed(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Synchronization-point hook: returns immediately when no reset is
    /// pending (one atomic load — the common case), otherwise parks the
    /// calling thread until all active threads have parked, performs the
    /// reset, and resumes everyone.
    ///
    /// `global_reset` is executed exactly once per reset (by the last
    /// thread to arrive) and must clear the shadow memory and all lock
    /// vector clocks. Every participant's own `vc` is reset here.
    pub fn sync_point<F: FnOnce()>(&self, vc: &mut VectorClock, global_reset: F) {
        if !self.reset_requested.load(Ordering::Acquire) {
            return;
        }
        let mut st = self.state.lock();
        // Re-check under the lock: the reset may have completed while we
        // were acquiring it.
        if !self.reset_requested.load(Ordering::Acquire) {
            return;
        }
        st.parked += 1;
        if st.parked == st.active {
            // Everyone is at a deterministic point: perform the reset.
            global_reset();
            vc.reset();
            self.reset_requested.store(false, Ordering::Release);
            self.resets.fetch_add(1, Ordering::Relaxed);
            st.parked = 0;
            st.phase += 1;
            self.cv.notify_all();
        } else {
            let phase = st.phase;
            loop {
                // Another thread may have deregistered, making us the last
                // parker; in that case we must perform the reset ourselves.
                if self.reset_requested.load(Ordering::Acquire) && st.parked == st.active {
                    global_reset();
                    vc.reset();
                    self.reset_requested.store(false, Ordering::Release);
                    self.resets.fetch_add(1, Ordering::Relaxed);
                    st.parked = 0;
                    st.phase += 1;
                    self.cv.notify_all();
                    return;
                }
                if st.phase != phase {
                    vc.reset();
                    return;
                }
                self.cv.wait(&mut st);
            }
        }
    }
}

impl Default for RolloverCoordinator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochLayout, ThreadId};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn vc() -> VectorClock {
        let mut v = VectorClock::new(4, EpochLayout::paper_default());
        v.increment(ThreadId::new(0)).unwrap();
        v
    }

    #[test]
    fn sync_point_is_noop_without_request() {
        let c = RolloverCoordinator::new();
        c.register_thread();
        let mut v = vc();
        c.sync_point(&mut v, || panic!("must not reset"));
        assert_eq!(v.clock_of(ThreadId::new(0)), 1, "vc untouched");
        assert_eq!(c.resets_performed(), 0);
    }

    #[test]
    fn single_thread_resets_immediately() {
        let c = RolloverCoordinator::new();
        c.register_thread();
        c.request_reset();
        let mut v = vc();
        let ran = AtomicUsize::new(0);
        c.sync_point(&mut v, || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(v.clock_of(ThreadId::new(0)), 0);
        assert_eq!(c.resets_performed(), 1);
        assert!(!c.reset_pending());
    }

    #[test]
    fn multi_thread_rendezvous_runs_reset_once() {
        let c = Arc::new(RolloverCoordinator::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let n = 8;
        for _ in 0..n {
            c.register_thread();
        }
        c.request_reset();
        let mut handles = Vec::new();
        for _ in 0..n {
            let c = Arc::clone(&c);
            let ran = Arc::clone(&ran);
            handles.push(std::thread::spawn(move || {
                let mut v = vc();
                c.sync_point(&mut v, || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(v.clock_of(ThreadId::new(0)), 0, "every vc reset");
                c.deregister_thread();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1, "global reset exactly once");
        assert_eq!(c.resets_performed(), 1);
        assert_eq!(c.active_threads(), 0);
    }

    #[test]
    fn deregister_completes_pending_rendezvous() {
        let c = Arc::new(RolloverCoordinator::new());
        c.register_thread(); // the parker
        c.register_thread(); // the finisher
        c.request_reset();
        let parker = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut v = vc();
                c.sync_point(&mut v, || {});
                v.clock_of(ThreadId::new(0))
            })
        };
        // Give the parker time to park, then finish the other thread.
        std::thread::sleep(std::time::Duration::from_millis(50));
        c.deregister_thread();
        let clock = parker.join().unwrap();
        assert_eq!(clock, 0);
        assert_eq!(c.resets_performed(), 1);
    }

    #[test]
    fn consecutive_resets_count() {
        let c = RolloverCoordinator::new();
        c.register_thread();
        let mut v = vc();
        for i in 1..=3 {
            c.request_reset();
            c.sync_point(&mut v, || {});
            assert_eq!(c.resets_performed(), i);
        }
    }
}
